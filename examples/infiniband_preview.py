#!/usr/bin/env python3
"""The paper's last sentence, executed: VIBe on InfiniBand.

"We also plan to develop a similar micro-benchmark suite for the
upcoming InfiniBand Architecture" (§5).  Because IBA kept VIA's
concepts (queue pairs ↔ VIs, CQs, registration, doorbells), the
*unmodified* suite runs against the IBA-style provider — this example
does exactly that and reads off what the new fabric changes.

Run:  python examples/infiniband_preview.py
"""

from repro.models import latency_breakdown
from repro.vibe import (
    base_bandwidth,
    base_latency,
    client_server,
    nondata_costs,
    render_figure,
    render_table1,
)

PAIR = ("clan", "iba")
SIZES = [4, 256, 4096, 28672]


def main() -> None:
    print(render_table1({p: nondata_costs(p, repeats=3) for p in PAIR}))
    print()
    lat = [base_latency(p, SIZES) for p in PAIR]
    print(render_figure(lat, "latency_us",
                        "One-way latency (us): best VIA vs first-gen IBA"))
    print()
    bw = [base_bandwidth(p, SIZES) for p in PAIR]
    print(render_figure(bw, "bandwidth_mbs", "Bandwidth (MB/s)"))
    print()
    tps = [client_server(p, 16, [16, 1024], transactions=16) for p in PAIR]
    print(render_figure(tps, "tps", "Client/server transactions/s"))

    lby = {r.provider: r for r in lat}
    bby = {r.provider: r for r in bw}
    bd = latency_breakdown("iba", 28672)
    dma_share = bd.phases["tx_dma"] / bd.total
    print(f"""
What the InfiniBand generation changes (and what it doesn't):
 - small messages: {lby['clan'].point(4).latency_us:.1f} -> """
          f"""{lby['iba'].point(4).latency_us:.1f} us — faster silicon,
   same architecture (the suite needed zero changes to measure it);
 - large messages: bandwidth only reaches """
          f"""{bby['iba'].point(28672).bandwidth_mbs:.0f} MB/s on a
   2.5 Gb/s (~235 MB/s) link, because the 32-bit/33 MHz PCI bus is now
   the bottleneck — the traced breakdown puts {dma_share:.0%} of a
   28 KiB transfer in tx_dma;
 - plus capabilities VIA hardware never shipped: RDMA read (see the
   get/put benchmarks) and reliable-connection service by default.
The lesson VIBe was built to teach carries over: end-to-end numbers
say 'faster'; the component benchmarks say *where* and *what's next*
(here: the I/O bus).""")


if __name__ == "__main__":
    main()
