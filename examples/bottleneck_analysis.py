#!/usr/bin/env python3
"""Pinpoint each VIA implementation's bottleneck (paper §3).

The paper argues that besides end-to-end numbers, VIBe should "identify
how much time is spent in each of the components in the implementation,
and pinpoint the bottlenecks that can be improved".  This example uses
the event tracer to decompose a single message's one-way journey into
architectural phases, then asks the engineering question: *if you could
fix one thing in each stack, what should it be?*

Run:  python examples/bottleneck_analysis.py
"""

from repro.models import latency_breakdown, render_breakdowns

PROVIDERS = ("mvia", "bvia", "clan", "iba")

ADVICE = {
    "post": "shrink the posting path (descriptor build)",
    "staging": "remove the kernel staging copy (go zero-copy)",
    "dispatch": "replace queue polling with direct doorbell dispatch",
    "translation": "move translation tables onto the NIC",
    "tx_dma": "widen/raise the I/O bus or overlap DMA with the wire",
    "wire": "a faster link (the protocol is already out of the way)",
    "rx_processing": "speed up the receive engine / placement path",
    "reap": "cheapen completion checks",
    "rx_kernel": "remove the receive-side kernel copy (go zero-copy)",
}


def main() -> None:
    for size in (1024, 16384):
        bds = [latency_breakdown(p, size) for p in PROVIDERS]
        print(render_breakdowns(bds))
        print()
        for bd in bds:
            bn = bd.bottleneck()
            share = bd.phases[bn] / bd.total
            print(f"  {bd.provider:>5s} @ {size:5d} B: bottleneck is "
                  f"'{bn}' ({share:.0%} of {bd.total:.0f} us) -> "
                  f"{ADVICE[bn]}")
        print()

    print("""Reading (matches the paper's §4 narrative):
 - M-VIA's time lives on the HOST (staging + rx_kernel): its fix is the
   zero-copy path the other stacks already have — which is exactly why
   it loses Fig. 3 at large sizes despite winning small-message latency
   against BVIA.
 - BVIA's time lives on the NIC ENGINE (dispatch + slow LANai
   processing): ref [5]'s design alternatives (direct dispatch,
   NIC-resident tables) attack precisely these phases — see
   examples/design_space_explorer.py for the knobs flipped live.
 - cLAN and the IBA model are wire/DMA bound: protocol overhead is
   already under a quarter of the total, so only faster links or buses
   help — and indeed the IBA column shows the link upgrade paying off
   until the PCI bus becomes the next wall.""")


if __name__ == "__main__":
    main()
