#!/usr/bin/env python3
"""A message-passing layer over VIA, tuned with VIBe's insights.

Demonstrates the programming-model layer the paper's §3.3 motivates:
an MPI-flavoured endpoint with eager/rendezvous protocols.  Two design
decisions the micro-benchmarks inform are measured live:

1. the **eager threshold** — below it messages are copied, above it
   they go rendezvous (RTS/CTS + RDMA write).  The right crossover
   follows from the copy-vs-registration cost balance VIBe measures;
2. **registration caching** — re-registering the rendezvous buffer per
   message pays Fig. 1's cost every time.

Run:  python examples/mpi_style_messaging.py
"""

from repro.layers import MsgEndpoint
from repro.providers import Testbed


def ping_pong(provider: str, size: int, eager_size: int, iters: int = 16,
              reg_cache: bool = True) -> float:
    """One-way latency of the message layer at one configuration."""
    tb = Testbed(provider)
    out = {}
    payload = bytes(i % 256 for i in range(size))

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=eager_size, reg_cache=reg_cache)
        yield from msg.setup()
        yield from h.connect(vi, "node1", 21)
        # warm up one round (fills caches), then time
        yield from msg.send(1, payload)
        yield from msg.recv(2)
        t0 = tb.now
        for _ in range(iters):
            yield from msg.send(1, payload)
            yield from msg.recv(2)
        out["lat"] = (tb.now - t0) / (2 * iters)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=eager_size, reg_cache=reg_cache)
        yield from msg.setup()
        req = yield from h.connect_wait(21)
        yield from h.accept(req, vi)
        for _ in range(iters + 1):
            _tag, data = yield from msg.recv(1)
            assert data == payload
            yield from msg.send(2, data)

    cproc = tb.spawn(client())
    tb.spawn(server())
    tb.run(cproc)
    return out["lat"]


def main() -> None:
    print("Eager-threshold study on Berkeley VIA (8 KiB messages):")
    print("  threshold   protocol      one-way latency")
    for eager in (512, 4096, 16384):
        lat = ping_pong("bvia", size=8192, eager_size=eager)
        proto = "eager (copies)" if eager >= 8192 else "rendezvous"
        print(f"  {eager:8d}   {proto:<14s}  {lat:8.1f} us")

    print("\nRegistration caching for rendezvous buffers (16 KiB, BVIA):")
    for cached in (True, False):
        lat = ping_pong("bvia", size=16384, eager_size=1024,
                        reg_cache=cached)
        label = "cached registrations " if cached else "register every time"
        print(f"  {label:24s} {lat:8.1f} us")

    print("\nThe gap is Fig. 1's registration cost paid per message — the"
          "\ninsight VIBe exists to hand to layer developers (paper §1).")


if __name__ == "__main__":
    main()
