#!/usr/bin/env python3
"""Distributed shared memory over VIA: a parallel histogram.

The paper cites the authors' TreadMarks-over-VIA port [7] as the kind
of layer VIBe informs.  This demo runs the repo's page-based DSM
(home-based, single-writer invalidation — repro.layers.dsm) across
three simulated nodes:

1. node 0 publishes a dataset into shared pages;
2. nodes 1 and 2 each histogram half of it into their own shared
   output page;
3. node 0 reads both output pages and merges.

The protocol counters printed at the end show the coherence traffic —
the quantity a DSM designer would budget with VIBe's latency numbers.

Run:  python examples/dsm_demo.py
"""

from repro.layers.dsm import connect_mesh
from repro.providers import Testbed

PAGE = 4096
DATA_PAGES = 4          # pages 0..3: input data
OUT_PAGE_A, OUT_PAGE_B = 4, 5
NPAGES = 6
NBINS = 8


def main() -> None:
    tb = Testbed("clan", node_names=("n0", "n1", "n2"))
    setups = connect_mesh(tb, ["n0", "n1", "n2"], npages=NPAGES,
                          page_size=PAGE)
    shared: dict = {}
    data = bytes((7 * i + 3) % NBINS for i in range(DATA_PAGES * PAGE))

    def coordinator():
        node = yield from setups[0]
        yield from node.write(0, data)
        shared["published"] = True
        while not (shared.get("done1") and shared.get("done2")):
            yield tb.sim.timeout(100.0)
        merged = [0] * NBINS
        for page in (OUT_PAGE_A, OUT_PAGE_B):
            raw = yield from node.read(page * PAGE, NBINS * 4)
            for b in range(NBINS):
                merged[b] += int.from_bytes(raw[4 * b:4 * b + 4], "big")
        shared["histogram"] = merged
        shared["stats0"] = node.stats

    def worker(idx: int, lo: int, hi: int, out_page: int):
        def body():
            node = yield from setups[idx]
            while "published" not in shared:
                yield tb.sim.timeout(100.0)
            counts = [0] * NBINS
            chunk = yield from node.read(lo, hi - lo)   # page faults here
            for byte in chunk:
                counts[byte] += 1
            packed = b"".join(c.to_bytes(4, "big") for c in counts)
            yield from node.write(out_page * PAGE, packed)
            shared[f"done{idx}"] = True
            shared[f"stats{idx}"] = node.stats
        return body

    half = DATA_PAGES * PAGE // 2
    p0 = tb.spawn(coordinator(), "coordinator")
    tb.spawn(worker(1, 0, half, OUT_PAGE_A)(), "worker1")
    tb.spawn(worker(2, half, 2 * half, OUT_PAGE_B)(), "worker2")
    tb.run(p0)

    expected = [0] * NBINS
    for byte in data:
        expected[byte] += 1
    got = shared["histogram"]
    assert got == expected, (got, expected)

    print(f"parallel histogram over {len(data)} shared bytes "
          f"on 3 nodes: {got}")
    print(f"finished at t = {tb.now / 1000:.2f} ms simulated\n")
    print("coherence traffic per node:")
    for i in range(3):
        s = shared[f"stats{i}"]
        print(f"  n{i}: fetches={s.fetches}  ownership={s.ownership_transfers}"
              f"  recalls={s.recalls}  invalidations={s.invalidations}"
              f"  local_hits={s.local_hits}")
    print("\nEvery fetch/ownership line is a VIA round trip — multiply by"
          "\nthe provider's VIBe small-message latency and page-sized"
          "\ntransfer time to budget a DSM design (the paper's §1 use).")


if __name__ == "__main__":
    main()
