#!/usr/bin/env python3
"""The Fig. 5 study: how buffer reuse exposes translation-cache design.

Berkeley VIA keeps translation tables in host memory with a small cache
on the NIC; an application that cycles through many buffers (0 % reuse)
misses that cache on every page of every message.  This example sweeps
the reuse fraction, inspects the NIC cache hit rates directly, and
derives the guidance the paper aims at higher-layer developers: size
your buffer pool to the NIC's translation reach, or pay per page.

Run:  python examples/buffer_reuse_study.py
"""

from repro.providers import Testbed, get_spec
from repro.vibe import (
    TransferConfig,
    render_figure,
    reuse_latency,
    run_latency,
)

SIZES = [256, 4096, 28672]


def main() -> None:
    results = reuse_latency("bvia", sizes=SIZES,
                            reuse_levels=(1.0, 0.75, 0.5, 0.25, 0.0))
    print(render_figure(results, "latency_us",
                        "BVIA one-way latency vs send/recv buffer reuse (us)"))

    # control: a NIC-resident table (cLAN) is immune
    controls = reuse_latency("clan", sizes=[28672], reuse_levels=(1.0, 0.0))
    print()
    print(render_figure(controls, "latency_us",
                        "Control: cLAN is flat (translation tables on NIC)"))

    # the two extremes, side by side
    print("\nBVIA at 28 KiB (7 pages/message), extremes:")
    for reuse in (1.0, 0.0):
        cfg = TransferConfig(size=28672, buffer_pool=48,
                             reuse_fraction=reuse, iters=32)
        m = run_latency(get_spec("bvia"), cfg)
        print(f"  reuse={reuse:4.0%}: one-way latency {m.latency_us:7.1f} us")

    tlb = get_spec("bvia").choices.nic_tlb_entries
    print(f"""
Guidance for a programming-model layer (paper §1, §4.3.2):
 - the BVIA NIC caches {tlb} translations; a buffer pool whose pinned
   pages exceed that reach turns every transfer into {28672 // 4096}
   table fetches per side at 28 KiB;
 - an MPI/sockets layer on this stack should bound its bounce-buffer
   pool (or cache registrations) so hot buffers stay within the NIC's
   translation reach — exactly what the registration cache in
   repro.layers.msg does.
""")


if __name__ == "__main__":
    main()
