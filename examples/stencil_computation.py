#!/usr/bin/env python3
"""A distributed stencil computation over VIA — the workload behind
the micro-benchmarks.

The paper's introduction motivates VIA with cluster applications; this
example *is* one: a 1-D heat-diffusion stencil partitioned across four
simulated nodes.  Each iteration the ranks

1. exchange one-cell halos with their neighbours (message layer), and
2. agree on the global residual with an allreduce (collectives layer),

so per-iteration cost = 2 x small-message latency + a log2(n)-deep
collective — which is why the same code runs visibly faster on cLAN
than on M-VIA, by exactly the margins Fig. 3 predicts.

The distributed result is checked against a single-process reference.

Run:  python examples/stencil_computation.py
"""

import struct

from repro.layers import connect_group
from repro.providers import Testbed

N_PER_RANK = 64
RANKS = 4
ITERS = 30
ALPHA = 0.25

_TAG_LEFT = 7
_TAG_RIGHT = 8


def reference(initial, iters):
    cells = list(initial)
    for _ in range(iters):
        nxt = cells[:]
        for i in range(1, len(cells) - 1):
            nxt[i] = cells[i] + ALPHA * (cells[i - 1] - 2 * cells[i]
                                         + cells[i + 1])
        cells = nxt
    return cells


def pack(x: float) -> bytes:
    return struct.pack(">d", x)


def unpack(b: bytes) -> float:
    return struct.unpack(">d", b)[0]


def run_on(provider: str):
    names = [f"n{i}" for i in range(RANKS)]
    tb = Testbed(provider, node_names=tuple(names))
    setups = connect_group(tb, names)
    total = RANKS * N_PER_RANK
    initial = [0.0] * total
    initial[0] = 100.0            # hot boundary
    initial[total // 2] = 50.0    # hot spot in the middle
    result = {}

    def rank_app(r):
        group = yield from setups[r]
        lo = r * N_PER_RANK
        cells = initial[lo:lo + N_PER_RANK]
        yield from group.barrier()
        t0 = tb.now
        for _ in range(ITERS):
            # halo exchange: send edges, receive neighbours' edges
            left = group.rank - 1
            right = group.rank + 1
            if right < group.size:
                yield from group.send(right, _TAG_RIGHT, pack(cells[-1]))
            if left >= 0:
                yield from group.send(left, _TAG_LEFT, pack(cells[0]))
            halo_l = unpack((yield from group.recv(left, _TAG_RIGHT))) \
                if left >= 0 else None
            halo_r = unpack((yield from group.recv(right, _TAG_LEFT))) \
                if right < group.size else None
            # local update (boundaries of the global domain are fixed)
            ext = ([halo_l] if halo_l is not None else []) + cells \
                + ([halo_r] if halo_r is not None else [])
            off = 1 if halo_l is not None else 0
            nxt = cells[:]
            for i in range(len(cells)):
                j = i + off
                if lo + i in (0, total - 1):
                    continue
                if 0 < j < len(ext) - 1:
                    nxt[i] = ext[j] + ALPHA * (ext[j - 1] - 2 * ext[j]
                                               + ext[j + 1])
            # global residual via allreduce (max |delta|)
            delta = max(abs(a - b) for a, b in zip(cells, nxt))
            biggest = yield from group.allreduce(
                pack(delta), lambda x, y: x if unpack(x) >= unpack(y) else y)
            cells = nxt
            result.setdefault("residuals", []).append(unpack(biggest))
        result[r] = cells
        if r == 0:
            result["elapsed"] = tb.now - t0

    procs = [tb.spawn(rank_app(r), f"rank{r}") for r in range(RANKS)]
    for p in procs:
        tb.run(p)
    combined = []
    for r in range(RANKS):
        combined.extend(result[r])
    return combined, result["elapsed"]


def main() -> None:
    base = [0.0] * (RANKS * N_PER_RANK)
    base[0] = 100.0
    base[len(base) // 2] = 50.0
    expected = reference(base, ITERS)

    print(f"1-D heat stencil: {RANKS * N_PER_RANK} cells on {RANKS} "
          f"nodes, {ITERS} iterations (halo exchange + allreduce)\n")
    print(f"{'provider':<10s} {'time (ms sim)':>14s} {'per-iter (us)':>14s}")
    for provider in ("mvia", "bvia", "clan", "iba"):
        combined, elapsed = run_on(provider)
        worst = max(abs(a - b) for a, b in zip(combined, expected))
        assert worst < 1e-9, f"{provider}: numerical divergence {worst}"
        print(f"{provider:<10s} {elapsed / 1000:>14.2f} "
              f"{elapsed / ITERS:>14.1f}")
    print("\nAll four runs reproduce the single-process reference bit-"
          "for-bit.\nPer-iteration cost is two neighbour messages plus a "
          "log2(4)=2-round\nallreduce — small-message latency (Fig. 3) "
          "is the whole story, which\nis why the provider ordering here "
          "mirrors the 4 B latency column.")


if __name__ == "__main__":
    main()
