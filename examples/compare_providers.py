#!/usr/bin/env python3
"""Compare the three VIA implementations the paper evaluates.

Regenerates compact versions of the headline results — Table 1 plus the
Fig. 3 latency/bandwidth comparison — and prints the architectural
reading the paper draws from them.

Run:  python examples/compare_providers.py
"""

from repro.vibe import (
    base_bandwidth,
    base_latency,
    nondata_costs,
    render_figure,
    render_table1,
)

PROVIDERS = ("mvia", "bvia", "clan")
SIZES = [4, 64, 1024, 4096, 12288, 28672]


def main() -> None:
    print(render_table1({p: nondata_costs(p, repeats=3) for p in PROVIDERS}))
    print()

    lat = [base_latency(p, SIZES) for p in PROVIDERS]
    print(render_figure(lat, "latency_us",
                        "Base one-way latency, polling (us)"))
    print()
    bw = [base_bandwidth(p, SIZES) for p in PROVIDERS]
    print(render_figure(bw, "bandwidth_mbs",
                        "Base streaming bandwidth (MB/s)"))

    by = {r.provider: r for r in lat}
    print(f"""
Reading the results (paper §4.3.1):
 - cLAN (hardware VIA) has the lowest small-message latency
   ({by['clan'].point(4).latency_us:.1f} us at 4 B) — doorbells are MMIO
   stores and translation tables live on the NIC.
 - M-VIA beats Berkeley VIA for short messages
   ({by['mvia'].point(4).latency_us:.1f} vs
   {by['bvia'].point(4).latency_us:.1f} us) but its kernel staging
   copies make it the slowest for long ones.
 - Berkeley VIA's zero-copy path wins at 28 KiB
   ({by['bvia'].point(28672).latency_us:.0f} us one-way) and gives it
   the best large-message bandwidth of the three.
""")


if __name__ == "__main__":
    main()
