#!/usr/bin/env python3
"""Explore the VIA implementation design space (the paper's ref [5]).

The simulated provider is one engine parameterised by design choices;
this example flips one knob at a time on a Berkeley-VIA baseline and
shows how each architectural decision moves the headline numbers —
the experiment CANPC'00 ran with five separate implementations.

Run:  python examples/design_space_explorer.py
"""

from repro.providers import get_spec
from repro.providers.costs import DispatchKind, TableLocation
from repro.vibe import TransferConfig, run_bandwidth, run_latency

BASE = get_spec("bvia")

VARIANTS = [
    ("baseline (BVIA)", BASE),
    ("+ tables in NIC memory",
     BASE.with_choices(table_location=TableLocation.NIC_MEMORY)),
    ("+ direct doorbell dispatch",
     BASE.with_choices(dispatch=DispatchKind.DIRECT)),
    ("+ both (cLAN-like NIC)",
     BASE.with_choices(table_location=TableLocation.NIC_MEMORY,
                       dispatch=DispatchKind.DIRECT)),
    ("+ bigger translation cache (256 entries)",
     BASE.with_choices(nic_tlb_entries=256)),
]


def main() -> None:
    print("Design-choice ablation on the Berkeley VIA baseline")
    print(f"{'variant':<42s} {'4B lat':>8s} {'28K lat*':>9s} {'16VIs':>8s}")
    print(f"{'':42s} {'(us)':>8s} {'0% reuse':>9s} {'4B (us)':>8s}")
    for name, spec in VARIANTS:
        lat4 = run_latency(spec, TransferConfig(size=4)).latency_us
        reuse = run_latency(spec, TransferConfig(
            size=28672, buffer_pool=48, reuse_fraction=0.0, iters=32,
        )).latency_us
        multi = run_latency(spec, TransferConfig(size=4, extra_vis=15)).latency_us
        print(f"{name:<42s} {lat4:8.1f} {reuse:9.1f} {multi:8.1f}")

    print("""
What the knobs do:
 - NIC-resident tables kill the buffer-reuse penalty (the 28K/0% column
   drops to the 100%-reuse figure) but leave everything else alone;
 - direct dispatch removes the per-VI polling tax (16-VI column falls
   back to the 1-VI latency);
 - a bigger cache helps only while the working set fits — unlike moving
   the whole table onto the NIC.
This is the decomposition a raw ping-pong number cannot give you —
the reason the paper proposes VIBe in the first place.""")


if __name__ == "__main__":
    main()
