#!/usr/bin/env python3
"""Quickstart: bring up a simulated VIA testbed and exchange messages.

Walks the full VIPL-style lifecycle on the cLAN provider — open, create
VI, register memory, connect, post descriptors, reap completions — then
runs a miniature latency sweep with the VIBe harness.

Run:  python examples/quickstart.py
"""

from repro.providers import Testbed
from repro.via import Descriptor
from repro.vibe import TransferConfig, run_latency


def main() -> None:
    tb = Testbed("clan")          # two nodes on a simulated Giganet fabric

    def client():
        h = tb.open("node0", "client")          # VipOpenNic
        vi = yield from h.create_vi()           # VipCreateVi
        buf = h.alloc(4096)
        mh = yield from h.register_mem(buf)     # VipRegisterMem (pins pages)
        yield from h.connect(vi, "node1", discriminator=7)

        msg = b"hello, virtual interface!"
        h.write(buf, msg)
        segs = [h.segment(buf, mh, 0, len(msg))]
        yield from h.post_recv(vi, Descriptor.recv(segs))   # for the echo
        yield from h.post_send(vi, Descriptor.send(segs))   # VipPostSend
        yield from h.send_wait(vi)                          # VipSendWait
        echo = yield from h.recv_wait(vi)                   # VipRecvWait
        print(f"[client] echo of {echo.control.length} bytes "
              f"at t={tb.now:.2f} us: {h.read(buf, echo.control.length)!r}")
        yield from h.disconnect(vi)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        buf = h.alloc(4096)
        mh = yield from h.register_mem(buf)
        segs = [h.segment(buf, mh, 0, 25)]
        yield from h.post_recv(vi, Descriptor.recv(segs))   # pre-post!
        request = yield from h.connect_wait(7)              # VipConnectWait
        yield from h.accept(request, vi)                    # VipConnectAccept
        got = yield from h.recv_wait(vi)
        print(f"[server] received {got.control.length} bytes "
              f"at t={tb.now:.2f} us")
        yield from h.post_send(vi, Descriptor.send(segs))   # echo it back
        yield from h.send_wait(vi)

    cproc = tb.spawn(client())
    tb.spawn(server())
    tb.run(cproc)

    print("\nMini latency sweep (one-way, polling):")
    for size in (4, 256, 4096):
        m = run_latency("clan", TransferConfig(size=size, iters=12))
        print(f"  {size:5d} B  ->  {m.latency_us:7.2f} us  "
              f"(sender CPU {m.cpu_send:.0%})")


if __name__ == "__main__":
    main()
