#!/usr/bin/env python3
"""A key-value service over VIA: the paper's client-server model, live.

Builds the RPC layer (repro.layers.rpc) on a cLAN connection, runs a
small key-value store with GET/PUT/STATS methods, and measures sustained
calls per second — the quantity Fig. 7 relates to "RPCs or method
calls/second sustained on a single VI connection".

Run:  python examples/client_server_rpc.py
"""

import struct

from repro.layers import MsgEndpoint, RpcClient, RpcServer
from repro.providers import Testbed


def main() -> None:
    tb = Testbed("clan")
    store: dict[bytes, bytes] = {}
    out: dict = {}

    # --- server: a tiny key-value store -------------------------------
    def kv_put(payload: bytes) -> bytes:
        klen = payload[0]
        key, value = payload[1:1 + klen], payload[1 + klen:]
        store[key] = value
        return b"ok"

    def kv_get(payload: bytes) -> bytes:
        return store.get(payload, b"")

    def kv_stats(_payload: bytes) -> bytes:
        return struct.pack(">I", len(store))

    def server():
        h = tb.open("node1", "kv-server")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        request = yield from h.connect_wait(80)
        yield from h.accept(request, vi)
        rpc = RpcServer(msg)
        rpc.register("put", kv_put)
        rpc.register("get", kv_get)
        rpc.register("stats", kv_stats)
        yield from rpc.serve(max_calls=2 * 64 + 1)
        out["served"] = rpc.calls_served

    # --- client workload ------------------------------------------------
    def client():
        h = tb.open("node0", "kv-client")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        yield from h.connect(vi, "node1", 80)
        rpc = RpcClient(msg)

        t0 = tb.now
        for i in range(64):
            key = f"key-{i}".encode()
            value = bytes([i]) * (16 + i * 4)
            payload = bytes([len(key)]) + key + value
            reply = yield from rpc.call(0, payload)      # put
            assert reply == b"ok"
        for i in range(64):
            value = yield from rpc.call(1, f"key-{i}".encode())  # get
            assert value == bytes([i]) * (16 + i * 4)
        count = yield from rpc.call(2)                    # stats
        elapsed_s = (tb.now - t0) / 1e6
        out["keys"] = struct.unpack(">I", count)[0]
        out["cps"] = rpc.calls_made / elapsed_s

    cproc = tb.spawn(client())
    sproc = tb.spawn(server())
    tb.run(cproc)
    tb.run(sproc)

    print(f"key-value store holds {out['keys']} keys "
          f"(server answered {out['served']} calls)")
    print(f"sustained {out['cps']:,.0f} RPC calls/second on one VI "
          f"(cLAN; cf. Fig. 7's ~50k transactions/s for small replies)")


if __name__ == "__main__":
    main()
