"""Provider tests: connection establishment, rejection, teardown."""

import pytest

from repro.providers import Testbed
from repro.via import (
    Descriptor,
    Reliability,
    ViState,
    VipConnectionError,
    VipStateError,
    VipTimeout,
)

from conftest import run_pair, run_proc


def test_connect_accept_roundtrip(provider_name):
    tb = Testbed(provider_name)
    state = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        yield from h.connect(vi, "node1", 5)
        state["client_vi"] = vi

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        req = yield from h.connect_wait(5)
        assert req.client_node == "node0"
        yield from h.accept(req, vi)
        state["server_vi"] = vi

    run_pair(tb, client(), server())
    cvi, svi = state["client_vi"], state["server_vi"]
    assert cvi.is_connected and svi.is_connected
    assert cvi.peer == ("node1", svi.vi_id)
    assert svi.peer == ("node0", cvi.vi_id)


def test_connect_cost_matches_table1(provider_name):
    tb = Testbed(provider_name)
    costs = tb.provider("node0").costs
    out = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        t0 = tb.now
        yield from h.connect(vi, "node1", 5)
        out["cost"] = tb.now - t0

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)

    run_pair(tb, client(), server())
    expected = costs.conn_client + costs.conn_server
    # wire round-trip adds a small amount on top of the CPU shares
    assert expected < out["cost"] < expected + 50


def test_reject_raises_at_client(provider_name):
    tb = Testbed(provider_name)
    got = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        with pytest.raises(VipConnectionError):
            yield from h.connect(vi, "node1", 5)
        got["state"] = vi.state

    def server():
        h = tb.open("node1", "server")
        req = yield from h.connect_wait(5)
        yield from h.reject(req)

    run_pair(tb, client(), server())
    assert got["state"] is ViState.IDLE


def test_connect_timeout(provider_name):
    tb = Testbed(provider_name)

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        with pytest.raises(VipTimeout):
            yield from h.connect(vi, "node1", 99, timeout=10_000.0)
        assert vi.state is ViState.IDLE

    run_proc(tb.sim, client())


def test_reliability_mismatch_rejected(provider_name):
    tb = Testbed(provider_name)

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi(reliability=Reliability.RELIABLE_DELIVERY)
        with pytest.raises(VipConnectionError):
            yield from h.connect(vi, "node1", 5)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi(reliability=Reliability.UNRELIABLE)
        req = yield from h.connect_wait(5)
        with pytest.raises(VipConnectionError, match="mismatch"):
            yield from h.accept(req, vi)

    run_pair(tb, client(), server())


def test_disconnect_flushes_and_informs_peer(provider_name):
    tb = Testbed(provider_name)
    state = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, "node1", 5)
        yield from h.post_recv(vi, Descriptor.recv([h.segment(region, mh)]))
        yield from h.disconnect(vi)
        state["client_vi"] = vi
        # flushed descriptor is reapable
        desc = yield from h.recv_done(vi)
        state["flushed"] = desc

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)
        while vi.is_connected:
            yield tb.sim.timeout(5.0)
        state["server_vi"] = vi

    run_pair(tb, client(), server())
    assert state["client_vi"].state is ViState.DISCONNECTED
    assert state["server_vi"].state is ViState.DISCONNECTED
    from repro.via import CompletionStatus

    assert state["flushed"].status is CompletionStatus.FLUSHED


def test_post_requires_connected_state(provider_name):
    tb = Testbed(provider_name)

    def body():
        h = tb.open("node0", "app")
        vi = yield from h.create_vi()
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        with pytest.raises(VipStateError):
            yield from h.post_send(vi, Descriptor.send([h.segment(region, mh)]))
        # receives may pre-post before connection
        yield from h.post_recv(vi, Descriptor.recv([h.segment(region, mh)]))
        assert vi.recv_q.outstanding == 1

    run_proc(tb.sim, body())


def test_unknown_host_rejected(provider_name):
    tb = Testbed(provider_name)

    def body():
        h = tb.open("node0", "app")
        vi = yield from h.create_vi()
        with pytest.raises(VipConnectionError, match="unknown host"):
            yield from h.connect(vi, "ghost", 5)

    run_proc(tb.sim, body())


def test_concurrent_connections_on_distinct_discriminators(provider_name):
    tb = Testbed(provider_name)
    done = []

    def client(disc):
        h = tb.open("node0", f"client{disc}")
        vi = yield from h.create_vi()
        yield from h.connect(vi, "node1", disc)
        done.append(disc)

    def server():
        h = tb.open("node1", "server")
        for disc in (11, 12):
            vi = yield from h.create_vi()
            req = yield from h.connect_wait(disc)
            yield from h.accept(req, vi)

    procs = [tb.spawn(client(11)), tb.spawn(client(12)), tb.spawn(server())]
    for p in procs:
        tb.run(p)
    assert sorted(done) == [11, 12]
