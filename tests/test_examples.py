"""Every shipped example must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they show"


def test_example_inventory():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 8  # quickstart + >=7 scenario examples
