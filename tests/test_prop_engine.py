"""Property-based tests for engine helpers and end-to-end integrity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.providers import Testbed
from repro.providers.engine import fragment_sizes, gather, scatter
from repro.hw.memory import MemorySystem
from repro.via import DataSegment, Descriptor
from repro.via.memory import MemoryRegistry

from conftest import run_pair, simple_recv, simple_send


@given(st.integers(min_value=0, max_value=1 << 20),
       st.integers(min_value=64, max_value=65536))
def test_fragment_sizes_partition_total(total, mtu):
    sizes = fragment_sizes(total, mtu)
    assert sum(sizes) == total or (total == 0 and sizes == [0])
    assert len(sizes) >= 1
    assert all(0 <= s <= mtu for s in sizes)
    if total > 0:
        assert all(s > 0 for s in sizes)
        assert len(sizes) == -(-total // mtu)


@given(st.lists(st.integers(min_value=0, max_value=300), min_size=1,
                max_size=6),
       st.binary(min_size=0, max_size=2000))
@settings(max_examples=60, deadline=None)
def test_gather_scatter_roundtrip(seg_lengths, payload):
    mem = MemorySystem()
    registry = MemoryRegistry(mem)
    total = sum(seg_lengths)
    payload = payload[:total]
    src = mem.alloc(max(total, 1))
    dst = mem.alloc(max(total, 1))
    mh_src = registry.register(src.base, max(total, 1), tag=1)
    mh_dst = registry.register(dst.base, max(total, 1), tag=1)
    mem.write(src.base, payload)

    def segs(region, mh):
        out, off = [], 0
        for ln in seg_lengths:
            out.append(DataSegment(region.base + off, ln, mh))
            off += ln
        return tuple(out)

    send = Descriptor.send(segs(src, mh_src))
    data = gather(mem, send)
    assert data == payload + b"\x00" * (total - len(payload))
    recv = Descriptor.recv(segs(dst, mh_dst))
    scatter(mem, recv, data)
    assert mem.read(dst.base, total) == data


@st.composite
def message_spec(draw):
    size = draw(st.integers(min_value=0, max_value=20000))
    nsegs = draw(st.integers(min_value=1, max_value=4))
    provider = draw(st.sampled_from(["mvia", "bvia", "clan"]))
    return size, nsegs, provider


@given(message_spec(), st.binary(min_size=1, max_size=64))
@settings(max_examples=25, deadline=None)
def test_end_to_end_integrity_random_sizes_and_segments(spec, seed_bytes):
    """Any message, any provider, any segmentation: bytes arrive intact
    and exactly once."""
    size, nsegs, provider = spec
    pattern = (seed_bytes * (size // len(seed_bytes) + 1))[:size]
    tb = Testbed(provider)
    from repro.vibe import split_segments

    out = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, "node1", 3)
        h.write(region, pattern)
        segs = split_segments(h, region, mh, size, min(nsegs, max(size, 1)))
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        segs = split_segments(h, region, mh, size, 1)
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(3)
        yield from h.accept(req, vi)
        desc = yield from h.recv_wait(vi)
        out["len"] = desc.control.length
        out["data"] = h.read(region, size)

    run_pair(tb, client(), server())
    assert out["len"] == size
    assert out["data"] == pattern


@given(st.integers(min_value=0, max_value=100),
       st.floats(min_value=0.0, max_value=1.0))
def test_reuse_schedule_counts(iters, frac):
    from repro.vibe import reuse_schedule

    sched = reuse_schedule(iters, frac, 16)
    assert len(sched) == iters
    assert all(0 <= i < 16 for i in sched)
    # the number of reuse hits tracks the fraction within rounding
    assert abs(sched.count(0) - frac * iters) <= 1 or frac in (0.0, 1.0)
