"""Tests for the future-work extensions: the IBA provider, the
multi-client scalability benchmark, and the programming-model benches."""

import pytest

from repro.providers import PROVIDERS, Testbed
from repro.vibe import (
    TransferConfig,
    base_latency,
    dsm_fault_latency,
    dsm_pingpong_sharing,
    eager_threshold_sweep,
    getput_latency,
    msg_layer_bandwidth,
    msg_layer_latency,
    multiclient_throughput,
    run_latency,
)


# ---- IBA provider -----------------------------------------------------------

def test_iba_registered():
    assert "iba" in PROVIDERS
    spec = PROVIDERS["iba"]
    assert spec.choices.supports_rdma_read
    assert spec.network.mtu == 2048


def test_iba_fastest_latency():
    sizes = [4, 4096]
    iba = base_latency("iba", sizes)
    clan = base_latency("clan", sizes)
    for s in sizes:
        assert iba.point(s).latency_us < clan.point(s).latency_us


def test_iba_pci_bound_bandwidth():
    """A first-generation HCA saturates the 32-bit PCI bus, not its
    2.5 Gb/s link."""
    from repro.vibe import base_bandwidth

    bw = base_bandwidth("iba", [28672]).point(28672).bandwidth_mbs
    assert 110 < bw < 132  # below the PCI ceiling, above the VIA stacks


def test_iba_runs_whole_via_suite_unmodified():
    """Forward portability: the unmodified VIBe machinery runs on IBA."""
    m = run_latency("iba", TransferConfig(size=1024, iters=6))
    assert m.latency_us > 0 and m.cpu_send == pytest.approx(1.0)
    from repro.vibe import nondata_costs

    res = nondata_costs("iba", repeats=2)
    assert res.point("create_vi").extra["cost_us"] < 5


# ---- multi-client scalability ------------------------------------------------

def test_multiclient_aggregates_scale_until_server_saturates():
    res = multiclient_throughput("clan", client_counts=(1, 4),
                                 transactions=8)
    assert res.point(4).tps > res.point(1).tps
    assert res.point(4).extra["tps_per_client"] \
        < res.point(1).extra["tps_per_client"]


def test_multiclient_bvia_pays_per_vi_tax():
    """Every added client is another open VI for the firmware to poll.
    Flipping only the dispatch knob isolates the tax: a direct-dispatch
    BVIA serves 8 clients measurably faster than the polled baseline."""
    from repro.providers import get_spec
    from repro.providers.costs import DispatchKind

    polled = multiclient_throughput("bvia", client_counts=(8,),
                                    transactions=6)
    direct = multiclient_throughput(
        get_spec("bvia").with_choices(dispatch=DispatchKind.DIRECT),
        client_counts=(8,), transactions=6)
    assert direct.point(8).tps > polled.point(8).tps * 1.1


# ---- message-layer benchmarks ----------------------------------------------------

def test_msg_layer_latency_above_raw_via(provider_name):
    raw = run_latency(provider_name, TransferConfig(size=1024)).latency_us
    layered = msg_layer_latency(provider_name, [1024], iters=8)
    assert layered.point(1024).latency_us > raw


def test_msg_layer_bandwidth_positive():
    res = msg_layer_bandwidth("clan", [4096], count=30)
    assert 0 < res.point(4096).bandwidth_mbs < 130


def test_eager_threshold_crossover_annotated():
    res = eager_threshold_sweep("bvia", size=8192,
                                thresholds=(1024, 16384), iters=6)
    protos = {p.param: p.extra["protocol"] for p in res.points}
    assert protos == {1024: "rendezvous", 16384: "eager"}


# ---- get/put benchmarks ------------------------------------------------------------

def test_getput_emulated_get_costs_more_than_put():
    res = getput_latency("bvia", sizes=[1024], iters=6)
    point = res.point(1024)
    assert point.extra["get_us"] > point.extra["put_us"]


def test_getput_rdma_read_get_cheaper_than_emulation():
    emulated = getput_latency("clan", sizes=[1024], iters=6)
    onesided = getput_latency("iba", sizes=[1024], iters=6)
    assert onesided.point(1024).extra["get_us"] \
        < emulated.point(1024).extra["get_us"]


# ---- DSM benchmarks -----------------------------------------------------------------

def test_dsm_fault_latency_orders_providers():
    fast = dsm_fault_latency("iba", page_sizes=(4096,), faults=5)
    slow = dsm_fault_latency("mvia", page_sizes=(4096,), faults=5)
    assert fast.point(4096).extra["read_miss_us"] \
        < slow.point(4096).extra["read_miss_us"]


def test_dsm_fault_latency_grows_with_page_size():
    res = dsm_fault_latency("clan", page_sizes=(1024, 16384), faults=5)
    assert res.point(16384).extra["read_miss_us"] \
        > res.point(1024).extra["read_miss_us"]


def test_dsm_pingpong_counts_migrations():
    m = dsm_pingpong_sharing("clan", rounds=5)
    assert m.latency_us > 0
    assert m.extra["ownership_moves"] >= 2 * 5 - 2
