"""Snapshot/restore equivalence: a restored run IS the original run.

The correctness bar of the ``repro.snap`` subsystem: for *any* snapshot
point — random event cursor, mid-fast-forward, with an armed fault
plan — finishing the original simulation and finishing a restored copy
produce bit-identical observables:

- every descriptor's ``completed_at`` timestamp;
- the full harvested metrics registry (NIC/DMA/TLB/wire/engine/port
  counters, kernel accounting);
- the complete golden trace ``(t, category, label, node)`` sequence.

Hypothesis drives the snapshot point across workload x provider x cut
fraction; dedicated tests pin the tricky cases (fidelity="auto" bursts,
armed FaultPlans, quiescence refusal, state-tier round trips).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import snap
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.harvest import harvest_testbed

ALL_PROVIDERS = ("mvia", "bvia", "clan", "iba")
WORKLOADS = ("pingpong", "stream", "rdma_write", "segmented")


def _params(workload: str, provider: str, **over) -> dict:
    p = {"workload": workload, "provider": provider, "size": 256,
         "count": 3, "seed": 0, "trace": True}
    p.update(over)
    return p


def _cold(params: dict) -> snap.Session:
    session = snap.build_session("transfer", params)
    session.drive()
    return session


def _observe(session: snap.Session) -> dict:
    """Everything a finished run exposes, in comparable form."""
    tb = session.testbed
    trace = ()
    if tb.sim.tracer is not None:
        trace = tuple((e.t, e.category, e.label, e.node)
                      for e in tb.sim.tracer.events)
    return {
        "board": session.board,
        "now": tb.sim.now,
        "events_run": tb.sim.events_run,
        "harvest": harvest_testbed(tb).snapshot(),
        "trace": trace,
    }


# ---------------------------------------------------------------------------
# the property: snapshot anywhere, restore, finish -> identical run
# ---------------------------------------------------------------------------

@given(
    workload=st.sampled_from(WORKLOADS),
    provider=st.sampled_from(ALL_PROVIDERS),
    frac=st.floats(min_value=0.0, max_value=1.0,
                   allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=24, deadline=None)
def test_snapshot_anywhere_is_equivalent(workload, provider, frac, seed):
    params = _params(workload, provider, seed=seed)
    ref = _cold(params)
    want = _observe(ref)
    cut = int(frac * want["events_run"])

    session = snap.build_session("transfer", params)
    session.run_events(cut)
    blob = snap.snapshot(session)
    restored = snap.restore(blob)
    restored.drive()
    assert _observe(restored) == want

    # the interrupted original finishes identically too: taking a
    # snapshot must not perturb the simulation it captured
    session.drive()
    assert _observe(session) == want


# ---------------------------------------------------------------------------
# fidelity="auto": snapshot points inside and outside fast-forward bursts
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("provider,fidelity", [
    # auto bursts only multi-fragment messages, so it needs size > MTU:
    # reachable on mvia (1500) and iba (2048).  bvia/clan MTUs exceed
    # their max_transfer_size — single-fragment always — so their
    # fast-forward path is fidelity="flow", which bursts whole messages.
    ("mvia", "auto"), ("iba", "auto"), ("bvia", "flow"), ("clan", "flow"),
])
def test_snapshot_during_fast_forward(provider, fidelity):
    """Cut every few events through a fast-forwarding streaming run.

    The sweep necessarily lands cursors both inside fast-forwarded
    stretches and in ordinary packet-mode gaps; every one must restore
    to the identical completion.  (No tracer here: an attached tracer
    forces the packet path and no burst would ever arm.)
    """
    params = _params("stream", provider, count=8, size=8192, trace=False,
                     fidelity=fidelity)
    ref = _cold(params)
    want = _observe(ref)
    assert ref.testbed.sim.ff_bursts > 0, \
        "auto fidelity never burst; the test is vacuous"

    total = want["events_run"]
    for cut in range(0, total + 1, max(1, total // 9)):
        session = snap.build_session("transfer", params)
        session.run_events(cut)
        restored = snap.restore(snap.snapshot(session))
        restored.drive()
        assert _observe(restored) == want, f"diverged at cut {cut}"


# ---------------------------------------------------------------------------
# armed fault plans: live fault state replays too
# ---------------------------------------------------------------------------

# the window blankets the whole run: mvia's connection handshake alone
# runs past 6ms, so a narrow early window would never see a data frame.
# the rate is gentle enough that retransmission always recovers — a
# hard connect failure would error the VI and end the run early
_FAULT_PLAN = FaultPlan(name="snap-eq", seed=5, faults=(
    FaultSpec(kind="wire_loss", at=200.0, duration=80_000.0, rate=0.15),
))


@pytest.mark.parametrize("provider", ("mvia", "clan"))
def test_snapshot_with_armed_fault_plan(provider):
    """Snapshot points before, during, and after an armed loss window
    restore bit-identically — the injector's RNG streams, counters, and
    retransmission state are all part of the replayed history."""
    params = _params("pingpong", provider, count=4, trace=False,
                     faults=_FAULT_PLAN,
                     reliability="reliable_delivery")
    ref = _cold(params)
    want = _observe(ref)
    injector = ref.testbed.injector
    assert injector is not None and sum(injector.counters.values()) > 0, \
        "the plan never injected; the test is vacuous"

    total = want["events_run"]
    for cut in (0, total // 4, total // 2, (3 * total) // 4, total):
        session = snap.build_session("transfer", params)
        session.run_events(cut)
        restored = snap.restore(snap.snapshot(session))
        restored.drive()
        got = _observe(restored)
        assert got == want, f"diverged at cut {cut}"
        got_inj = restored.testbed.injector
        assert got_inj.counters == injector.counters


# ---------------------------------------------------------------------------
# state tier: quiescent testbeds round-trip and keep simulating
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("provider", ALL_PROVIDERS)
def test_state_tier_round_trip_continues_identically(provider):
    """A warmed testbed restored from a state blob runs further work on
    the exact timeline the original would have."""
    def more_work(tb):
        session = snap.Session(tb, [], {})
        from repro.via.descriptor import Descriptor

        out = {}

        def client():
            h = tb.open(tb.node_names[0], "again")
            vi = yield from h.create_vi()
            region = h.alloc(64)
            mh = yield from h.register_mem(region)
            segs = [h.segment(region, mh, 0, 64)]
            yield from h.post_recv(vi, Descriptor.recv(segs))
            yield from h.connect(vi, tb.node_names[1], 23)
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)
            done = yield from h.recv_wait(vi)
            out["completed_at"] = done.completed_at

        def server():
            h = tb.open(tb.node_names[1], "again-srv")
            vi = yield from h.create_vi()
            region = h.alloc(64)
            mh = yield from h.register_mem(region)
            segs = [h.segment(region, mh, 0, 64)]
            yield from h.post_recv(vi, Descriptor.recv(segs))
            req = yield from h.connect_wait(23)
            yield from h.accept(req, vi)
            yield from h.recv_wait(vi)
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

        session.procs = [tb.spawn(client(), "again"),
                         tb.spawn(server(), "again-srv")]
        session.board = out
        session.drive()
        return out, tb.sim.events_run, tb.sim.now, \
            harvest_testbed(tb).snapshot()

    tb = snap.warmed_testbed(provider)
    blob = tb.checkpoint()
    restored = type(tb).from_checkpoint(blob)
    assert more_work(restored) == more_work(snap.warmed_testbed(provider))


def test_state_tier_refuses_non_quiescent_points():
    session = snap.build_session("transfer", _params("pingpong", "mvia"))
    session.run_events(40)
    with pytest.raises(snap.SnapshotStateError):
        snap.snapshot_state(session.testbed)


def test_state_tier_refuses_live_waiting_processes():
    """Quiescent queue but a process parked on a signal forever: the
    state tier must refuse (generator frames are not serializable), not
    emit a corrupt blob."""
    from repro.providers import Testbed

    tb = Testbed("mvia")

    def waiter():
        h = tb.open(tb.node_names[0], "waiter")
        yield from h.connect_wait(99)   # nobody ever dials

    tb.spawn(waiter(), "waiter")
    tb.run()
    with pytest.raises(snap.SnapshotStateError):
        tb.checkpoint()


# ---------------------------------------------------------------------------
# warm start: the construction-checkpoint path is invisible to results
# ---------------------------------------------------------------------------

def test_warm_start_results_byte_identical():
    from repro.vibe.harness import TransferConfig, run_latency

    cfg = TransferConfig(size=128, iters=4, warmup=1)
    cold = [run_latency(p, cfg) for p in ALL_PROVIDERS]
    snap.enable_warm_start(True)
    try:
        warm = [run_latency(p, cfg) for p in ALL_PROVIDERS]
        stats = snap.pool_stats()
    finally:
        snap.enable_warm_start(False)
        snap.clear_pool()
    assert [repr(m) for m in warm] == [repr(m) for m in cold]
    # one build per provider, every later cell a hit
    assert stats["builds"] == len(ALL_PROVIDERS)


def test_warm_start_ineligible_faulted_cells_fall_back():
    from repro.providers import Testbed

    snap.enable_warm_start(True)
    try:
        tb = Testbed.create("mvia", faults=_FAULT_PLAN)
        assert tb.injector is not None
        assert snap.pool_stats()["entries"] == 0
    finally:
        snap.enable_warm_start(False)
        snap.clear_pool()
