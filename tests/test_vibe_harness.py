"""Unit tests for the VIBe measurement harness internals."""

import pytest

from repro.providers import Testbed
from repro.vibe import (
    TransferConfig,
    reuse_schedule,
    run_bandwidth,
    run_latency,
    split_segments,
)
from repro.vibe.metrics import BenchResult, Measurement, merge_tables


def test_reuse_schedule_full_reuse():
    assert reuse_schedule(10, 1.0, 8) == [0] * 10


def test_reuse_schedule_zero_reuse_cycles_pool():
    sched = reuse_schedule(6, 0.0, 4)
    assert sched == [1, 2, 3, 1, 2, 3]
    assert 0 not in sched


def test_reuse_schedule_half():
    sched = reuse_schedule(10, 0.5, 8)
    assert sched.count(0) == 5
    assert all(i != 0 for i in sched[::2]) or all(i == 0 for i in sched[1::2])


def test_reuse_schedule_fraction_is_respected():
    for frac in (0.25, 0.75):
        sched = reuse_schedule(100, frac, 50)
        assert sched.count(0) == pytest.approx(frac * 100, abs=1)


def test_reuse_schedule_pool_one_always_zero():
    assert reuse_schedule(5, 0.0, 1) == [0] * 5


def test_reuse_schedule_validation():
    with pytest.raises(ValueError):
        reuse_schedule(5, 1.5, 4)
    with pytest.raises(ValueError):
        reuse_schedule(5, 0.5, 0)


def test_split_segments_partitions_exactly():
    tb = Testbed("clan")
    h = tb.open("node0", "a")

    def body():
        region = h.alloc(1000)
        mh = yield from h.register_mem(region)
        segs = split_segments(h, region, mh, 1000, 3)
        assert len(segs) == 3
        assert sum(s.length for s in segs) == 1000
        assert segs[0].address == region.base
        assert segs[1].address == region.base + segs[0].length
        with pytest.raises(ValueError):
            split_segments(h, region, mh, 100, 0)

    tb.run(tb.spawn(body()))


def test_run_latency_returns_complete_measurement(provider_name):
    m = run_latency(provider_name, TransferConfig(size=64, iters=8, warmup=1))
    assert m.param == 64
    assert m.latency_us > 0
    assert 0 < m.cpu_send <= 1.0 + 1e-9
    assert 0 < m.cpu_recv <= 1.0 + 1e-9


def test_run_bandwidth_returns_complete_measurement(provider_name):
    m = run_bandwidth(provider_name, TransferConfig(size=4096, count=40))
    assert m.bandwidth_mbs > 0
    assert m.cpu_send is not None and m.cpu_recv is not None


def test_latency_deterministic_across_runs(provider_name):
    cfg = TransferConfig(size=256, iters=10)
    a = run_latency(provider_name, cfg).latency_us
    b = run_latency(provider_name, cfg).latency_us
    assert a == b


def test_bandwidth_bounded_by_line_rate(provider_name):
    tb = Testbed(provider_name)
    line = tb.fabric.network.bandwidth
    m = run_bandwidth(provider_name, TransferConfig(size=28672, count=60))
    assert m.bandwidth_mbs < line


def test_window_one_slower_than_window_32(provider_name):
    slow = run_bandwidth(provider_name,
                         TransferConfig(size=4096, count=40, window=1))
    fast = run_bandwidth(provider_name,
                         TransferConfig(size=4096, count=40, window=32))
    assert fast.bandwidth_mbs >= slow.bandwidth_mbs


def test_measurement_get_and_fields():
    m = Measurement(param=4, latency_us=10.0, extra={"custom": 7})
    assert m.get("latency_us") == 10.0
    assert m.get("custom") == 7
    # unknown names raise, matching BenchResult.point; a dict.get-style
    # default opts back into tolerance
    with pytest.raises(KeyError):
        m.get("missing")
    assert m.get("missing", None) is None


def test_bench_result_table_and_series():
    r = BenchResult("b", "prov", [
        Measurement(param=4, latency_us=10.0),
        Measurement(param=8, latency_us=20.0),
    ], {"mode": "poll"})
    assert r.series("latency_us") == [(4, 10.0), (8, 20.0)]
    assert r.point(8).latency_us == 20.0
    with pytest.raises(KeyError):
        r.point(99)
    text = r.table()
    assert "b [prov]" in text and "latency_us" in text and "20.00" in text


def test_merge_tables_side_by_side():
    a = BenchResult("b", "p1", [Measurement(param=4, latency_us=1.0)])
    b = BenchResult("b", "p2", [Measurement(param=4, latency_us=2.0)])
    text = merge_tables([a, b], "latency_us", title="T")
    assert text.splitlines()[0] == "T"
    assert "p1" in text and "p2" in text
    assert merge_tables([], "latency_us") == "(no results)"
