"""The cluster sweep must be byte-deterministic for any execution plan.

Same seed => byte-identical JSON report; the parallel executor must not
change a single byte relative to the serial run.  These are the cluster
counterparts of the suite-wide determinism fixtures.
"""

from __future__ import annotations

from repro.cluster import ClusterConfig, run_cluster, run_cluster_once

CFG = ClusterConfig(nodes=4, clients=4, requests=4, window=2)
RATES = (4_000.0, 16_000.0)


def test_same_seed_same_point():
    a = run_cluster_once("mvia", CFG, 8_000.0)
    b = run_cluster_once("mvia", CFG, 8_000.0)
    assert a == b


def test_different_seed_different_schedule():
    from dataclasses import replace

    a = run_cluster_once("mvia", CFG, 8_000.0)
    b = run_cluster_once("mvia", replace(CFG, seed=1), 8_000.0)
    # Poisson arrivals reshuffle, so the latency curve must move
    assert a["realized_rps"] != b["realized_rps"]


def test_report_json_is_byte_identical_across_runs():
    a = run_cluster(("mvia", "bvia"), CFG, rates=RATES)
    b = run_cluster(("mvia", "bvia"), CFG, rates=RATES)
    assert a.to_json() == b.to_json()


def test_parallel_sweep_matches_serial_byte_for_byte():
    serial = run_cluster(("mvia", "bvia"), CFG, rates=RATES, jobs=1)
    fanned = run_cluster(("mvia", "bvia"), CFG, rates=RATES, jobs=2)
    assert serial.to_json() == fanned.to_json()


def test_chaos_cluster_cell_is_deterministic():
    from repro.faults.chaos import run_scenario
    from repro.faults.scenarios import get_scenario

    sc = get_scenario("many_clients")
    a = run_scenario("clan", sc, seed=3, quick=True)
    b = run_scenario("clan", sc, seed=3, quick=True)
    assert a.to_dict() == b.to_dict()


def test_default_path_matches_pre_policy_golden():
    """The overload layer must not move a byte of the default path.

    ``tests/fixtures/golden_cluster_point.json`` was recorded before the
    retry/admission policies existed; with ``retry="off"`` and
    ``server_policy="none"`` (the defaults) every pre-existing key of
    the point must still match it exactly.
    """
    import json
    from pathlib import Path

    golden = json.loads((Path(__file__).parent / "fixtures"
                         / "golden_cluster_point.json").read_text())
    points = {
        "mvia_open_8k": run_cluster_once("mvia", CFG, 8_000.0),
        "clan_closed": run_cluster_once(
            "clan", ClusterConfig(nodes=4, clients=4, requests=4,
                                  window=2, mode="closed"), None),
    }
    for cell, want in golden.items():
        got = points[cell]
        mismatched = {k: (want[k], got.get(k))
                      for k in want if got.get(k) != want[k]}
        assert not mismatched, mismatched
