"""The cluster sweep must be byte-deterministic for any execution plan.

Same seed => byte-identical JSON report; the parallel executor must not
change a single byte relative to the serial run.  These are the cluster
counterparts of the suite-wide determinism fixtures.
"""

from __future__ import annotations

from repro.cluster import ClusterConfig, run_cluster, run_cluster_once

CFG = ClusterConfig(nodes=4, clients=4, requests=4, window=2)
RATES = (4_000.0, 16_000.0)


def test_same_seed_same_point():
    a = run_cluster_once("mvia", CFG, 8_000.0)
    b = run_cluster_once("mvia", CFG, 8_000.0)
    assert a == b


def test_different_seed_different_schedule():
    from dataclasses import replace

    a = run_cluster_once("mvia", CFG, 8_000.0)
    b = run_cluster_once("mvia", replace(CFG, seed=1), 8_000.0)
    # Poisson arrivals reshuffle, so the latency curve must move
    assert a["realized_rps"] != b["realized_rps"]


def test_report_json_is_byte_identical_across_runs():
    a = run_cluster(("mvia", "bvia"), CFG, rates=RATES)
    b = run_cluster(("mvia", "bvia"), CFG, rates=RATES)
    assert a.to_json() == b.to_json()


def test_parallel_sweep_matches_serial_byte_for_byte():
    serial = run_cluster(("mvia", "bvia"), CFG, rates=RATES, jobs=1)
    fanned = run_cluster(("mvia", "bvia"), CFG, rates=RATES, jobs=2)
    assert serial.to_json() == fanned.to_json()


def test_chaos_cluster_cell_is_deterministic():
    from repro.faults.chaos import run_scenario
    from repro.faults.scenarios import get_scenario

    sc = get_scenario("many_clients")
    a = run_scenario("clan", sc, seed=3, quick=True)
    b = run_scenario("clan", sc, seed=3, quick=True)
    assert a.to_dict() == b.to_dict()
