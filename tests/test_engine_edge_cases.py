"""Engine and provider edge cases the main suites don't reach."""

import pytest

from repro.providers import Testbed, get_spec
from repro.via import (
    CompletionStatus,
    Descriptor,
    Reliability,
    VipProtectionError,
    VipStateError,
    VipTimeout,
)
from repro.via.constants import WaitMode

from conftest import connected_endpoints, run_pair, run_proc, simple_recv, simple_send


def test_protection_tags_isolate_handles_on_one_node():
    """Memory registered under one NicHandle's protection tag cannot be
    used by a VI created under another handle (VIA ptag semantics)."""
    tb = Testbed("clan")
    h1 = tb.open("node0", "app1")
    h2 = tb.open("node0", "app2")

    def body():
        vi = yield from h1.create_vi()
        region = h2.alloc(64)
        mh = yield from h2.register_mem(region)   # h2's ptag
        seg = h1.segment(region, mh, 0, 8)
        with pytest.raises(VipProtectionError, match="tag"):
            yield from h1.post_recv(vi, Descriptor.recv([seg]))

    run_proc(tb.sim, body())


def test_cq_on_send_queue(provider_name):
    """Send completions can also be discovered through a CQ."""
    tb = Testbed(provider_name)
    result = {}

    def client():
        h = tb.open("node0", "client")
        cq = yield from h.create_cq()
        vi = yield from h.create_vi(send_cq=cq)
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, "node1", 9)
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_send(vi, Descriptor.send(segs))
        wq, desc = yield from h.cq_wait(cq)
        result["kind"] = wq.kind
        result["status"] = desc.status
        # direct send_wait on a CQ-bound queue is a state error
        yield from h.post_send(vi, Descriptor.send(segs))
        with pytest.raises(VipStateError, match="bound to a CQ"):
            yield from h.send_wait(vi, timeout=10_000.0)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(9)
        yield from h.accept(req, vi)
        yield from h.recv_wait(vi)
        yield from h.recv_wait(vi)

    run_pair(tb, client(), server())
    assert result["kind"] == "send"
    assert result["status"] is CompletionStatus.SUCCESS


def test_one_cq_merges_send_and_recv(provider_name):
    tb = Testbed(provider_name)
    kinds = []

    def client():
        h = tb.open("node0", "client")
        cq = yield from h.create_cq()
        vi = yield from h.create_vi(send_cq=cq, recv_cq=cq)
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.connect(vi, "node1", 9)
        yield from h.post_send(vi, Descriptor.send(segs))
        for _ in range(2):
            wq, _desc = yield from h.cq_wait(cq)
            kinds.append(wq.kind)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(9)
        yield from h.accept(req, vi)
        yield from h.recv_wait(vi)
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)

    run_pair(tb, client(), server())
    assert sorted(kinds) == ["recv", "send"]


def test_wait_timeout_fires(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        t0 = tb.now
        with pytest.raises(VipTimeout):
            yield from h.recv_wait(vi, WaitMode.POLL, timeout=500.0)
        assert tb.now - t0 >= 500.0 - 1e-6
        with pytest.raises(VipTimeout):
            yield from h.recv_wait(vi, WaitMode.BLOCK, timeout=500.0)

    def server():
        h, vi, region, mh = yield from ss()

    run_pair(tb, client(), server())


def test_wait_timeout_beaten_by_completion(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        desc = yield from h.recv_wait(vi, timeout=1_000_000.0)
        result["status"] = desc.status

    def server():
        h, vi, region, mh = yield from ss()
        yield from simple_send(h, vi, region, mh, b"beat-it!")

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.SUCCESS


def test_zero_length_rdma_write_with_immediate(provider_name):
    tb = Testbed(provider_name)
    result = {}
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        while "target" not in result:
            yield tb.sim.timeout(1.0)
        raddr, rhid = result["target"]
        desc = Descriptor.rdma_write([h.segment(region, mh, 0, 0)],
                                     raddr, rhid, immediate=77)
        yield from h.post_send(vi, desc)
        yield from h.send_wait(vi)

    def server():
        h, vi, region, mh = yield from ss()
        yield from h.post_recv(vi, Descriptor.recv([]))
        result["target"] = (region.base, mh.handle_id)
        desc = yield from h.recv_wait(vi)
        result["imm"] = desc.control.immediate

    run_pair(tb, client(), server())
    assert result["imm"] == 77


def test_messages_on_two_vis_interleave(provider_name):
    """Two VI pairs between the same nodes carry independent streams."""
    tb = Testbed(provider_name)
    result = {"a": [], "b": []}

    def client():
        h = tb.open("node0", "client")
        via = yield from h.create_vi()
        vib = yield from h.create_vi()
        region = h.alloc(128)
        mh = yield from h.register_mem(region)
        yield from h.connect(via, "node1", 21)
        yield from h.connect(vib, "node1", 22)
        for i in range(4):
            vi = via if i % 2 == 0 else vib
            h.write(region, bytes([i]) * 4, 0)
            segs = [h.segment(region, mh, 0, 4)]
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "server")
        via = yield from h.create_vi()
        vib = yield from h.create_vi()
        region = h.alloc(128)
        mh = yield from h.register_mem(region)
        for vi, off in ((via, 0), (vib, 64)):
            for _ in range(2):
                segs = [h.segment(region, mh, off, 4)]
                yield from h.post_recv(vi, Descriptor.recv(segs))
        for disc, vi in ((21, via), (22, vib)):
            req = yield from h.connect_wait(disc)
            yield from h.accept(req, vi)
        for _ in range(2):
            yield from h.recv_wait(via)
            result["a"].append(h.read(region, 1, 0)[0])
            yield from h.recv_wait(vib)
            result["b"].append(h.read(region, 1, 64)[0])

    run_pair(tb, client(), server())
    assert result["a"] == [0, 2]
    assert result["b"] == [1, 3]


def test_disconnect_with_inflight_messages_flushes_cleanly(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        segs = [h.segment(region, mh, 0, 8)]
        # leave receives posted, then disconnect
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.disconnect(vi)
        flushed = []
        for _ in range(2):
            d = yield from h.recv_done(vi)
            flushed.append(d.status)
        assert flushed == [CompletionStatus.FLUSHED] * 2
        yield from h.destroy_vi(vi)

    def server():
        h, vi, region, mh = yield from ss()
        while vi.is_connected:
            yield tb.sim.timeout(5.0)

    run_pair(tb, client(), server())


def test_immediate_data_with_payload(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        h.write(region, b"payload+imm")
        segs = [h.segment(region, mh, 0, 11)]
        yield from h.post_send(vi, Descriptor.send(segs, immediate=42))
        yield from h.send_wait(vi)

    def server():
        h, vi, region, mh = yield from ss()
        desc, data = yield from simple_recv(h, vi, region, mh, 64)
        result["imm"] = desc.control.immediate
        result["data"] = data

    run_pair(tb, client(), server())
    assert result["imm"] == 42
    assert result["data"] == b"payload+imm"


def test_reliable_reception_ack_after_placement():
    """Reliable-reception acks follow placement: the sender's completion
    time exceeds reliable-delivery's for multi-fragment messages."""
    times = {}
    for level in (Reliability.RELIABLE_DELIVERY,
                  Reliability.RELIABLE_RECEPTION):
        tb = Testbed("mvia")  # 1500 B MTU -> many fragments
        cs, ss = connected_endpoints(tb, reliability=level, bufsize=16384)
        out = {}

        def client():
            h, vi, region, mh = yield from cs()
            t0 = tb.now
            yield from simple_send(h, vi, region, mh, b"q" * 16000)
            out["t"] = tb.now - t0

        def server():
            h, vi, region, mh = yield from ss()
            yield from simple_recv(h, vi, region, mh, 16384)

        run_pair(tb, client(), server())
        times[level] = out["t"]
    assert times[Reliability.RELIABLE_RECEPTION] \
        > times[Reliability.RELIABLE_DELIVERY]


def test_stale_packet_to_destroyed_vi_is_dropped():
    """Traffic for an unknown VI id must be counted and discarded, not
    crash the engine."""
    tb = Testbed("clan")
    from repro.providers.engine import DataFrag
    from repro.hw.link import Packet

    prov = tb.provider("node1")

    def body():
        pkt = Packet(src="node0", dst="node1", kind="via-data", size=4,
                     payload=DataFrag(src_vi=1, dst_vi=424242, seq=0,
                                      frag=0, nfrags=1, offset=0,
                                      total_len=4, data=b"ghost"[:4],
                                      op="send"))
        yield from tb.provider("node0").node.nic.transmit(pkt)
        yield tb.sim.timeout(100.0)

    run_proc(tb.sim, body())
    tb.run()
    assert prov.engine.drops == 1
