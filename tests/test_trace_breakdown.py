"""Tests for the tracer, the latency-breakdown analysis, and the
result repository."""

import pytest

from repro.models import Breakdown, latency_breakdown, render_breakdowns
from repro.sim import Simulator, Tracer
from repro.sim.trace import TraceEvent
from repro.vibe import base_latency
from repro.vibe.metrics import BenchResult, Measurement
from repro.vibe.repository import (
    ResultRepository,
    result_from_dict,
    result_to_dict,
)


# ---- tracer -------------------------------------------------------------

def test_tracer_collects_and_selects():
    tr = Tracer()
    tr.emit(1.0, "wire", "serialized", "n0", pkt=1)
    tr.emit(2.0, "wire", "delivered", "n0", pkt=1)
    tr.emit(3.0, "host", "reaped", "n1")
    assert len(tr) == 3
    assert [e.label for e in tr.select(category="wire")] == \
        ["serialized", "delivered"]
    assert tr.select(node="n1")[0].label == "reaped"
    assert tr.select(category="wire", pkt=1, label="delivered")[0].t == 2.0
    assert tr.first(category="wire").t == 1.0
    assert tr.last(category="wire").t == 2.0
    assert tr.first(category="nope") is None


def test_tracer_capacity_limit():
    tr = Tracer(capacity=2)
    for i in range(5):
        tr.emit(float(i), "x", "y")
    assert len(tr) == 2 and tr.dropped == 3
    tr.clear()
    assert len(tr) == 0 and tr.dropped == 0


def test_tracer_timeline_renders():
    tr = Tracer()
    assert tr.timeline() == "(empty trace)"
    tr.emit(10.0, "a", "b", "n0", k=1)
    tr.emit(12.5, "a", "c", "n1")
    text = tr.timeline()
    assert "+     0.000us" in text
    assert "+     2.500us" in text
    assert "a/b" in text and "k=1" in text


def test_sim_trace_is_noop_without_tracer():
    sim = Simulator()
    sim.trace("x", "y")  # must not raise
    sim.tracer = Tracer()
    sim.trace("x", "y", "n", extra=1)
    assert sim.tracer.events[0] == TraceEvent(0.0, "x", "y", "n",
                                              {"extra": 1})


def test_transfer_produces_expected_event_sequence():
    """The instrumented send path emits its marks in causal order."""
    bd_events = []
    from repro.providers import Testbed
    from repro.via import Descriptor

    tb = Testbed("clan")
    tb.sim.tracer = Tracer()

    def client():
        h = tb.open("node0", "c")
        vi = yield from h.create_vi()
        r = h.alloc(64)
        mh = yield from h.register_mem(r)
        yield from h.connect(vi, "node1", 3)
        yield from h.post_send(vi, Descriptor.send([h.segment(r, mh, 0, 8)]))
        yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "s")
        vi = yield from h.create_vi()
        r = h.alloc(64)
        mh = yield from h.register_mem(r)
        yield from h.post_recv(vi, Descriptor.recv([h.segment(r, mh, 0, 8)]))
        req = yield from h.connect_wait(3)
        yield from h.accept(req, vi)
        yield from h.recv_wait(vi)

    cp = tb.spawn(client())
    sp = tb.spawn(server())
    tb.run(cp)
    tb.run(sp)
    tr = tb.sim.tracer
    order = [
        tr.first(category="host", label="post_send", node="node0").t,
        tr.first(category="host", label="doorbell", node="node0").t,
        tr.first(category="nic", label="send_queued", node="node0").t,
        tr.first(category="nic", label="desc_fetched", node="node0").t,
        tr.first(category="nic", label="frag_out", node="node0").t,
        tr.first(category="nic", label="frag_in", node="node1").t,
        tr.first(category="via", label="completed", node="node1").t,
        tr.first(category="host", label="reap_done", node="node1").t,
    ]
    assert order == sorted(order)


# ---- breakdown -------------------------------------------------------------

def test_breakdown_telescopes_to_total(provider_name):
    bd = latency_breakdown(provider_name, 1024)
    assert sum(bd.phases.values()) == pytest.approx(bd.total)
    assert all(v >= -1e-9 for v in bd.phases.values())
    assert bd.total > 0


def test_breakdown_total_tracks_measured_latency(provider_name):
    bd = latency_breakdown(provider_name, 1024)
    measured = base_latency(provider_name, [1024]).point(1024).latency_us
    # the one-shot transfer sees the same path the ping-pong averages
    assert bd.total == pytest.approx(measured, rel=0.15)


def test_breakdown_attributes_costs_to_the_right_components():
    mvia = latency_breakdown("mvia", 4096)
    bvia = latency_breakdown("bvia", 4096)
    clan = latency_breakdown("clan", 4096)
    # staged path: copies dominate the host phases, absent elsewhere
    assert mvia.phases["staging"] > 20
    assert bvia.phases["staging"] == 0 and clan.phases["staging"] == 0
    assert mvia.phases["rx_kernel"] > 20
    # the LANai's polled dispatch is BVIA's signature overhead
    assert bvia.phases["dispatch"] > 3 * clan.phases["dispatch"]
    # everyone pays the wire
    for bd in (mvia, bvia, clan):
        assert bd.phases["wire"] > 0


def test_breakdown_table_and_render():
    bd = latency_breakdown("clan", 64)
    text = bd.table()
    assert "latency breakdown: clan" in text
    assert "dispatch" in text
    combo = render_breakdowns([bd, latency_breakdown("mvia", 64)])
    assert "clan@64B" in combo and "mvia@64B" in combo
    assert "TOTAL" in combo
    assert bd.bottleneck() in bd.phases


# ---- result repository ---------------------------------------------------------

def _sample_result():
    return BenchResult("base_latency", "clan", [
        Measurement(param=4, latency_us=8.1, cpu_send=1.0),
        Measurement(param=1024, latency_us=32.7, extra={"note": "x"}),
    ], {"mode": "poll"})


def test_result_roundtrip_through_json():
    result = _sample_result()
    clone = result_from_dict(result_to_dict(result))
    assert clone.benchmark == result.benchmark
    assert clone.provider == result.provider
    assert clone.params == result.params
    assert clone.point(4).latency_us == 8.1
    assert clone.point(1024).extra == {"note": "x"}


def test_result_from_dict_rejects_unknown_format():
    with pytest.raises(ValueError):
        result_from_dict({"format": 99, "points": []})


def test_repository_save_load_compare(tmp_path):
    repo = ResultRepository(tmp_path)
    repo.save("clan-sim", _sample_result())
    other = _sample_result()
    other.points[0].latency_us = 16.2
    repo.save("other-sim", other)

    assert repo.platforms() == ["clan-sim", "other-sim"]
    assert repo.benchmarks("clan-sim") == ["base_latency"]
    loaded = repo.load("clan-sim", "base_latency")
    assert loaded.point(4).latency_us == 8.1

    report = repo.compare("base_latency", "latency_us")
    assert "clan-sim" in report and "other-sim" in report

    diff = repo.diff("base_latency", "latency_us", "clan-sim", "other-sim")
    assert diff[0][0] == 4
    assert diff[0][3] == pytest.approx(1.0)  # doubled

    with pytest.raises(FileNotFoundError):
        repo.load("missing", "base_latency")
    assert "(no stored results" in repo.compare("ghost", "latency_us")


def test_repository_safe_names(tmp_path):
    repo = ResultRepository(tmp_path)
    result = _sample_result()
    path = repo.save("weird/plat form!", result)
    assert path.exists()
    assert "/" not in path.parent.name
