"""Tests for the extended CLI commands (breakdown, trace, save, compare)."""

import pytest

from repro.cli import main


def test_breakdown_single(capsys):
    main(["breakdown", "--provider", "clan", "--size", "64"])
    out = capsys.readouterr().out
    assert "latency breakdown: clan" in out
    assert "bottleneck:" in out


def test_breakdown_compare(capsys):
    main(["--providers", "mvia,clan", "breakdown", "--compare",
          "--size", "16"])
    out = capsys.readouterr().out
    assert "mvia@16B" in out and "clan@16B" in out
    assert "TOTAL" in out


def test_trace_timeline(capsys):
    main(["trace", "--provider", "bvia", "--size", "32"])
    out = capsys.readouterr().out
    assert "host/post_send" in out
    assert "nic/frag_out" in out
    assert "wire/serialized" in out
    assert "via/completed" in out


def test_save_and_compare_roundtrip(tmp_path, capsys):
    repo = str(tmp_path / "repo")
    main(["save", "--repo", repo, "--platform", "clan-sim",
          "--provider", "clan", "nondata"])
    main(["save", "--repo", repo, "--platform", "bvia-sim",
          "--provider", "bvia", "nondata"])
    capsys.readouterr()
    main(["compare", "--repo", repo, "nondata", "cost_us"])
    out = capsys.readouterr().out
    assert "clan-sim" in out and "bvia-sim" in out
    assert "establish_connection" in out


def test_save_default_benchmark_set(tmp_path, capsys):
    repo = str(tmp_path / "repo")
    main(["save", "--repo", repo, "--platform", "p", "--provider", "clan",
          "memreg"])
    out = capsys.readouterr().out
    assert "saved" in out
    assert (tmp_path / "repo" / "p" / "memreg.json").exists()


def test_compare_selected_platforms(tmp_path, capsys):
    repo = str(tmp_path / "repo")
    for platform, provider in (("a", "clan"), ("b", "mvia")):
        main(["save", "--repo", repo, "--platform", platform,
              "--provider", provider, "memreg"])
    capsys.readouterr()
    main(["compare", "--repo", repo, "--platforms", "a", "memreg",
          "register_us"])
    out = capsys.readouterr().out
    assert "a" in out and "b" not in out.replace("benchmarks", "")
