"""Tests of the design-choice mechanisms (the ref-[5] knobs).

Each test flips exactly one knob on an otherwise identical provider and
asserts the mechanistic consequence — this is what makes the benchmark
curves *model output* rather than hard-coded calibration.
"""

import pytest

from repro.providers import Testbed, get_spec
from repro.providers.costs import (
    DispatchKind,
    DoorbellKind,
    TableLocation,
    TranslationAgent,
)
from repro.vibe import TransferConfig, run_latency


def test_polled_dispatch_scales_with_open_vis():
    spec = get_spec("bvia")
    lat1 = run_latency(spec, TransferConfig(size=4, extra_vis=0)).latency_us
    lat16 = run_latency(spec, TransferConfig(size=4, extra_vis=15)).latency_us
    per_vi = spec.costs.nic_dispatch_per_vi
    # one scan on each side per one-way trip: 15 extra VIs x per-VI cost
    assert lat16 - lat1 == pytest.approx(15 * per_vi, rel=0.05)


def test_direct_dispatch_flat_in_open_vis():
    spec = get_spec("bvia").with_choices(dispatch=DispatchKind.DIRECT)
    lat1 = run_latency(spec, TransferConfig(size=4, extra_vis=0)).latency_us
    lat16 = run_latency(spec, TransferConfig(size=4, extra_vis=15)).latency_us
    assert lat16 == pytest.approx(lat1, rel=0.01)


def test_nic_table_location_removes_reuse_sensitivity():
    base = get_spec("bvia")
    onboard = base.with_choices(table_location=TableLocation.NIC_MEMORY)
    cfg0 = TransferConfig(size=28672, buffer_pool=48, reuse_fraction=0.0,
                          iters=32)
    cfg1 = TransferConfig(size=28672, buffer_pool=48, reuse_fraction=1.0,
                          iters=32)
    host_delta = (run_latency(base, cfg0).latency_us
                  - run_latency(base, cfg1).latency_us)
    nic_delta = (run_latency(onboard, cfg0).latency_us
                 - run_latency(onboard, cfg1).latency_us)
    assert host_delta > 10.0          # host tables: misses hurt
    assert abs(nic_delta) < 1.0       # NIC tables: immune


def test_syscall_doorbell_charged_as_system_time():
    """The doorbell kind decides *where* the ring cost lands in
    getrusage: MMIO stores are user time, kernel traps are system time."""
    from repro.via import Descriptor
    from conftest import connected_endpoints, run_pair

    split = {}
    for kind in (DoorbellKind.MMIO, DoorbellKind.SYSCALL):
        spec = get_spec("clan").with_choices(doorbell=kind)
        spec = spec.with_costs(doorbell_cost=5.0)
        tb = Testbed(spec)
        cs, ss = connected_endpoints(tb)

        def client():
            h, vi, region, mh = yield from cs()
            before = h.actor.snapshot()
            segs = [h.segment(region, mh, 0, 4)]
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)
            split[kind] = h.actor.snapshot() - before

        def server():
            h, vi, region, mh = yield from ss()
            segs = [h.segment(region, mh, 0, 4)]
            yield from h.post_recv(vi, Descriptor.recv(segs))
            yield from h.recv_wait(vi)

        run_pair(tb, client(), server())
    assert split[DoorbellKind.SYSCALL].stime \
        >= split[DoorbellKind.MMIO].stime + 5.0


def test_host_translation_insensitive_to_reuse():
    """M-VIA's host-side translation makes it a flat control in Fig. 5."""
    spec = get_spec("mvia")
    cfg0 = TransferConfig(size=12288, buffer_pool=48, reuse_fraction=0.0)
    cfg1 = TransferConfig(size=12288, buffer_pool=48, reuse_fraction=1.0)
    delta = (run_latency(spec, cfg0).latency_us
             - run_latency(spec, cfg1).latency_us)
    assert abs(delta) < 0.5


def test_staged_data_path_charges_copies():
    """STAGED (M-VIA) burns host CPU per byte; ZERO_COPY does not."""
    size = 12288
    m_staged = run_latency("mvia", TransferConfig(size=size))
    m_zc = run_latency("clan", TransferConfig(size=size))
    tb = Testbed("mvia")
    copy_cost = tb.provider("node0").node.cpu.copy_cost(size)
    # the staged sender spends at least one full copy of CPU time per
    # message beyond what a zero-copy sender spends
    staged_cpu_us = m_staged.cpu_send * 2 * m_staged.latency_us
    zc_cpu_us = m_zc.cpu_send * 2 * m_zc.latency_us
    assert staged_cpu_us > zc_cpu_us  # polling: both spin, staged adds work
    # direct check: utilisation stays 100% while polling
    assert m_staged.cpu_send == pytest.approx(1.0)


def test_tlb_size_controls_reuse_crossover():
    """A larger NIC cache absorbs a bigger working set: with a pool that
    fits, 0 % reuse behaves like 100 %."""
    big_tlb = get_spec("bvia").with_choices(nic_tlb_entries=4096)
    cfg0 = TransferConfig(size=4096, buffer_pool=48, reuse_fraction=0.0,
                          iters=60, warmup=50)
    base_lat = run_latency(get_spec("bvia"), cfg0).latency_us
    big_lat = run_latency(big_tlb, cfg0).latency_us
    # with 4096 entries every page stays cached after the warmup laps
    assert big_lat < base_lat


def test_cq_hardware_flag_removes_notify_cost():
    soft = get_spec("clan").with_choices(cq_in_hardware=False)
    soft = soft.with_costs(cq_notify=5.0)
    hard = get_spec("clan")
    cfg = TransferConfig(size=4, use_recv_cq=True)
    assert (run_latency(soft, cfg).latency_us
            > run_latency(hard, cfg).latency_us + 4.0)
