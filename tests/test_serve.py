"""Tests for the experiment service: specs, queue, cache, HTTP, SSE.

The service's core contract is byte-identity: a result fetched over the
control plane must equal, byte for byte, what the direct CLI path
produces — whether it was simulated by the warm pool, reassembled from
per-cell checkpoints, or served whole from the result cache.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.serve import (
    ExperimentService,
    ResultCache,
    ServiceClient,
    ServiceError,
    ExperimentSpec,
    SpecError,
    execute_spec,
)
from repro.serve.jobs import Job, JobQueue, QueueFullError

SMALL_CLUSTER = {"nodes": 2, "clients": 2, "requests": 2,
                 "providers": ["mvia"], "rates": [500.0]}


def _cluster_spec(seed, **over):
    params = dict(SMALL_CLUSTER)
    params.update(over)
    return {"kind": "cluster", "params": params, "seed": seed}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = ExperimentService(port=0, workers=2,
                            cache_dir=str(tmp_path_factory.mktemp("cache")))
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url, client="pytest")


# -- specs ------------------------------------------------------------------

def test_spec_round_trips_and_keys_are_stable():
    spec = ExperimentSpec.from_dict(_cluster_spec(3))
    again = ExperimentSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.result_key() == spec.result_key()


def test_sparse_and_explicit_cluster_specs_share_one_key():
    sparse = ExperimentSpec.from_dict(_cluster_spec(5))
    explicit = ExperimentSpec.from_dict(_cluster_spec(
        5, topology="star", window=4, arrival="poisson", mode="open",
        service="fixed:20", tenants=1))
    assert sparse.result_key() == explicit.result_key()


def test_quick_flag_and_spelled_out_grid_share_one_key():
    from repro.cluster import QUICK_RATE_GRID

    quick = ExperimentSpec.from_dict(
        {"kind": "cluster", "params": {"quick": True}, "seed": 1})
    spelled = ExperimentSpec.from_dict(
        {"kind": "cluster",
         "params": {"rates": list(QUICK_RATE_GRID)}, "seed": 1})
    assert quick.result_key() == spelled.result_key()


def test_seed_and_params_change_the_key():
    base = ExperimentSpec.from_dict(_cluster_spec(0))
    assert base.result_key() != \
        ExperimentSpec.from_dict(_cluster_spec(1)).result_key()
    assert base.result_key() != \
        ExperimentSpec.from_dict(_cluster_spec(0, requests=4)).result_key()


@pytest.mark.parametrize("bad", [
    {"kind": "nope", "params": {}},
    {"kind": "run", "params": {"benchmark": "no_such_bench"}},
    {"kind": "run", "params": {"benchmark": "base_latency",
                               "fidelity": "warp"}},
    {"kind": "cluster", "params": {"bogus_param": 1}},
    {"kind": "cluster", "params": {"providers": ["enoexist"]}},
    {"kind": "chaos", "params": {"scenarios": ["no_such_scenario"]}},
    {"kind": "run", "params": {"benchmark": "base_latency"}, "seed": "x"},
])
def test_malformed_specs_raise_spec_error(bad):
    with pytest.raises(SpecError):
        ExperimentSpec.from_dict(bad)


# -- job queue --------------------------------------------------------------

def _job(client="c", seed=0):
    return Job(ExperimentSpec.from_dict(_cluster_spec(seed)), client)


def test_queue_is_fifo_within_a_client_and_round_robin_across():
    q = JobQueue(capacity=16)
    a1, a2, b1 = _job("alice", 1), _job("alice", 2), _job("bob", 3)
    for j in (a1, a2, b1):
        q.submit(j)
    taken = [q.take(0.1) for _ in range(3)]
    assert taken == [a1, b1, a2]  # alice, bob, alice again
    assert q.take(0.01) is None


def test_queue_capacity_overflow_raises():
    q = JobQueue(capacity=2)
    q.submit(_job(seed=1))
    q.submit(_job(seed=2))
    with pytest.raises(QueueFullError):
        q.submit(_job(seed=3))


def test_cancel_queued_job_is_removed_and_queue_not_wedged():
    q = JobQueue(capacity=8)
    first, victim, last = _job(seed=1), _job(seed=2), _job(seed=3)
    for j in (first, victim, last):
        q.submit(j)
    assert q.cancel(victim.id)
    assert victim.state == "cancelled"
    assert [q.take(0.1), q.take(0.1)] == [first, last]
    assert q.take(0.01) is None


# -- result cache -----------------------------------------------------------

def test_result_cache_round_trip_and_corruption_defences(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = ExperimentSpec.from_dict(_cluster_spec(9))
    key = spec.result_key()
    assert cache.get(key) is None
    cache.put(key, spec.to_dict(), '{"fine": 1}')
    assert cache.get(key) == '{"fine": 1}'
    # flipping a byte of the stored payload must read as a miss
    path = cache.path(key)
    entry = json.loads(open(path).read())
    entry["result"] = '{"fine": 2}'
    open(path, "w").write(json.dumps(entry))
    assert cache.get(key) is None


def test_code_version_skew_invalidates_cached_results(tmp_path,
                                                      monkeypatch):
    cache = ResultCache(str(tmp_path))
    spec = ExperimentSpec.from_dict(_cluster_spec(10))
    old_key = spec.result_key()
    cache.put(old_key, spec.to_dict(), "{}")
    assert cache.get(old_key) == "{}"
    # the same entry read by a build with a bumped CODE_VERSION: stale
    monkeypatch.setattr("repro.serve.cache.CODE_VERSION", "repro-9.9.9")
    assert cache.get(old_key) is None
    # and the key itself moves, so the new build never even looks there
    monkeypatch.setattr("repro.snap.format.CODE_VERSION", "repro-9.9.9")
    assert spec.result_key() != old_key


# -- end-to-end over HTTP ---------------------------------------------------

def _submit_and_fetch(client, spec, timeout=240.0):
    job = client.submit(spec)
    client.wait(job["id"], timeout=timeout)
    body, hit = client.result(job["id"])
    return client.job(job["id"]), body, hit


def test_served_cluster_result_is_byte_identical_to_direct(client):
    spec = _cluster_spec(21)
    direct = execute_spec(ExperimentSpec.from_dict(spec))
    summary, body, hit = _submit_and_fetch(client, spec)
    assert summary["state"] == "done"
    assert body == direct
    assert hit is False
    assert summary["cells_total"] == 1
    assert summary["cells_done"] == 1


def test_served_run_result_is_byte_identical_to_direct(client):
    spec = {"kind": "run",
            "params": {"benchmark": "base_latency", "provider": "clan",
                       "sizes": [64, 256]},
            "seed": 22}
    direct = execute_spec(ExperimentSpec.from_dict(spec))
    summary, body, hit = _submit_and_fetch(client, spec)
    assert body == direct
    assert hit is False


def test_resubmit_is_a_cache_hit_with_identical_bytes(client):
    spec = _cluster_spec(23)
    _, first, hit0 = _submit_and_fetch(client, spec)
    job = client.submit(spec)
    # a cache-hit job is born finished: no queue, no simulation
    assert job["state"] == "done"
    assert job["cache_hit"] is True
    body, hit = client.result(job["id"])
    assert hit is True
    assert body == first


def test_concurrent_clients_get_isolated_correct_results(service):
    specs = {"one": _cluster_spec(31),
             "two": _cluster_spec(32, requests=3)}
    direct = {name: execute_spec(ExperimentSpec.from_dict(s))
              for name, s in specs.items()}
    assert direct["one"] != direct["two"]
    out, errors = {}, []

    def go(name):
        try:
            c = ServiceClient(service.url, client=name)
            _, body, _hit = _submit_and_fetch(c, specs[name])
            out[name] = body
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=go, args=(n,)) for n in specs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert out == direct


def test_sse_stream_reports_every_cell_exactly_once(client):
    spec = _cluster_spec(33, providers=["mvia", "bvia"],
                         rates=[500.0, 1000.0])
    job = client.submit(spec)
    events = list(client.follow(job["id"]))
    cells = [e for e in events if e["event"] == "cell"]
    assert len(cells) == 4
    assert sorted(e["index"] for e in cells) == [0, 1, 2, 3]
    assert {(e["provider"], e["rate"]) for e in cells} == {
        ("mvia", 500.0), ("mvia", 1000.0),
        ("bvia", 500.0), ("bvia", 1000.0)}
    assert [e["event"] for e in events].count("done") == 1
    # the event log replays identically for a late subscriber
    again = list(client.follow(job["id"]))
    assert again == events


def test_http_errors_are_structured(client):
    with pytest.raises(ServiceError) as err:
        client.job("job-999999")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.submit({"kind": "run",
                       "params": {"benchmark": "enoexist"}})
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        client.result("job-999999")
    assert err.value.status == 404


def test_health_and_metrics_endpoints(client):
    from repro.snap import CODE_VERSION

    health = client.health()
    assert health["ok"] is True
    assert health["code_version"] == CODE_VERSION
    metrics = client.metrics()
    assert "serve.jobs.submitted" in metrics["metrics"]
    assert metrics["meta"]["code_version"] == CODE_VERSION


def test_jobs_listing_includes_submitted_jobs(client):
    listed = {j["id"] for j in client.jobs()}
    job = client.submit(_cluster_spec(23))  # cached by earlier test
    assert job["id"] not in listed
    assert job["id"] in {j["id"] for j in client.jobs()}


# -- cancellation under a busy worker ---------------------------------------

def test_cancel_queued_job_via_api_never_wedges_the_worker(tmp_path):
    svc = ExperimentService(port=0, workers=1,
                            cache_dir=str(tmp_path / "cache"))
    svc.start()
    try:
        c = ServiceClient(svc.url, client="cancel-test")
        # requests=6 keeps the single worker busy long enough for the
        # next submissions to be reliably queued behind it
        busy = c.submit(_cluster_spec(41, requests=6))
        victim = c.submit(_cluster_spec(42))
        out = c.cancel(victim["id"])
        assert out["cancelled"] is True
        assert c.wait(victim["id"], timeout=60)["state"] == "cancelled"
        # the worker survives: both the running job and a fresh one
        # still complete normally
        assert c.wait(busy["id"], timeout=240)["state"] == "done"
        after = c.submit(_cluster_spec(43))
        assert c.wait(after["id"], timeout=240)["state"] == "done"
    finally:
        svc.stop()


# -- cell-cache sharing with campaign checkpoints ---------------------------

def test_service_reuses_cluster_checkpoint_cells(tmp_path):
    """A --checkpoint-dir campaign and the service share cell identity:
    cells simulated by one are cache hits for the other."""
    from repro.cluster import ClusterConfig, run_cluster

    cache_dir = str(tmp_path / "shared")
    cfg = ClusterConfig(nodes=2, clients=2, requests=2, seed=51)
    direct = run_cluster(("mvia",), cfg, rates=(500.0,),
                         checkpoint_dir=cache_dir)
    svc = ExperimentService(port=0, workers=1, cache_dir=cache_dir)
    svc.start()
    try:
        c = ServiceClient(svc.url, client="ckpt")
        summary, body, hit = _submit_and_fetch(
            c, _cluster_spec(51))
        # whole-spec cache can't hit (the campaign never stored one),
        # but every cell must come from the campaign's checkpoints
        assert hit is False
        assert summary["cell_cache_hits"] == summary["cells_total"] == 1
        assert body == direct.to_json()
    finally:
        svc.stop()
