"""Tests for LogGP extraction and the insufficiency demonstration."""

import pytest

from repro.models import LogGPFit, evaluate_fit, extract, fit_loggp
from repro.vibe import base_bandwidth, base_latency, multivi_latency
from repro.vibe.metrics import BenchResult, Measurement


def synthetic(intercept=10.0, G=0.01, g=5.0):
    sizes = [4, 256, 1024, 4096, 16384]
    lat = BenchResult("base_latency", "synth", [
        Measurement(param=s, latency_us=intercept + G * s) for s in sizes
    ])
    bw = BenchResult("base_bandwidth", "synth", [
        Measurement(param=s, bandwidth_mbs=s / (g + G * s)) for s in sizes
    ])
    return lat, bw


def test_fit_recovers_synthetic_parameters():
    lat, bw = synthetic(intercept=12.0, G=0.02, g=6.0)
    fit = fit_loggp(lat, bw)
    assert fit.L + 2 * fit.o == pytest.approx(12.0, abs=1e-6)
    assert fit.G == pytest.approx(0.02, abs=1e-6)
    assert fit.g == pytest.approx(6.0, abs=1e-3)
    assert fit.residual_us == pytest.approx(0.0, abs=1e-6)


def test_explicit_overhead_split():
    lat, bw = synthetic(intercept=12.0)
    fit = fit_loggp(lat, bw, overhead_us=3.0)
    assert fit.o == 3.0
    assert fit.L == pytest.approx(6.0, abs=1e-6)


def test_predictions():
    fit = LogGPFit("x", L=8.0, o=1.0, g=4.0, G=0.01, residual_us=0.0)
    assert fit.predict_latency(0) == pytest.approx(10.0)
    assert fit.predict_latency(1000) == pytest.approx(20.0)
    assert fit.predict_bandwidth(4000) == pytest.approx(4000 / 44.0)
    assert fit.asymptotic_bandwidth == pytest.approx(100.0)


def test_extract_fits_base_curves_well(provider_name):
    fit = extract(provider_name, sizes=[4, 1024, 4096, 12288])
    lat = base_latency(provider_name, [4, 1024, 4096, 12288])
    ev = evaluate_fit(fit, lat)
    # the model it was fit on: small relative error
    assert ev["mean_relative_error"] < 0.25
    assert fit.G > 0 and fit.g > 0


def test_loggp_cannot_explain_multivi_effect():
    """The paper's §1 argument: LogP has no parameter for the number of
    open VIs, so it badly mispredicts the BVIA multi-VI sweep."""
    fit = extract("bvia", sizes=[4, 1024, 4096, 12288])
    mv = multivi_latency("bvia", size=4, vi_counts=(16, 32))
    # all points share message size 4, so LogGP predicts one number;
    # measured latencies diverge far beyond the base-fit error
    predicted = fit.predict_latency(4)
    measured = [p.latency_us for p in mv.points]
    assert max(measured) - min(measured) > 20.0
    assert max(abs(m - predicted) / m for m in measured) > 0.3


def test_evaluate_fit_reports_points():
    lat, bw = synthetic()
    fit = fit_loggp(lat, bw)
    ev = evaluate_fit(fit, lat)
    assert len(ev["points"]) == len(lat.points)
    assert ev["mean_relative_error"] == pytest.approx(0.0, abs=1e-9)
