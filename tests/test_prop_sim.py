"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=50))
@settings(max_examples=60, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.timeout(d).callbacks.append(lambda e: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1,
                max_size=20))
@settings(max_examples=40, deadline=None)
def test_capacity_one_resource_serialises_total_time(holds):
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker(hold):
        yield from res.acquire(hold)

    for hold in holds:
        sim.process(worker(hold))
    sim.run()
    assert sim.now == sum(holds)


@given(st.integers(min_value=2, max_value=8),
       st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                max_size=24))
@settings(max_examples=30, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    peak = [0]

    def worker(hold):
        yield res.request()
        peak[0] = max(peak[0], res.in_use)
        try:
            yield sim.timeout(hold)
        finally:
            res.release()

    for hold in holds:
        sim.process(worker(hold))
    sim.run()
    assert peak[0] <= capacity
    # and work-conserving: finishes no later than serial execution
    assert sim.now <= sum(holds) + 1e-9


@given(st.lists(st.integers(), min_size=0, max_size=60))
@settings(max_examples=50, deadline=None)
def test_store_preserves_fifo_for_any_items(items):
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            got.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == items


@given(st.integers(min_value=1, max_value=5),
       st.lists(st.integers(), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_store_bounded_capacity_never_overflows(capacity, items):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    max_len = [0]

    def producer():
        for item in items:
            yield store.put(item)
            max_len[0] = max(max_len[0], len(store))

    def consumer():
        for _ in items:
            yield sim.timeout(1.0)
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert max_len[0] <= capacity
