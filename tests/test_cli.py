"""Tests for the vibe command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_names_all_benchmarks(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "base_latency" in out
    assert "client_server" in out
    assert "nondata" in out


def test_table1_output(capsys):
    main(["--providers", "clan", "table1"])
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Establishing Connection" in out
    assert "CLAN" in out


def test_figure_3(capsys):
    main(["--providers", "mvia,clan", "figure", "3", "--sizes", "4,1024"])
    out = capsys.readouterr().out
    assert "latency" in out and "bandwidth" in out
    assert "mvia" in out and "clan" in out


def test_figure_5_bvia_only(capsys):
    main(["figure", "5", "--sizes", "256"])
    out = capsys.readouterr().out
    assert "buffer reuse" in out
    assert "bvia@0%" in out


def test_figure_unknown_number():
    with pytest.raises(SystemExit):
        main(["figure", "12"])


def test_run_single_benchmark(capsys):
    main(["run", "memreg", "--provider", "bvia"])
    out = capsys.readouterr().out
    assert "memreg [bvia]" in out
    assert "register_us" in out


def test_run_benchmark_returning_list(capsys):
    main(["run", "reuse_latency", "--provider", "bvia"])
    out = capsys.readouterr().out
    assert "reuse_latency" in out


def test_run_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "not-a-benchmark"])
