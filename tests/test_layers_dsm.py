"""Tests for the page-based DSM layer."""

import pytest

from repro.layers.dsm import DsmNode, PageState, connect_mesh
from repro.providers import Testbed

PAGE = 4096


def run_dsm(provider, nnodes, npages, apps, page_size=PAGE):
    """Wire a mesh and run one app generator factory per node.

    ``apps[i]`` is called with (node, shared_dict) and must be a
    generator.  Returns the shared dict.
    """
    names = [f"n{i}" for i in range(nnodes)]
    tb = Testbed(provider, node_names=tuple(names))
    setups = connect_mesh(tb, names, npages=npages, page_size=page_size)
    shared: dict = {"tb": tb}
    procs = []

    def runner(i):
        node = yield from setups[i]
        shared[f"node{i}"] = node
        yield from apps[i](node, shared)

    for i in range(nnodes):
        procs.append(tb.spawn(runner(i), f"dsm-app{i}"))
    for p in procs:
        tb.run(p)
    return shared


def test_basic_write_then_remote_read(provider_name):
    def writer(node, shared):
        yield from node.write(10, b"hello-dsm")
        shared["written"] = True

    def reader(node, shared):
        tb = shared["tb"]
        while "written" not in shared:
            yield tb.sim.timeout(10.0)
        data = yield from node.read(10, 9)
        shared["read"] = data

    shared = run_dsm(provider_name, 2, 2, [writer, reader])
    assert shared["read"] == b"hello-dsm"


def test_write_to_remote_home_page():
    def writer(node, shared):
        # page 1 is homed at node 1; node 0 writes it
        yield from node.write(PAGE + 5, b"remote-home")
        shared["written"] = True

    def home(node, shared):
        tb = shared["tb"]
        while "written" not in shared:
            yield tb.sim.timeout(10.0)
        data = yield from node.read(PAGE + 5, 11)
        shared["read"] = data
        assert node.stats.recalls >= 1  # home recalled its own page back

    shared = run_dsm("clan", 2, 2, [writer, home])
    assert shared["read"] == b"remote-home"


def test_cross_page_write_and_read():
    payload = bytes(i % 256 for i in range(3 * PAGE))

    def writer(node, shared):
        yield from node.write(100, payload)  # spans 4 pages
        shared["written"] = True

    def reader(node, shared):
        tb = shared["tb"]
        while "written" not in shared:
            yield tb.sim.timeout(10.0)
        data = yield from node.read(100, len(payload))
        shared["read"] = data

    shared = run_dsm("clan", 2, 4, [writer, reader])
    assert shared["read"] == payload


def test_invalidation_on_ownership_change():
    def first(node, shared):
        tb = shared["tb"]
        yield from node.write(0, b"v1")
        shared["phase"] = 1
        while shared.get("phase") != 2:
            yield tb.sim.timeout(10.0)
        data = yield from node.read(0, 2)     # must see v2, not v1
        shared["reread"] = data
        shared["state_after"] = node.page_state(0)

    def second(node, shared):
        tb = shared["tb"]
        while shared.get("phase") != 1:
            yield tb.sim.timeout(10.0)
        old = yield from node.read(0, 2)
        assert old == b"v1"
        yield from node.write(0, b"v2")
        shared["phase"] = 2

    shared = run_dsm("clan", 2, 1, [first, second])
    assert shared["reread"] == b"v2"


def test_read_sharing_multiple_readers():
    def writer(node, shared):
        tb = shared["tb"]
        yield from node.write(0, b"shared-data")
        shared["written"] = True
        while len([k for k in shared if k.startswith("read-")]) < 2:
            yield tb.sim.timeout(10.0)

    def make_reader(idx):
        def reader(node, shared):
            tb = shared["tb"]
            while "written" not in shared:
                yield tb.sim.timeout(10.0)
            data = yield from node.read(0, 11)
            # second read is a local hit: the copy is cached
            data2 = yield from node.read(0, 11)
            shared[f"read-{idx}"] = (data, data2, node.stats.local_hits)
        return reader

    shared = run_dsm("clan", 3, 1, [writer, make_reader(1), make_reader(2)])
    for idx in (1, 2):
        data, data2, hits = shared[f"read-{idx}"]
        assert data == data2 == b"shared-data"
        assert hits >= 1


def test_alternating_writers_converge():
    rounds = 5

    def make_app(i):
        def app(node, shared):
            tb = shared["tb"]
            for r in range(rounds):
                while shared.get("turn", 0) != 2 * r + i:
                    yield tb.sim.timeout(5.0)
                current = yield from node.read(0, 4)
                count = int.from_bytes(current, "big")
                yield from node.write(0, (count + 1).to_bytes(4, "big"))
                shared["turn"] = shared.get("turn", 0) + 1
            shared[f"done{i}"] = node.stats
        return app

    shared = run_dsm("clan", 2, 1, [make_app(0), make_app(1)])

    def check(node, shared):
        final = yield from node.read(0, 4)
        shared["final"] = int.from_bytes(final, "big")

    tb = shared["tb"]
    proc = tb.spawn(check(shared["node0"], shared))
    tb.run(proc)
    assert shared["final"] == 2 * rounds
    # ownership really migrated back and forth
    assert shared["done1"].ownership_transfers >= rounds - 1


def test_page_states_transition():
    def writer(node, shared):
        tb = shared["tb"]
        yield from node.write(PAGE, b"x")      # page 1, homed at n1
        assert node.page_state(1) == PageState.WRITE
        shared["written"] = True
        while "peer-read" not in shared:
            yield tb.sim.timeout(10.0)
        # the peer's read recalled us down to READ
        assert node.page_state(1) == PageState.READ

    def reader(node, shared):
        tb = shared["tb"]
        while "written" not in shared:
            yield tb.sim.timeout(10.0)
        yield from node.read(PAGE, 1)
        shared["peer-read"] = True

    run_dsm("clan", 2, 2, [writer, reader])


def test_out_of_range_access_rejected():
    def app(node, shared):
        with pytest.raises(ValueError):
            yield from node.read(2 * PAGE - 1, 2)  # npages == 2 => ok range
        with pytest.raises(ValueError):
            yield from node.read(-1, 1)
        with pytest.raises(ValueError):
            yield from node.write(2 * PAGE, b"x")

    def idle(node, shared):
        return
        yield  # pragma: no cover

    run_dsm("clan", 2, 2, [app, idle])


def test_dsm_node_validation():
    tb = Testbed("clan")
    h = tb.open("node0", "a")
    with pytest.raises(ValueError):
        DsmNode(h, 5, 2, 4)
    with pytest.raises(ValueError):
        DsmNode(h, 0, 1, 4)
