"""Unit tests for VI endpoints and work queues (FIFO invariants)."""

import pytest

from repro.sim import Simulator
from repro.via import (
    CompletionStatus,
    Descriptor,
    Reliability,
    VI,
    ViState,
    VipStateError,
)
from repro.via.cq import CompletionQueue


def make_vi():
    sim = Simulator()
    return sim, VI(sim, "node0", Reliability.UNRELIABLE)


def test_initial_state():
    _sim, vi = make_vi()
    assert vi.state is ViState.IDLE
    assert not vi.is_connected
    assert vi.send_q.outstanding == 0


def test_legal_state_walk():
    _sim, vi = make_vi()
    vi.to_state(ViState.CONNECT_PENDING)
    vi.to_state(ViState.CONNECTED)
    assert vi.is_connected
    vi.to_state(ViState.DISCONNECTED)
    vi.to_state(ViState.DESTROYED)


def test_illegal_transition_rejected():
    _sim, vi = make_vi()
    with pytest.raises(VipStateError):
        vi.to_state(ViState.DISCONNECTED)
    vi.to_state(ViState.DESTROYED)
    with pytest.raises(VipStateError):
        vi.to_state(ViState.IDLE)


def test_require_state():
    _sim, vi = make_vi()
    vi.require_state(ViState.IDLE)
    with pytest.raises(VipStateError):
        vi.require_state(ViState.CONNECTED)


def test_workqueue_enqueue_and_complete_fifo():
    _sim, vi = make_vi()
    wq = vi.send_q
    d1, d2 = Descriptor.send([]), Descriptor.send([])
    wq.enqueue(d1)
    wq.enqueue(d2)
    assert d1.posted and wq.outstanding == 2
    wq.complete_head(d1, CompletionStatus.SUCCESS, 10)
    assert d1.control.length == 10
    assert not d1.posted
    assert wq.try_reap() is d1
    assert wq.try_reap() is None
    wq.complete_head(d2, CompletionStatus.SUCCESS, 0)
    assert wq.try_reap() is d2


def test_complete_head_rejects_out_of_order():
    _sim, vi = make_vi()
    wq = vi.send_q
    d1, d2 = Descriptor.send([]), Descriptor.send([])
    wq.enqueue(d1)
    wq.enqueue(d2)
    with pytest.raises(VipStateError, match="FIFO"):
        wq.complete_head(d2, CompletionStatus.SUCCESS, 0)


def test_finish_parks_out_of_order_results():
    """The spec's in-order completion guarantee: an out-of-order finish
    is applied only when everything before it has finished."""
    _sim, vi = make_vi()
    wq = vi.send_q
    d1, d2, d3 = (Descriptor.send([]) for _ in range(3))
    for d in (d1, d2, d3):
        wq.enqueue(d)
    assert wq.finish(d2, CompletionStatus.SUCCESS, 2) == []
    assert wq.finish(d3, CompletionStatus.SUCCESS, 3) == []
    assert d2.posted and wq.try_reap() is None
    drained = wq.finish(d1, CompletionStatus.SUCCESS, 1)
    assert drained == [d1, d2, d3]
    assert [wq.try_reap() for _ in range(3)] == [d1, d2, d3]


def test_completion_signal_fires_per_completion():
    _sim, vi = make_vi()
    wq = vi.recv_q
    d = Descriptor.recv([])
    wq.enqueue(d)
    woken = []
    ev = wq.signal.wait()
    ev.callbacks.append(lambda e: woken.append(True))
    wq.complete_head(d, CompletionStatus.SUCCESS, 0)
    vi.sim.run()
    assert woken == [True]


def test_cq_attached_queue_routes_to_cq():
    sim, vi = make_vi()
    cq = CompletionQueue(sim)
    vi.recv_q.cq = cq
    cq.attached += 1
    d = Descriptor.recv([])
    vi.recv_q.enqueue(d)
    vi.recv_q.complete_head(d, CompletionStatus.SUCCESS, 0)
    with pytest.raises(VipStateError, match="bound to a CQ"):
        vi.recv_q.try_reap()
    assert cq.try_pop() == (vi.recv_q, d)


def test_claim_hands_out_distinct_descriptors():
    _sim, vi = make_vi()
    wq = vi.recv_q
    d1, d2 = Descriptor.recv([]), Descriptor.recv([])
    wq.enqueue(d1)
    wq.enqueue(d2)
    assert wq.claim() is d1
    assert wq.claim() is d2
    assert wq.claim() is None
    assert wq.claimable == 0
    assert wq.outstanding == 2  # still posted until completion


def test_flush_completes_everything_as_flushed():
    _sim, vi = make_vi()
    wq = vi.send_q
    descs = [Descriptor.send([]) for _ in range(3)]
    for d in descs:
        wq.enqueue(d)
    wq.claim()
    flushed = wq.flush()
    assert flushed == descs
    assert all(d.status is CompletionStatus.FLUSHED for d in descs)
    assert wq.outstanding == 0 and wq.claimable == 0


def test_completed_at_records_sim_time():
    sim, vi = make_vi()
    sim._now = 123.0  # direct manipulation is fine for a unit test
    d = Descriptor.send([])
    vi.send_q.enqueue(d)
    vi.send_q.complete_head(d, CompletionStatus.SUCCESS, 0)
    assert d.completed_at == 123.0


def test_vi_ids_unique():
    sim = Simulator()
    ids = {VI(sim, "n").vi_id for _ in range(50)}
    assert len(ids) == 50
