"""Golden-trace regression suite (observability layer).

One canonical poll-mode ping-pong per provider, with the full
``(t, category, label, node)`` event sequence pinned as a fixture.  Any
change to event ordering, timing, labels, or the instrumentation points
fails loudly here — the trace is part of the kernel's determinism
contract, exactly like the golden latency floats in
``test_determinism.py``.

Regenerate the fixtures after an *intentional* trace change with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py

and review the fixture diff like any other golden change.
"""

import json
import os
import pathlib

import pytest

from repro.obs.profile import profile_transfer

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
PROVIDERS = ("mvia", "bvia", "clan", "iba")
SIZE, SEED = 256, 0


def _sequence(profile):
    return [[ev.t, ev.category, ev.label, ev.node] for ev in profile.events]


@pytest.fixture(scope="module")
def profiles():
    return {p: profile_transfer(p, size=SIZE, seed=SEED) for p in PROVIDERS}


@pytest.mark.parametrize("provider", PROVIDERS)
def test_golden_event_sequence(profiles, provider):
    """Exact equality on purpose — see module docstring."""
    got = _sequence(profiles[provider])
    path = FIXTURES / f"golden_trace_{provider}.json"
    if os.environ.get("GOLDEN_REGEN"):  # pragma: no cover - maintenance aid
        path.write_text(json.dumps(got, indent=1) + "\n")
    want = json.loads(path.read_text())
    assert got == want


@pytest.mark.parametrize("provider", PROVIDERS)
def test_phases_telescope(profiles, provider):
    """The nine breakdown phases tile the one-way path contiguously."""
    phases = [s for s in profiles[provider].spans if s.category == "phase"]
    assert [s.name for s in phases] == [
        "post", "staging", "dispatch", "translation", "tx_dma", "wire",
        "rx_processing", "reap", "rx_kernel",
    ]
    for a, b in zip(phases, phases[1:]):
        assert a.end == b.start
    total = phases[-1].end - phases[0].start
    assert total == pytest.approx(sum(s.duration for s in phases))
    # the one-way path is bounded by the measured round trip
    assert 0 < total < profiles[provider].rtt_us


@pytest.mark.parametrize("provider", PROVIDERS)
def test_trace_json_is_perfetto_loadable(profiles, provider):
    doc = json.loads(profiles[provider].trace_json())
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    phs = {ev["ph"] for ev in events}
    assert phs == {"M", "i", "X"}             # metadata, instants, spans
    for ev in events:
        assert ev["pid"] >= 1
        if ev["ph"] != "M":
            assert ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0


@pytest.mark.parametrize("provider", PROVIDERS)
def test_metrics_snapshot_consistent_with_trace(profiles, provider):
    prof = profiles[provider]
    snap = prof.registry.snapshot()
    # every event the tracer saw was run by the kernel
    assert snap["sim.events_run"]["value"] > 0
    assert snap["sim.now_us"]["value"] >= prof.rtt_us
    # one message each way
    for node in ("node0", "node1"):
        assert snap[f"via.{node}.messages_sent"]["value"] == 1
        assert snap[f"via.{node}.messages_received"]["value"] == 1
        assert snap[f"nic.{node}.doorbells"]["value"] >= 2
    assert prof.meta["provider"] == prof.provider
    assert prof.meta["params"] == {
        "size": SIZE, "seed": SEED, "benchmark": "profile_pingpong",
    }
