"""VI error recovery: handshake retransmission, VipErrorReset, and the
full drain / reset / reconnect / repost sequence on every provider.

The handshake backoff schedule is a golden: it is pure and seedless so
a timing change shows up here before it silently shifts every recovery
latency in the chaos campaign.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec, attach_faults
from repro.providers import Testbed, get_spec
from repro.providers.costs import CostModel
from repro.via import CompletionStatus, Descriptor, Reliability, ViState
from repro.via.connection import backoff_schedule
from repro.via.errors import VipStateError, VipTimeout

from conftest import connected_endpoints, run_pair, simple_send

ALL_PROVIDERS = ("mvia", "bvia", "clan", "iba")


# ---------------------------------------------------------------------------
# Backoff schedule goldens
# ---------------------------------------------------------------------------

def test_backoff_schedule_golden():
    assert backoff_schedule(400.0, 6) == [
        400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0, 25600.0]


def test_backoff_schedule_cap_golden():
    assert backoff_schedule(4_000.0, 6, cap=8_000.0) == [
        4_000.0, 8_000.0, 8_000.0, 8_000.0, 8_000.0, 8_000.0, 8_000.0]


def test_backoff_schedule_degenerate_and_invalid():
    assert backoff_schedule(100.0, 0) == [100.0]
    assert backoff_schedule(100.0, 2, factor=1.0) == [100.0, 100.0, 100.0]
    with pytest.raises(ValueError):
        backoff_schedule(0.0, 3)
    with pytest.raises(ValueError):
        backoff_schedule(100.0, -1)
    with pytest.raises(ValueError):
        backoff_schedule(100.0, 3, factor=0.5)


def test_cost_model_recovery_defaults():
    import dataclasses

    defaults = {f.name: f.default for f in dataclasses.fields(CostModel)}
    assert defaults["conn_rto"] == 4_000.0
    assert defaults["conn_max_retries"] == 6
    assert defaults["conn_backoff_cap"] == 8_000.0
    # the base timeout must exceed every provider's server-side accept
    # turnaround, or lossless handshakes would retransmit spuriously
    for p in ALL_PROVIDERS:
        assert get_spec(p).costs.conn_rto > get_spec(p).costs.conn_server


# ---------------------------------------------------------------------------
# Handshake retransmission under surgically injected loss
# ---------------------------------------------------------------------------

def _handshake_under(plan_faults, provider="clan"):
    """Connect + one reliable ping with the given faults armed from t=0;
    returns the testbed (for counter inspection)."""
    plan = FaultPlan(name="handshake", faults=plan_faults)
    tb = Testbed(provider, seed=0, check=True, faults=plan)
    cs, ss = connected_endpoints(
        tb, reliability=Reliability.RELIABLE_DELIVERY)
    out = {}

    def client():
        h, vi, region, mh = yield from cs()
        desc = yield from simple_send(h, vi, region, mh, b"hello")
        out["status"] = desc.status

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.recv_wait(vi)
        out["data"] = h.read(region, 5)

    run_pair(tb, client(), server())
    tb.run()  # drain the backoff timers before the quiesce audit
    tb.checker.check_quiesced(tb)
    assert out["status"] is CompletionStatus.SUCCESS
    assert out["data"] == b"hello"
    return tb


def test_lost_conn_request_is_retransmitted():
    """Drop exactly the first packet the client ever sends (the
    conn_req): the backoff machinery must redial and connect."""
    tb = _handshake_under(
        (FaultSpec(kind="wire_loss", target="node0.up", count=1),))
    client = tb.providers["node0"]
    assert client.conn_retransmissions >= 1


def test_lost_conn_ack_is_replayed_by_the_server():
    """Drop the server's first reply (the conn_ack): the client's redial
    presents a conn_id the server has seen, so it replays the stored
    answer instead of accepting twice."""
    tb = _handshake_under(
        (FaultSpec(kind="wire_loss", target="node1.up", count=1),))
    server = tb.providers["node1"]
    assert server.conn_retransmissions >= 1  # the replayed reply


def test_lossless_handshake_never_retransmits():
    """With delivery-affecting faults armed but never firing, the retx
    machinery is live yet a clean handshake uses attempt zero only."""
    tb = _handshake_under(
        (FaultSpec(kind="wire_loss", at=1e12),))
    for p in tb.providers.values():
        assert p.conn_retransmissions == 0


# ---------------------------------------------------------------------------
# Full catastrophic-error recovery on every provider
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("provider", ALL_PROVIDERS)
def test_reconnect_after_error_round_trip(provider):
    """Blackout mid-stream: the send exhausts its retries and the VI
    lands in ERROR; both endpoints then run the VIPL recovery sequence
    (drain, reset, reconnect, repost) and the resend goes through."""
    spec = get_spec(provider).with_costs(rto=100.0, max_retries=2)
    tb = Testbed(spec, seed=1, check=True)
    disc = 9
    cs, _ = connected_endpoints(tb, disc=disc,
                                reliability=Reliability.RELIABLE_DELIVERY)
    out = {}

    def client():
        h, vi, region, mh = yield from cs()
        # arm the blackout only once the connection is up: the window is
        # relative to "now", so the schedule is provider-independent
        attach_faults(tb, FaultPlan(name="blackout", faults=(
            FaultSpec(kind="link_down", target="node0.up",
                      duration=2_000.0),)).shifted(tb.sim.now))
        h.write(region, b"doomed")
        segs = [h.segment(region, mh, 0, 6)]
        yield from h.post_send(vi, Descriptor.send(segs))
        first = yield from h.send_wait(vi, timeout=60_000.0)
        out["first"] = first.status
        out["state_after_error"] = vi.state
        # -- VIPL recovery sequence --------------------------------------
        while (yield from h.send_done(vi)) is not None:
            pass  # drain any flushed work
        yield from h.reset_vi(vi)
        out["state_after_reset"] = vi.state
        yield from h.connect(vi, "node1", disc, timeout=60_000.0)
        h.write(region, b"again!")
        yield from h.post_send(vi, Descriptor.send(segs))
        second = yield from h.send_wait(vi, timeout=60_000.0)
        out["second"] = second.status
        yield from h.disconnect(vi)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi(reliability=Reliability.RELIABLE_DELIVERY)
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, 6)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(disc)
        yield from h.accept(req, vi)
        connmgr = tb.providers["node1"].connmgr
        while True:
            try:
                desc = yield from h.recv_wait(vi, timeout=500.0)
            except VipTimeout:
                if connmgr.pending_count(disc):
                    # the client redialed after the blackout: tear down
                    # the dead connection and serve the fresh one
                    if vi.state is ViState.CONNECTED:
                        yield from h.disconnect(vi)
                    while (yield from h.recv_done(vi)) is not None:
                        pass
                    yield from h.reset_vi(vi)
                    yield from h.post_recv(vi, Descriptor.recv(segs))
                    req = yield from h.connect_wait(disc)
                    yield from h.accept(req, vi)
                continue
            if desc.status is CompletionStatus.SUCCESS:
                out["data"] = h.read(region, 6)
                return

    run_pair(tb, client(), server())
    tb.run()
    tb.checker.check_quiesced(tb)
    assert out["first"] is CompletionStatus.TRANSPORT_ERROR
    assert out["state_after_error"] is ViState.ERROR
    assert out["state_after_reset"] is ViState.IDLE
    assert out["second"] is CompletionStatus.SUCCESS
    assert out["data"] == b"again!"
    assert tb.providers["node0"].recoveries == 1
    assert tb.providers["node1"].recoveries == 1
    assert tb.providers["node0"].vi_errors >= 1


# ---------------------------------------------------------------------------
# VipErrorReset state discipline
# ---------------------------------------------------------------------------

def test_vi_reset_requires_error_or_disconnected():
    tb = Testbed("mvia")

    def body():
        h = tb.open("node0", "c")
        vi = yield from h.create_vi()
        with pytest.raises(VipStateError):
            vi.reset()  # IDLE is not a recoverable state

    tb.run(tb.spawn(body(), "t"))


def test_vi_reset_refuses_posted_work():
    """A descriptor still *posted* (not flushed) would be orphaned."""
    tb = Testbed("mvia")

    def body():
        h = tb.open("node0", "c")
        vi = yield from h.create_vi()
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        vi.recv_q.enqueue(Descriptor.recv([h.segment(region, mh, 0, 8)]))
        vi.to_state(ViState.CONNECTED)
        vi.to_state(ViState.ERROR)
        with pytest.raises(VipStateError, match="still on the recv queue"):
            vi.reset()

    tb.run(tb.spawn(body(), "t"))


def test_vi_reset_clears_sequencing_state():
    tb = Testbed("mvia")

    def body():
        h = tb.open("node0", "c")
        vi = yield from h.create_vi()
        vi.to_state(ViState.CONNECTED)
        vi.peer = ("node1", 7)
        vi.next_send_seq = 5
        vi.expected_rx_seq = 9
        vi.to_state(ViState.ERROR)
        vi.reset()
        assert vi.state is ViState.IDLE
        assert vi.peer is None
        assert vi.next_send_seq == 0 and vi.expected_rx_seq == 0

    tb.run(tb.spawn(body(), "t"))
