"""Tests for non-blocking sends (isend) on the message layer."""

import pytest

from repro.layers import MsgEndpoint
from repro.providers import Testbed
from repro.via.constants import WaitMode

from conftest import run_pair

from test_layers_msg import make_pair


def test_isend_delivers_in_order():
    tb = Testbed("clan")
    cs, ss = make_pair(tb)
    n = 20
    out = {}

    def client():
        msg = yield from cs()
        for i in range(n):
            yield from msg.isend(1, bytes([i]) * 16)
        yield from msg.flush_sends()
        assert msg._outstanding_sends == 0

    def server():
        msg = yield from ss()
        got = []
        for _ in range(n):
            _tag, data = yield from msg.recv(1)
            got.append(data[0])
        out["got"] = got

    run_pair(tb, client(), server())
    assert out["got"] == list(range(n))


def test_isend_pipelines_faster_than_send():
    """The whole point: overlapping sends with the wire beats one
    message per completion."""
    def stream(use_isend):
        tb = Testbed("clan")
        cs, ss = make_pair(tb, eager_size=4096)
        out = {}
        n, size = 40, 4096

        def client():
            msg = yield from cs()
            yield from msg.recv(9)         # server ready
            t0 = tb.now
            payload = b"z" * size
            for _ in range(n):
                if use_isend:
                    yield from msg.isend(1, payload)
                else:
                    yield from msg.send(1, payload)
            yield from msg.flush_sends()
            yield from msg.recv(9)         # server done
            out["bw"] = n * size / (tb.now - t0)

        def server():
            msg = yield from ss()
            yield from msg.send(9, b"go")
            for _ in range(n):
                yield from msg.recv(1)
            yield from msg.send(9, b"done")

        cproc = tb.spawn(client())
        tb.spawn(server())
        tb.run(cproc)
        return out["bw"]

    sync_bw = stream(False)
    async_bw = stream(True)
    assert async_bw > sync_bw * 1.3


def test_isend_staging_buffers_recycled():
    tb = Testbed("clan")
    cs, ss = make_pair(tb)
    out = {}

    def client():
        msg = yield from cs()
        # far more isends than the staging pool
        for i in range(3 * msg.send_pool):
            yield from msg.isend(2, bytes([i]))
        yield from msg.flush_sends()
        out["free"] = len(msg._staging_free)
        out["pool"] = msg.send_pool

    def server():
        msg = yield from ss()
        for _ in range(3 * 4):
            yield from msg.recv(2)

    run_pair(tb, client(), server())
    assert out["free"] == out["pool"]


def test_isend_mixed_with_sync_send_keeps_accounting():
    tb = Testbed("mvia")
    cs, ss = make_pair(tb)
    out = {}

    def client():
        msg = yield from cs()
        yield from msg.isend(1, b"a")
        yield from msg.isend(1, b"b")
        yield from msg.send(1, b"c")       # sync: reaps the isends first
        assert msg._outstanding_sends == 0
        yield from msg.flush_sends()

    def server():
        msg = yield from ss()
        got = []
        for _ in range(3):
            _tag, d = yield from msg.recv(1)
            got.append(d)
        out["got"] = got

    run_pair(tb, client(), server())
    assert out["got"] == [b"a", b"b", b"c"]


def test_isend_large_payload_falls_back_to_rendezvous():
    tb = Testbed("clan")
    cs, ss = make_pair(tb, eager_size=256)
    out = {}

    def client():
        msg = yield from cs()
        yield from msg.isend(4, b"L" * 5000)
        assert msg.stats["rendezvous"] == 1

    def server():
        msg = yield from ss()
        _tag, data = yield from msg.recv(4)
        out["len"] = len(data)

    run_pair(tb, client(), server())
    assert out["len"] == 5000


def test_isend_validates_tag():
    tb = Testbed("clan")
    h = tb.open("node0", "a")

    def body():
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        with pytest.raises(ValueError):
            yield from msg.isend(-5, b"x")

    tb.run(tb.spawn(body()))
