"""Unit tests for channels, links, and packets."""

import pytest

from repro.hw.link import Channel, Link, Packet
from repro.sim import Simulator

from conftest import run_proc


def make_channel(sim, **kw):
    defaults = dict(bandwidth=100.0, prop_delay=1.0)
    defaults.update(kw)
    ch = Channel(sim, **defaults)
    got = []
    ch.sink = lambda pkt: got.append((pkt, sim.now))
    return ch, got


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(src="a", dst="b", kind="x", size=-1)


def test_serialization_plus_propagation():
    sim = Simulator()
    ch, got = make_channel(sim, bandwidth=100.0, prop_delay=1.0)
    pkt = Packet(src="a", dst="b", kind="data", size=1000)

    def body():
        yield from ch.send(pkt)
        return sim.now

    sent_at = run_proc(sim, body())
    sim.run()
    assert sent_at == pytest.approx(10.0)         # 1000B / 100B-per-us
    assert got[0][1] == pytest.approx(11.0)       # + 1us propagation


def test_header_and_per_packet_overhead():
    sim = Simulator()
    ch, got = make_channel(sim, bandwidth=100.0, prop_delay=0.0,
                           header_bytes=100, per_packet_cost=2.0)
    pkt = Packet(src="a", dst="b", kind="data", size=100)
    assert ch.serialization_time(pkt) == pytest.approx(2.0 + 2.0)
    run_proc(sim, ch.send(pkt))
    sim.run()
    assert got[0][1] == pytest.approx(4.0)


def test_back_to_back_packets_pipeline():
    """Serialisation occupies the line; propagation does not."""
    sim = Simulator()
    ch, got = make_channel(sim, bandwidth=100.0, prop_delay=5.0)

    def sender():
        for i in range(3):
            yield from ch.send(Packet("a", "b", "data", 1000))

    run_proc(sim, sender())
    sim.run()
    times = [t for _p, t in got]
    # arrivals spaced by serialisation time (10), not ser+prop (15)
    assert times == [pytest.approx(15.0), pytest.approx(25.0),
                     pytest.approx(35.0)]


def test_fifo_delivery_order():
    sim = Simulator()
    ch, got = make_channel(sim)

    def sender():
        for i in range(5):
            yield from ch.send(Packet("a", "b", "data", 10, payload=i))

    run_proc(sim, sender())
    sim.run()
    assert [p.payload for p, _t in got] == [0, 1, 2, 3, 4]


def test_loss_rate_drops_deterministically_with_seed():
    import random

    sim = Simulator()
    ch = Channel(sim, bandwidth=100.0, prop_delay=0.0, loss_rate=0.5,
                 rng=random.Random(42))
    got = []
    ch.sink = lambda pkt: got.append(pkt)

    def sender():
        for i in range(100):
            yield from ch.send(Packet("a", "b", "data", 1))

    run_proc(sim, sender())
    sim.run()
    assert ch.sent_packets == 100
    assert 30 < ch.dropped_packets < 70
    assert len(got) == 100 - ch.dropped_packets


def test_channel_requires_sink():
    sim = Simulator()
    ch = Channel(sim, bandwidth=1.0, prop_delay=0.0)
    with pytest.raises(RuntimeError):
        run_proc(sim, ch.send(Packet("a", "b", "x", 1)))


def test_channel_parameter_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, bandwidth=0.0, prop_delay=0.0)
    with pytest.raises(ValueError):
        Channel(sim, bandwidth=1.0, prop_delay=-1.0)
    with pytest.raises(ValueError):
        Channel(sim, bandwidth=1.0, prop_delay=0.0, loss_rate=1.0)


def test_link_directions_are_independent():
    sim = Simulator()
    link = Link(sim, bandwidth=10.0, prop_delay=0.0)
    fwd_got, bwd_got = [], []
    link.forward.sink = lambda p: fwd_got.append(sim.now)
    link.backward.sink = lambda p: bwd_got.append(sim.now)

    def fwd():
        yield from link.forward.send(Packet("a", "b", "d", 100))

    def bwd():
        yield from link.backward.send(Packet("b", "a", "d", 100))

    sim.process(fwd())
    sim.process(bwd())
    sim.run()
    # full duplex: both complete at the same time, no contention
    assert fwd_got == [pytest.approx(10.0)]
    assert bwd_got == [pytest.approx(10.0)]


def test_byte_accounting():
    sim = Simulator()
    ch, _ = make_channel(sim)
    run_proc(sim, ch.send(Packet("a", "b", "d", 123)))
    sim.run()
    assert ch.sent_bytes == 123
