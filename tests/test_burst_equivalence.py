"""Fast-forward equivalence: the burst path must be bit-identical.

Three layers of the same property — flow-level fast-forward is a pure
wall-clock optimisation, never a model change:

* the wire: :meth:`Channel.plan_burst` replays the serialise/propagate
  recurrence arithmetically and must reproduce the event path's
  delivery timestamps bit-for-bit for any emit pattern;
* the engine: a streamed message sequence run at ``fidelity="auto"``
  must complete at exactly the packet-mode timestamps and leave every
  model counter (NIC, DMA, TLB, wire, work queues) identical, across
  message size x MTU x port-buffer x reliability level;
* the stacks: the differential harness's structural signatures must not
  move under either fast-forward mode on any provider.

Only ``sim.*`` kernel accounting may differ: fast-forward exists to run
fewer events, so ``events_run``/``ctx_switches`` shrink and the
``sim.ff_*`` counters appear.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.differential import ALL_PROVIDERS, WORKLOADS, run_workload
from repro.hw.link import Channel, Packet
from repro.obs.harvest import harvest_testbed
from repro.providers import Testbed
from repro.sim import Simulator
from repro.via import Descriptor
from repro.via.constants import Reliability

RELIABILITIES = (Reliability.UNRELIABLE, Reliability.RELIABLE_DELIVERY,
                 Reliability.RELIABLE_RECEPTION)


# ---------------------------------------------------------------------------
# wire level: plan_burst vs per-packet Channel.send
# ---------------------------------------------------------------------------

@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4096),
                   min_size=1, max_size=10),
    gaps=st.lists(st.floats(min_value=0.0, max_value=50.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=10, max_size=10),
    bandwidth=st.sampled_from([10.0, 125.0, 1250.0]),
    prop_delay=st.sampled_from([0.0, 0.1, 2.5]),
    header=st.sampled_from([0, 14, 40]),
    ppc=st.sampled_from([0.0, 0.05]),
)
@settings(max_examples=80, deadline=None)
def test_channel_plan_burst_matches_event_path(sizes, gaps, bandwidth,
                                               prop_delay, header, ppc):
    """plan_burst's FIFO recurrence == the event path, bit for bit."""
    gaps = gaps[:len(sizes)]
    emits = []
    t = 0.0
    for g in gaps:
        t += g
        emits.append(t)

    # event path: one process per packet, released at its emit time in
    # FIFO order, delivery timestamps captured at the sink
    sim = Simulator()
    ch = Channel(sim, bandwidth, prop_delay, header_bytes=header,
                 per_packet_cost=ppc, name="u")
    delivered: list[float] = []
    ends: list[float] = []
    ch.sink = lambda pkt: delivered.append(sim.now)

    def sender(emit, size):
        if emit > 0.0:
            yield sim.timeout(emit)
        yield from ch.send(Packet("a", "b", "data", size))
        ends.append(sim.now)

    for emit, size in zip(emits, sizes):
        sim.process(sender(emit, size))
    sim.run()

    # arithmetic path, planned against the same idle line
    plan = Channel(Simulator(), bandwidth, prop_delay, header_bytes=header,
                   per_packet_cost=ppc, name="p")
    starts, plan_ends, delivers = plan.plan_burst(emits, sizes)

    assert list(plan_ends) == sorted(ends)
    assert list(delivers) == sorted(delivered)
    assert all(s >= e for s, e in zip(starts, emits))


# ---------------------------------------------------------------------------
# engine level: fidelity="auto" vs packet on a fragmented stream
# ---------------------------------------------------------------------------

def _stream_run(provider: str, size: int, mtu: int, frames: int,
                reliability: Reliability, fidelity: str,
                count: int = 3) -> tuple[dict, dict]:
    """Stream ``count`` messages; returns (timestamps, counter snapshot)."""
    tb = Testbed(provider, mtu=mtu, fidelity=fidelity)
    for port in tb.fabric.switch._ports.values():
        port.capacity_frames = frames
    times: dict = {"send": [], "recv": []}

    def client():
        h = tb.open("node0", "c")
        vi = yield from h.create_vi(reliability=reliability)
        r = h.alloc(size)
        mh = yield from h.register_mem(r)
        yield from h.connect(vi, "node1", 9)
        segs = [h.segment(r, mh, 0, size)]
        for _ in range(count):
            yield from h.post_send(vi, Descriptor.send(segs))
            desc = yield from h.send_wait(vi)
            times["send"].append(desc.completed_at)

    def server():
        h = tb.open("node1", "s")
        vi = yield from h.create_vi(reliability=reliability)
        r = h.alloc(size)
        mh = yield from h.register_mem(r)
        segs = [h.segment(r, mh, 0, size)]
        for _ in range(count):
            yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(9)
        yield from h.accept(req, vi)
        for _ in range(count):
            desc = yield from h.recv_wait(vi)
            times["recv"].append(desc.completed_at)

    cp = tb.spawn(client(), "client")
    sp = tb.spawn(server(), "server")
    tb.run(cp)
    tb.run(sp)
    tb.run()
    times["now"] = tb.sim.now
    counters = {k: v for k, v in harvest_testbed(tb).snapshot().items()
                if not k.startswith("sim.")}
    return times, counters


@given(
    provider=st.sampled_from(ALL_PROVIDERS),
    size=st.integers(min_value=1, max_value=32_768),
    mtu=st.sampled_from([512, 1024, 2048, 4096]),
    frames=st.integers(min_value=2, max_value=64),
    reliability=st.sampled_from(RELIABILITIES),
)
@settings(max_examples=25, deadline=None)
def test_stream_auto_bit_identical_to_packet(provider, size, mtu, frames,
                                             reliability):
    """Completions and every model counter survive fast-forward."""
    packet = _stream_run(provider, size, mtu, frames, reliability, "packet")
    auto = _stream_run(provider, size, mtu, frames, reliability, "auto")
    assert auto[0] == packet[0]     # timestamps, bit for bit
    assert auto[1] == packet[1]     # NIC/DMA/TLB/wire/WQ counters


@pytest.mark.parametrize("reliability", RELIABILITIES)
def test_flow_fidelity_single_fragment_messages(reliability):
    """``flow`` fast-forwards even unfragmented (n=1) sends losslessly."""
    packet = _stream_run("clan", 256, 4096, 32, reliability, "packet")
    flow = _stream_run("clan", 256, 4096, 32, reliability, "flow")
    assert flow == packet


# ---------------------------------------------------------------------------
# stack level: differential signatures across fidelity modes
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("provider", ALL_PROVIDERS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_workload_signature_stable_across_fidelity(provider, workload):
    base = run_workload(provider, workload, check=False)
    for fidelity in ("auto", "flow"):
        ff = run_workload(provider, workload, check=False, fidelity=fidelity)
        assert ff == base, f"{provider}/{workload} diverged under {fidelity}"
