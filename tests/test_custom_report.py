"""Tests for user-defined provider specs and the report generator."""

import json

import pytest

from repro.providers import Testbed, get_spec, load_spec, spec_to_dict
from repro.providers.costs import DispatchKind, TableLocation
from repro.vibe import TransferConfig, generate_report, run_latency


def write_spec(tmp_path, data):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(data))
    return path


def test_load_spec_inherits_and_overrides(tmp_path):
    path = write_spec(tmp_path, {
        "name": "my-design",
        "base": "bvia",
        "choices": {"dispatch": "direct",
                    "table_location": "nic_memory"},
        "costs": {"vi_create": 1.0},
        "network": {"mtu": 2048},
    })
    spec = load_spec(path)
    assert spec.name == "my-design"
    assert spec.choices.dispatch is DispatchKind.DIRECT
    assert spec.choices.table_location is TableLocation.NIC_MEMORY
    assert spec.costs.vi_create == 1.0
    assert spec.network.mtu == 2048
    # untouched fields inherit from bvia
    base = get_spec("bvia")
    assert spec.costs.cq_create == base.costs.cq_create
    assert spec.choices.data_path is base.choices.data_path


def test_loaded_spec_runs_the_suite(tmp_path):
    path = write_spec(tmp_path, {
        "base": "bvia",
        "choices": {"dispatch": "direct"},
    })
    spec = load_spec(path)
    fixed = run_latency(spec, TransferConfig(size=4, extra_vis=15))
    stock = run_latency("bvia", TransferConfig(size=4, extra_vis=15))
    assert fixed.latency_us < stock.latency_us  # the knob took effect
    tb = Testbed(spec)
    assert tb.name == "custom-bvia"


def test_load_spec_validates(tmp_path):
    with pytest.raises(ValueError, match="unknown DesignChoices"):
        load_spec(write_spec(tmp_path, {"choices": {"bogus": 1}}))
    with pytest.raises(ValueError, match="not one of"):
        load_spec(write_spec(tmp_path, {"choices": {"doorbell": "carrier"}}))
    with pytest.raises(ValueError, match="unknown CostModel"):
        load_spec(write_spec(tmp_path, {"costs": {"nope": 1.0}}))
    with pytest.raises(ValueError, match="JSON object"):
        load_spec(write_spec(tmp_path, [1, 2, 3]))
    with pytest.raises(KeyError):
        load_spec(write_spec(tmp_path, {"base": "missing-provider"}))


def test_spec_roundtrip_through_dict(tmp_path):
    spec = get_spec("clan")
    data = spec_to_dict(spec)
    assert data["choices"]["doorbell"] == "mmio"
    assert data["costs"]["vi_create"] == 3.0
    # the dict (minus name/base defaults) reloads to an equivalent spec
    path = write_spec(tmp_path, {
        "name": data["name"],
        "base": "clan",
        "choices": data["choices"],
        "costs": data["costs"],
    })
    clone = load_spec(path)
    assert clone.choices == spec.choices
    assert clone.costs == spec.costs


def test_generate_report(tmp_path):
    path = generate_report(tmp_path / "rep", providers=("clan",),
                           quick=True)
    text = path.read_text()
    assert "# VIBe report" in text
    assert "Table 1" in text
    assert "Fig. 7" in text
    assert "LogGP" in text
    # per-section artifacts exist and are numbered uniquely
    files = sorted((tmp_path / "rep").glob("*.txt"))
    assert len(files) >= 10
    assert files[0].name.startswith("01_")
