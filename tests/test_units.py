"""Tests for unit helpers."""

import pytest

from repro.units import (
    KiB,
    MiB,
    bytes_per_us_to_mbps,
    fmt_size,
    fmt_time_us,
    mbps_to_bytes_per_us,
    paper_size_sweep,
    pow2_sweep,
)


def test_bandwidth_conversions_are_identity():
    assert mbps_to_bytes_per_us(125.0) == 125.0
    assert bytes_per_us_to_mbps(125.0) == 125.0


def test_fmt_time():
    assert fmt_time_us(5.0) == "5.00 us"
    assert fmt_time_us(1500.0) == "1.500 ms"
    assert fmt_time_us(2_500_000.0) == "2.500 s"


def test_fmt_size():
    assert fmt_size(100) == "100 B"
    assert fmt_size(2 * KiB) == "2 KiB"
    assert fmt_size(3 * MiB) == "3 MiB"


def test_paper_size_sweep_matches_figures():
    sweep = paper_size_sweep()
    assert sweep[0] == 4 and sweep[-1] == 28672
    assert sweep == sorted(sweep)
    assert 12288 in sweep and 20480 in sweep


def test_pow2_sweep():
    assert pow2_sweep(4, 64) == [4, 8, 16, 32, 64]
    assert pow2_sweep(1, 1) == [1]
    with pytest.raises(ValueError):
        pow2_sweep(0, 8)
    with pytest.raises(ValueError):
        pow2_sweep(16, 8)
