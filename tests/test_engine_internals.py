"""Direct tests of engine internals and rare wire conditions."""

import pytest

from repro.hw.link import Packet
from repro.providers import Testbed, get_spec
from repro.providers.engine import AckPayload, DataFrag, RdmaReadReq
from repro.via import CompletionStatus, Descriptor, Reliability

from conftest import connected_endpoints, run_pair, run_proc, simple_send


def _inject(tb, src, dst, kind, size, payload):
    """Transmit a hand-crafted packet from src to dst."""
    def body():
        pkt = Packet(src=src, dst=dst, kind=kind, size=size, payload=payload)
        yield from tb.provider(src).node.nic.transmit(pkt)
        yield tb.sim.timeout(200.0)

    run_proc(tb.sim, body())
    tb.run()


def test_ack_for_unknown_message_ignored():
    tb = Testbed("clan")
    _inject(tb, "node0", "node1", "via-ack", 16,
            AckPayload(dst_vi=999, seq=7, kind="ack"))
    # no crash, nothing tracked
    assert not tb.provider("node1").engine._unacked


def test_nak_read_for_unknown_read_ignored():
    tb = Testbed("clan")
    _inject(tb, "node0", "node1", "via-ack", 16,
            AckPayload(dst_vi=1, seq=12345, kind="nak_read"))
    assert not tb.provider("node1").engine._pending_reads


def test_read_resp_for_unknown_read_dropped():
    tb = Testbed("clan")
    _inject(tb, "node0", "node1", "via-data", 8,
            DataFrag(src_vi=1, dst_vi=2, seq=0, frag=0, nfrags=1,
                     offset=0, total_len=8, data=b"orphaned",
                     op="read_resp", read_id=777))
    assert tb.provider("node1").engine.drops >= 1


def test_read_req_to_unknown_vi_dropped():
    tb = Testbed("clan")
    _inject(tb, "node0", "node1", "via-read", 16,
            RdmaReadReq(src_vi=1, dst_vi=31337, read_id=1,
                        remote_addr=0x1000, remote_handle=1, length=8))
    assert tb.provider("node1").engine.drops >= 1


def test_trailing_fragment_without_state_dropped():
    """A fragment with frag>0 arriving with no reassembly state (e.g.
    after a drop) is discarded quietly."""
    tb = Testbed("clan")
    cs, ss = connected_endpoints(tb)
    vis = {}

    def client():
        h, vi, region, mh = yield from cs()
        vis["client"] = vi
        while "server" not in vis:
            yield tb.sim.timeout(1.0)
        frag = DataFrag(src_vi=vi.vi_id, dst_vi=vis["server"].vi_id,
                        seq=5, frag=1, nfrags=3, offset=100,
                        total_len=300, data=b"x" * 100, op="send")
        pkt = Packet(src="node0", dst="node1", kind="via-data", size=100,
                     payload=frag)
        yield from h.node.nic.transmit(pkt)
        yield tb.sim.timeout(200.0)

    def server():
        h, vi, region, mh = yield from ss()
        vis["server"] = vi
        yield tb.sim.timeout(400.0)

    run_pair(tb, client(), server())
    assert tb.provider("node1").engine.drops >= 1


def test_retransmit_timer_stops_after_ack():
    """Timers armed under loss-possible conditions do nothing once the
    ack lands — no spurious retransmissions."""
    tb = Testbed("clan", loss_rate=0.000001, seed=2)  # timers armed
    cs, ss = connected_endpoints(
        tb, reliability=Reliability.RELIABLE_DELIVERY)

    def client():
        h, vi, region, mh = yield from cs()
        for _ in range(5):
            yield from simple_send(h, vi, region, mh, b"steady")
        # outlive the rto period to let every timer fire and observe
        yield tb.sim.timeout(5_000.0)

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 8)]
        for _ in range(5):
            yield from h.post_recv(vi, Descriptor.recv(segs))
            yield from h.recv_wait(vi)

    run_pair(tb, client(), server())
    assert tb.provider("node0").engine.retransmissions == 0
    assert not tb.provider("node0").engine._unacked


def test_unreliable_vi_with_loss_simply_loses():
    tb = Testbed("bvia", loss_rate=0.999999, seed=1)
    # the handshake needs the wire: disable loss, connect, re-enable
    channels = [tb.fabric.node(n).nic.port.out_channel
                for n in tb.node_names]
    for ch in channels:
        ch.loss_rate = 0.0
    cs, ss = connected_endpoints(tb)
    out = {}

    def client():
        h, vi, region, mh = yield from cs()
        for ch in channels:
            ch.loss_rate = 0.999999
        desc = yield from simple_send(h, vi, region, mh, b"gone")
        out["send_status"] = desc.status  # local completion regardless

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield tb.sim.timeout(10_000.0)
        out["outstanding"] = vi.recv_q.outstanding

    run_pair(tb, client(), server())
    assert out["send_status"] is CompletionStatus.SUCCESS
    assert out["outstanding"] == 1  # never completed: the message is gone


def test_control_packet_unknown_type_rejected():
    tb = Testbed("clan")
    from repro.via import VipInvalidParameter

    with pytest.raises(VipInvalidParameter):
        tb.provider("node0").handle_control_packet(object())


def test_registry_unknown_provider():
    with pytest.raises(KeyError, match="unknown provider"):
        get_spec("nonexistent")


def test_spec_builders_return_new_specs():
    spec = get_spec("bvia")
    faster = spec.with_costs(post_cost=0.1)
    assert faster.costs.post_cost == 0.1
    assert spec.costs.post_cost != 0.1
    from repro.providers.costs import DispatchKind

    direct = spec.with_choices(dispatch=DispatchKind.DIRECT)
    assert direct.choices.dispatch is DispatchKind.DIRECT
    assert spec.choices.dispatch is not DispatchKind.DIRECT
    from repro.hw import GIGE

    moved = spec.with_network(GIGE)
    assert moved.network is GIGE


def test_costmodel_scaled():
    costs = get_spec("clan").costs
    double = costs.scaled(2.0)
    assert double.vi_create == costs.vi_create * 2
    assert double.tlb_miss == costs.tlb_miss * 2
    # limits are not scaled
    assert double.max_transfer_size == costs.max_transfer_size


def test_transport_failure_breaks_the_connection():
    """Exhausted retries are a connection-level event: the VI moves to
    ERROR and its remaining work is flushed (VIA catastrophic-error
    semantics)."""
    from repro.via import ViState

    spec = get_spec("clan").with_costs(rto=100.0, max_retries=2)
    tb = Testbed(spec, loss_rate=0.999999, seed=1)
    channels = [tb.fabric.node(n).nic.port.out_channel
                for n in tb.node_names]
    rates = [ch.loss_rate for ch in channels]
    for ch in channels:
        ch.loss_rate = 0.0
    cs, ss = connected_endpoints(
        tb, reliability=Reliability.RELIABLE_DELIVERY)
    out = {}

    def client():
        h, vi, region, mh = yield from cs()
        for ch, rate in zip(channels, rates):
            ch.loss_rate = rate
        segs = [h.segment(region, mh, 0, 8)]
        # two sends: the first fails, the second must be FLUSHED
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.post_send(vi, Descriptor.send(segs))
        first = yield from h.send_wait(vi, timeout=60_000.0)
        second = yield from h.send_wait(vi, timeout=60_000.0)
        out["first"] = first.status
        out["second"] = second.status
        out["state"] = vi.state

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))

    run_pair(tb, client(), server())
    assert out["first"] is CompletionStatus.TRANSPORT_ERROR
    assert out["second"] is CompletionStatus.FLUSHED
    assert out["state"] is ViState.ERROR
