"""Tests for the cluster subsystem: topologies, workload, server, sweep."""

from __future__ import annotations

import json
import random

import pytest

from repro.check import ALL_PROVIDERS
from repro.cluster import (
    ClusterClient,
    ClusterConfig,
    ClusterServer,
    StartGate,
    arrival_offsets,
    find_knee,
    make_service,
    make_topology,
    run_cluster,
    run_cluster_once,
)
from repro.cluster.topology import build_testbed

SMALL = ClusterConfig(nodes=4, clients=4, requests=4, window=2,
                      service="fixed:20")


# -- topology ---------------------------------------------------------------

def test_star_topology_names_and_roles():
    topo = make_topology("star", 6, 2)
    assert topo.servers == ("s0", "s1")
    assert topo.clients == ("c0", "c1", "c2", "c3")
    assert topo.nodes == topo.servers + topo.clients
    assert topo.n_nodes == 6
    assert topo.leaf_groups is None


def test_dumbbell_splits_servers_from_clients():
    topo = make_topology("dumbbell", 5, 1)
    assert topo.leaf_groups == (("s0",), ("c0", "c1", "c2", "c3"))
    assert topo.uplink_factor == 1.0


def test_fattree_round_robins_nodes_with_full_bisection():
    topo = make_topology("fattree", 8, 1)
    assert topo.leaf_groups is not None
    assert len(topo.leaf_groups) == 4
    spread = [n for g in topo.leaf_groups for n in g]
    assert sorted(spread) == sorted(topo.nodes)
    assert topo.uplink_factor == max(len(g) for g in topo.leaf_groups)


@pytest.mark.parametrize("kind,nodes,servers", [
    ("ring", 4, 1),      # unknown kind
    ("star", 2, 2),      # no room for a client node
    ("star", 4, 0),      # need at least one server
])
def test_make_topology_rejects_bad_shapes(kind, nodes, servers):
    with pytest.raises(ValueError):
        make_topology(kind, nodes, servers)


# -- service models ---------------------------------------------------------

def test_make_service_models():
    rng = random.Random(0)
    assert make_service("fixed:20")(rng, 128) == 20.0
    assert make_service("none")(rng, 128) == 0.0
    assert make_service("bytes:0.5")(rng, 128) == 64.0
    exp = make_service("exp:50")
    draws = [exp(rng, 128) for _ in range(200)]
    assert all(d >= 0 for d in draws)
    assert 25 < sum(draws) / len(draws) < 100  # mean near 50


@pytest.mark.parametrize("spec", ["fixed:abc", "fixed:-5", "warp:9", "exp:"])
def test_make_service_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        make_service(spec)


# -- arrival schedules ------------------------------------------------------

def test_arrival_offsets_uniform_and_burst():
    uni = arrival_offsets("uniform", 4, 100.0, random.Random(0))
    assert uni == [0.0, 100.0, 200.0, 300.0]
    bur = arrival_offsets("burst", 6, 100.0, random.Random(0), burst=3)
    assert bur == [0.0, 0.0, 0.0, 300.0, 300.0, 300.0]


def test_arrival_offsets_poisson_is_seeded():
    a = arrival_offsets("poisson", 16, 50.0, random.Random(7))
    b = arrival_offsets("poisson", 16, 50.0, random.Random(7))
    assert a == b
    assert a == sorted(a) and a[0] > 0.0


def test_arrival_offsets_validates():
    with pytest.raises(ValueError):
        arrival_offsets("weibull", 4, 100.0, random.Random(0))
    with pytest.raises(ValueError):
        arrival_offsets("uniform", 4, 0.0, random.Random(0))


# -- the start gate ---------------------------------------------------------

def test_start_gate_abandon_shrinks_the_quorum():
    from repro.sim import Simulator

    sim = Simulator()
    gate = StartGate(sim, 3)
    order = []

    def member(i):
        yield from gate.arrive()
        order.append(i)

    sim.process(member(0))
    sim.process(member(1))
    sim.run()
    assert gate.t0 is None           # quorum of 3, only 2 arrived
    gate.abandon()                   # the third can never make it
    sim.run()
    assert gate.t0 == 0.0 and sorted(order) == [0, 1]


# -- knee detection ---------------------------------------------------------

def test_find_knee_last_efficient_point():
    points = [
        {"offered_rps": 1000.0, "realized_rps": 990.0, "goodput_rps": 989.0},
        {"offered_rps": 2000.0, "realized_rps": 1980.0, "goodput_rps": 1975.0},
        {"offered_rps": 4000.0, "realized_rps": 3950.0, "goodput_rps": 2100.0},
    ]
    knee = find_knee(points)
    assert knee["knee_rps"] == 2000.0
    assert knee["peak_goodput_rps"] == 2100.0


def test_find_knee_closed_loop_points():
    points = [{"offered_rps": None, "realized_rps": None,
               "goodput_rps": 1234.0}]
    knee = find_knee(points)
    assert knee["knee_rps"] == 0.0
    assert knee["peak_goodput_rps"] == 1234.0


# -- end-to-end cluster runs ------------------------------------------------

@pytest.mark.parametrize("provider", ALL_PROVIDERS)
def test_closed_loop_roundtrip_per_provider(provider):
    cfg = ClusterConfig(nodes=4, clients=4, requests=4, window=2,
                        mode="closed")
    pt = run_cluster_once(provider, cfg, None, check=True)
    assert pt["violations"] == []
    assert pt["completed"] == 16 and pt["failed"] == 0
    assert pt["served"] == 16
    assert pt["offered_rps"] is None and pt["goodput_rps"] > 0


def test_open_loop_point_reports_realized_rate():
    pt = run_cluster_once("mvia", SMALL, 4000.0, check=True)
    assert pt["violations"] == []
    assert pt["completed"] == 16
    assert pt["offered_rps"] == 4000.0
    assert pt["realized_rps"] is not None and pt["realized_rps"] > 0
    assert pt["p99_us"] >= pt["p50_us"] > 0


@pytest.mark.parametrize("topology", ["dumbbell", "fattree"])
def test_multi_switch_topologies_roundtrip(topology):
    cfg = ClusterConfig(topology=topology, nodes=6, clients=5, requests=3,
                        window=2, mode="closed")
    pt = run_cluster_once("bvia", cfg, None, check=True)
    assert pt["violations"] == []
    assert pt["completed"] == 15 and pt["failed"] == 0


def test_contention_appears_at_the_server_port():
    # 6 clients bursting 4 KiB requests converge on the server node's
    # switch output port; on a cut-through fabric (clan/Giganet) the
    # simultaneous frames must serialise, counted as contention
    cfg = ClusterConfig(nodes=7, clients=6, requests=8, window=4,
                        arrival="burst", burst=8, req_size=4096,
                        resp_size=64, service="none")
    pt = run_cluster_once("clan", cfg, 64_000.0)
    assert pt["completed"] == 48
    assert pt["port_contended"] > 0


def test_run_cluster_sweep_structure():
    report = run_cluster(("mvia",), SMALL, rates=(4000.0, 16000.0))
    assert report.ok
    curve = report.results["mvia"]
    assert [p["offered_rps"] for p in curve["points"]] == [4000.0, 16000.0]
    assert "knee_rps" in curve and "peak_goodput_rps" in curve
    data = json.loads(report.to_json())
    assert data["ok"] is True
    assert data["rates"] == [4000.0, 16000.0]
    summary = report.summary()
    assert "PASS" in summary and "mvia" in summary


def test_build_testbed_star_matches_flat_fabric():
    topo = make_topology("star", 4, 1)
    tb = build_testbed("mvia", topo, seed=0)
    assert tb.node_names == ("s0", "c0", "c1", "c2")


# -- the many_clients chaos cell --------------------------------------------

def test_many_clients_chaos_cell_serves_through_the_outage():
    from repro.faults.chaos import run_scenario
    from repro.faults.scenarios import get_scenario

    sc = get_scenario("many_clients")
    assert sc.workload == "cluster"
    r = run_scenario("mvia", sc, seed=0, quick=True)
    assert r.ok, (r.violations, r.note)
    assert r.delivered == r.expected == 40
    assert r.retransmissions > 0          # the link_down actually bit
    assert "served during the outage" in r.note
    served = int(r.note.split()[0])
    assert served > 0                     # the server never stalled


# -- CLI --------------------------------------------------------------------

def test_cli_cluster_writes_json_report(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "cluster.json"
    main(["cluster", "--provider", "mvia", "--nodes", "4", "--clients", "4",
          "--requests", "4", "--window", "2", "--rate", "4000",
          "--json-out", str(out)])
    captured = capsys.readouterr().out
    assert "PASS" in captured
    data = json.loads(out.read_text())
    assert data["ok"] is True
    assert data["providers"] == ["mvia"]
    assert len(data["results"]["mvia"]["points"]) == 1


def test_cluster_client_and_server_are_exported():
    assert ClusterClient is not None and ClusterServer is not None
