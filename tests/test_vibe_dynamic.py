"""Tests for the dynamic-runtime benchmarks (churn + tail latency)."""

import pytest

from repro.vibe import connection_churn, tail_latency_under_load


def test_churn_rate_inverts_connection_cost_ordering():
    """BVIA's cheap connections (Table 1: 496 us) buy it the highest
    lifecycle rate, despite losing most latency benchmarks."""
    rates = {p: connection_churn(p, cycles=5).extra["cycles_per_s"]
             for p in ("mvia", "bvia", "clan")}
    assert rates["bvia"] > rates["clan"] > rates["mvia"]


def test_churn_cycle_dominated_by_connection_cost(provider_name):
    from repro.providers import get_spec

    m = connection_churn(provider_name, cycles=5)
    costs = get_spec(provider_name).costs
    conn = costs.conn_client + costs.conn_server
    assert m.extra["cycle_us"] > conn          # at least the handshake
    assert m.extra["cycle_us"] < conn + 1000   # and not much else


def test_churn_deterministic(provider_name):
    a = connection_churn(provider_name, cycles=4).extra["cycle_us"]
    b = connection_churn(provider_name, cycles=4).extra["cycle_us"]
    assert a == b


def test_tail_latency_grows_with_load():
    res = tail_latency_under_load("clan", loads=(0.3, 0.95), requests=80)
    low, high = res.point(0.3), res.point(0.95)
    assert high.extra["p99_us"] > low.extra["p99_us"]
    assert high.extra["mean_us"] > low.extra["mean_us"]


def test_tail_separates_from_median_under_load():
    res = tail_latency_under_load("clan", loads=(0.95,), requests=100)
    p = res.point(0.95)
    # queueing: the p99 is far above the median at high load
    assert p.extra["p99_us"] > 1.5 * p.extra["p50_us"]
    # and the median itself stays near the unloaded service time
    assert p.extra["p50_us"] < 3 * res.params["service_us"]


def test_tail_latency_percentiles_ordered(provider_name):
    res = tail_latency_under_load(provider_name, loads=(0.6,), requests=60)
    p = res.point(0.6)
    assert p.extra["p50_us"] <= p.extra["p95_us"] <= p.extra["p99_us"]
    assert p.extra["p50_us"] > 0
