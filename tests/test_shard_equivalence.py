"""Sharded runs are byte-identical to the single-heap run.

The headline claim of :mod:`repro.shard`: one cluster point — the full
report dict, the latency quantiles, the merged hardware counters — is
a pure function of (config, seed), no matter how many shard simulators
the cluster is partitioned over or which transport steps them.

Hypothesis draws random (topology shape, size, workload, provider,
shard count) cells and compares the sharded point and merged harvest
against the single-heap run.  Directed cells pin the interesting
corners: a link fault windowed onto a cut edge, a fast-forward-eligible
stream, the process transport, and a full ``run_cluster`` sweep whose
JSON must compare byte-for-byte at shards 2, 3 and 4.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.runner import ClusterConfig, run_cluster, run_cluster_once
from repro.faults import FaultPlan, FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.shard import merge_registries, run_cluster_once_sharded

_SLOW = settings(max_examples=6, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _single(provider, cfg, rate, fault_plan=None):
    """Single-heap point plus its harvest, sim.* kernel totals dropped
    (they describe the event loop, not the simulated cluster)."""
    registry = MetricsRegistry()
    point = run_cluster_once(provider, cfg, rate, fault_plan=fault_plan,
                             harvest=registry)
    metrics = {k: v for k, v in registry.snapshot().items()
               if not k.startswith("sim.")}
    return point, metrics


def _assert_equivalent(provider, cfg, rate, shards, *, workers="inline",
                       fault_plan=None):
    point, metrics = _single(provider, cfg, rate, fault_plan)
    sharded, stats = run_cluster_once_sharded(
        provider, cfg, rate, shards=shards, workers=workers,
        fault_plan=fault_plan)
    assert json.dumps(sharded, sort_keys=True) == \
        json.dumps(point, sort_keys=True)
    merged = {k: v for k, v in stats["metrics"].items()
              if not k.startswith("shard.")}
    assert merged == metrics
    assert stats["shards"] == shards
    assert stats["msgs_exchanged"] >= 0
    assert stats["horizon_advances"] >= stats["rounds"]
    return stats


@given(
    topology=st.sampled_from(["star", "dumbbell", "fattree"]),
    nodes=st.integers(3, 6),
    servers=st.integers(1, 2),
    clients=st.integers(2, 6),
    requests=st.integers(2, 4),
    arrival=st.sampled_from(["poisson", "uniform", "burst"]),
    mode=st.sampled_from(["open", "open", "closed"]),
    provider=st.sampled_from(["mvia", "iba", "bvia", "clan"]),
    shards=st.integers(2, 4),
    seed=st.integers(0, 2**20),
)
@_SLOW
def test_random_cells_byte_identical(topology, nodes, servers, clients,
                                     requests, arrival, mode, provider,
                                     shards, seed):
    servers = min(servers, nodes - 1)
    cfg = ClusterConfig(topology=topology, nodes=nodes, servers=servers,
                        clients=clients, requests=requests,
                        arrival=arrival, mode=mode, seed=seed)
    rate = 8000.0 if mode == "open" else None
    _assert_equivalent(provider, cfg, rate, shards)


@pytest.mark.parametrize("shards", [2, 3])
def test_chaos_cell_on_cut_edge(shards):
    """A windowed link flap on a client uplink — a *cut* edge for every
    partition that separates c0 from the server — drops live request
    traffic, forces retransmissions, and still merges byte-identically
    (fault totals partition by where the traffic ran)."""
    plan = FaultPlan(faults=(FaultSpec(kind="link_down", target="c0.up",
                                       at=12_000.0, duration=4_000.0),),
                     seed=4)
    cfg = ClusterConfig(topology="star", nodes=4, servers=1, clients=4,
                        requests=3, seed=13)
    stats = _assert_equivalent("mvia", cfg, 8000.0, shards,
                               fault_plan=plan)
    assert stats["metrics"]["faults.link_down.injected"]["value"] > 0


def test_fast_forward_cell():
    """A fidelity=auto cell: flow-level fast-forward must stay gated by
    the shard horizon (``run_below`` pins ``_run_until``)."""
    cfg = ClusterConfig(topology="star", nodes=4, servers=1, clients=4,
                        requests=4, fidelity="auto", seed=11)
    _assert_equivalent("mvia", cfg, 4000.0, 2)


def test_process_transport_matches_inline():
    cfg = ClusterConfig(topology="star", nodes=4, servers=1, clients=4,
                        requests=3, seed=7)
    point, _ = _single("mvia", cfg, 8000.0)
    sharded, stats = run_cluster_once_sharded(
        "mvia", cfg, 8000.0, shards=3, workers="process")
    assert json.dumps(sharded, sort_keys=True) == \
        json.dumps(point, sort_keys=True)
    assert stats["shards"] == 3


@pytest.mark.parametrize("topology,nodes,servers", [
    ("star", 4, 1), ("dumbbell", 6, 2), ("fattree", 8, 2)])
def test_full_report_byte_identical(topology, nodes, servers):
    """The whole sweep report — knee included — compares byte for byte
    at every shard count, one topology per shape."""
    cfg = ClusterConfig(topology=topology, nodes=nodes, servers=servers,
                        clients=4, requests=3, seed=21)
    rates = (4000.0, 16000.0)
    base = run_cluster(("mvia",), cfg, rates=rates).to_json()
    for shards in (2, 3, 4):
        report = run_cluster(("mvia",), cfg, rates=rates, shards=shards,
                             shard_workers="inline")
        assert report.to_json() == base
        assert report.shard_stats  # observability rides outside the JSON
        assert "shards" in report.summary()


def test_merge_rejects_colliding_metrics():
    """Two shards publishing the same non-additive counter is an
    ownership bug and must raise, not last-write-win."""
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("nic.c0.tx_packets", 3)
    b.inc("nic.c0.tx_packets", 5)
    with pytest.raises(ValueError, match="colliding metric"):
        merge_registries([a, b])


def test_merge_sums_additive_totals():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("wire.switch.forwarded", 3)
    b.inc("wire.switch.forwarded", 5)
    a.inc("faults.link_down.injected", 1)
    b.inc("faults.link_down.injected", 2)
    merged = merge_registries([a, b])
    snap = merged.snapshot()
    assert snap["wire.switch.forwarded"]["value"] == 8
    assert snap["faults.link_down.injected"]["value"] == 3


def test_sharded_rejects_check_and_unsafe_faults():
    cfg = ClusterConfig(nodes=4, clients=4, requests=2, seed=1)
    with pytest.raises(ValueError, match="check"):
        run_cluster_once_sharded("mvia", cfg, 8000.0, shards=2, check=True)
    stochastic = FaultPlan(faults=(FaultSpec(kind="wire_loss", rate=0.25),),
                           seed=1)
    with pytest.raises(ValueError, match="not shard-safe"):
        run_cluster_once_sharded("mvia", cfg, 8000.0, shards=2,
                                 workers="inline", fault_plan=stochastic)
    with pytest.raises(ValueError, match="warm_start"):
        run_cluster(("mvia",), cfg, rates=(8000.0,), shards=2,
                    warm_start=True)
