"""Tests for the sockets-layer benchmark."""

import pytest

from repro.vibe import stream_throughput


def test_stream_delivers_and_reports(provider_name):
    res = stream_throughput(provider_name, chunks=(2048,),
                            total_bytes=50_000)
    bw = res.point(2048).bandwidth_mbs
    assert 0 < bw < 135


def test_chunking_has_interior_optimum():
    """Tiny chunks pay per-message overhead; chunks above the eager
    threshold fall off the rendezvous cliff."""
    res = stream_throughput("clan", chunks=(512, 4096, 16384),
                            total_bytes=100_000, eager_size=4096)
    small = res.point(512).bandwidth_mbs
    sweet = res.point(4096).bandwidth_mbs
    beyond = res.point(16384).bandwidth_mbs
    assert sweet > small
    assert sweet > 2 * beyond  # the rendezvous handshake is unpipelined


def test_stream_deterministic():
    a = stream_throughput("mvia", chunks=(1024,), total_bytes=30_000)
    b = stream_throughput("mvia", chunks=(1024,), total_bytes=30_000)
    assert a.point(1024).bandwidth_mbs == b.point(1024).bandwidth_mbs
