"""Conformance layer: clean runs, zero perturbation, report, CLI."""

import pytest

from repro.check import (
    ALL_PROVIDERS,
    WORKLOADS,
    logp_consistency,
    run_conformance,
    run_workload,
)
from repro.check.differential import compare_signatures
from repro.cli import main
from repro.providers import Testbed
from repro.vibe.harness import TransferConfig, run_bandwidth, run_latency


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("provider", ALL_PROVIDERS)
def test_workloads_pass_checker(provider, workload):
    """Every workload survives the online invariant checker."""
    sig = run_workload(provider, workload)
    posts, completions, deliveries = sig["checker"]
    assert posts > 0 and deliveries > 0
    # everything posted was completed exactly once by quiesce
    assert completions == posts


def test_cross_provider_signatures_agree():
    table = {"pingpong": {p: run_workload(p, "pingpong")
                          for p in ALL_PROVIDERS}}
    assert compare_signatures(table, ALL_PROVIDERS) == []


def test_run_conformance_report():
    rep = run_conformance(providers=("mvia", "iba"), logp=False)
    assert rep.ok
    assert set(rep.signatures) == set(WORKLOADS)
    text = rep.summary()
    assert "PASS" in text and "FAIL" not in text


def test_compare_signatures_spots_divergence():
    a = run_workload("mvia", "pingpong")
    b = dict(a)
    b["echo"] = "0" * 16
    mismatches = compare_signatures({"pingpong": {"mvia": a, "bvia": b}},
                                    ("mvia", "bvia"))
    assert len(mismatches) == 1 and "echo" in mismatches[0]


def test_logp_self_consistency():
    res = logp_consistency("clan")
    assert res["ok"], res
    assert res["G"] > 0


@pytest.mark.parametrize("provider", ALL_PROVIDERS)
def test_checker_does_not_perturb_results(provider):
    """A checked run must be bit-identical to an unchecked one: the
    checker only reads, never schedules or consumes simulated time."""
    lat = TransferConfig(size=512, iters=6, warmup=1)
    lat_chk = TransferConfig(size=512, iters=6, warmup=1, check=True)
    assert (run_latency(provider, lat_chk).latency_us
            == run_latency(provider, lat).latency_us)
    bw = TransferConfig(size=1024, count=30)
    bw_chk = TransferConfig(size=1024, count=30, check=True)
    assert (run_bandwidth(provider, bw_chk).bandwidth_mbs
            == run_bandwidth(provider, bw).bandwidth_mbs)


def test_checked_testbed_fixture(checked_testbed):
    tb = checked_testbed("mvia")
    assert tb.checker is not None
    assert tb.sim.checker is tb.checker
    plain = Testbed("mvia")
    assert plain.checker is None and plain.sim.checker is None


def test_cli_check_passes(capsys):
    main(["--providers", "mvia", "check", "--no-logp"])
    out = capsys.readouterr().out
    assert "PASS" in out


def test_cli_check_exits_nonzero_on_failure(monkeypatch, capsys):
    from repro.check.runner import CheckReport

    def fake(providers, seed=0, logp=True):
        rep = CheckReport(providers=tuple(providers),
                          workloads=("pingpong",))
        rep.violations.append("pingpong on mvia: seeded failure")
        return rep

    monkeypatch.setattr("repro.check.run_conformance", fake)
    with pytest.raises(SystemExit) as exc:
        main(["check"])
    assert exc.value.code == 1
    assert "FAIL" in capsys.readouterr().out
