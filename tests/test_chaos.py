"""The ``vibe chaos`` campaign machinery, run small and fast.

The full campaign (every scenario x every provider) lives in the CI
``chaos`` job; these tests cover the scenario registry, one real
recovery cell, the report plumbing, and the CLI wiring so the campaign
logic itself stays under the coverage floor.
"""

import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan
from repro.faults.chaos import ChaosReport, run_chaos, run_scenario
from repro.faults.scenarios import SCENARIOS, get_scenario, scenario_names
from repro.via.constants import Reliability


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------

def test_registry_has_at_least_six_named_scenarios():
    names = scenario_names()
    assert len(names) >= 6
    assert len(set(names)) == len(names)  # unique
    for name in names:
        assert get_scenario(name).name == name


def test_unknown_scenario_is_a_keyerror_listing_known_names():
    with pytest.raises(KeyError, match="blackout_reconnect"):
        get_scenario("nope")


def test_scenario_plans_are_seeded_and_serializable():
    for sc in SCENARIOS:
        plan = sc.plan(seed=3)
        assert isinstance(plan, FaultPlan)
        assert plan.seed == 3
        assert FaultPlan.from_json(plan.to_json()) == plan


def test_registry_covers_both_contracts():
    # at least one scenario promises only invariant-clean loss, and the
    # rest demand full delivery — both arms of the verdict logic run
    assert any(not sc.expect_delivery for sc in SCENARIOS)
    assert any(sc.expect_delivery for sc in SCENARIOS)
    # on the stream workload, not-expecting-delivery means the scenario
    # runs an unreliable level; overload cells judge goodput and SLOs
    # instead, so they sit outside this pairing
    unreliable = [sc for sc in SCENARIOS
                  if sc.workload == "stream" and not sc.expect_delivery]
    assert unreliable
    assert all(sc.reliability is Reliability.UNRELIABLE for sc in unreliable)


# ---------------------------------------------------------------------------
# Single cells
# ---------------------------------------------------------------------------

def test_blackout_cell_recovers_through_vi_error_path():
    """The canonical recovery scenario: the blackout exhausts the RTO
    budget, the VI lands in ERROR, and the endpoints drain / reset /
    reconnect / resend until everything is delivered."""
    sc = get_scenario("blackout_reconnect")
    r = run_scenario("mvia", sc, seed=0, quick=True)
    assert r.ok, (r.note, r.violations)
    assert r.delivered == r.expected
    assert r.recoveries >= 1
    assert r.recovery_latency_us > 0
    assert r.faults_injected >= 1


def test_unreliable_cell_passes_without_full_delivery():
    sc = get_scenario("unreliable_loss")
    r = run_scenario("clan", sc, seed=0, quick=True)
    assert r.ok
    assert not r.violations
    assert r.delivered <= r.expected


def test_cell_results_are_deterministic():
    sc = get_scenario("loss_burst")
    a = run_scenario("bvia", sc, seed=2, quick=True)
    b = run_scenario("bvia", sc, seed=2, quick=True)
    assert a.to_dict() == b.to_dict()


# ---------------------------------------------------------------------------
# Campaign + report plumbing
# ---------------------------------------------------------------------------

def test_run_chaos_report_summary_and_json():
    report = run_chaos(providers=("mvia",),
                       scenarios=("loss_burst", "unreliable_loss"),
                       quick=True)
    assert isinstance(report, ChaosReport)
    assert report.ok
    assert len(report.results) == 2
    text = report.summary()
    assert "loss_burst" in text and "unreliable_loss" in text
    assert text.endswith("PASS")
    payload = json.loads(report.to_json())
    assert payload["ok"] is True
    assert payload["providers"] == ["mvia"]
    assert {r["scenario"] for r in payload["results"]} == {
        "loss_burst", "unreliable_loss"}


def test_empty_report_is_not_ok():
    assert not ChaosReport(providers=(), scenarios=()).ok


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

def test_cli_chaos_quick_single_cell(tmp_path, capsys):
    out_path = tmp_path / "chaos.json"
    main(["--providers", "iba", "chaos", "--quick",
          "--scenario", "link_flap", "--json-out", str(out_path)])
    out = capsys.readouterr().out
    assert "link_flap" in out
    assert "PASS" in out
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is True
    assert payload["results"][0]["provider"] == "iba"


def test_cli_chaos_rejects_unknown_scenario():
    with pytest.raises(KeyError):
        main(["--providers", "mvia", "chaos", "--scenario", "nope"])
