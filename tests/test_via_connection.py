"""Unit tests for the connection manager and name service."""

import pytest

from repro.sim import Simulator
from repro.via import Reliability, VipConnectionError
from repro.via.connection import ConnectionManager, ConnRequest
from repro.via.nameservice import NameService


def make_req(mgr, disc=5):
    return ConnRequest(conn_id=mgr.new_request_id(), client_node="c",
                       client_vi_id=1, discriminator=disc,
                       reliability=Reliability.UNRELIABLE)


def test_waiter_gets_request():
    sim = Simulator()
    mgr = ConnectionManager(sim)
    ev = mgr.wait_for(5)
    req = make_req(mgr, 5)
    mgr.deliver(req)
    sim.run()
    assert ev.value is req


def test_request_parked_until_waiter_arrives():
    sim = Simulator()
    mgr = ConnectionManager(sim)
    req = make_req(mgr, 7)
    mgr.deliver(req)
    ev = mgr.wait_for(7)
    sim.run()
    assert ev.value is req


def test_discriminators_are_independent():
    sim = Simulator()
    mgr = ConnectionManager(sim)
    ev5 = mgr.wait_for(5)
    ev6 = mgr.wait_for(6)
    req6 = make_req(mgr, 6)
    mgr.deliver(req6)
    sim.run()
    assert ev6.value is req6
    assert not ev5.triggered


def test_multiple_waiters_fifo():
    sim = Simulator()
    mgr = ConnectionManager(sim)
    ev1 = mgr.wait_for(5)
    ev2 = mgr.wait_for(5)
    r1, r2 = make_req(mgr, 5), make_req(mgr, 5)
    mgr.deliver(r1)
    mgr.deliver(r2)
    sim.run()
    assert ev1.value is r1 and ev2.value is r2


def test_track_resolve():
    sim = Simulator()
    mgr = ConnectionManager(sim)
    conn_id = mgr.new_request_id()
    ev = mgr.track(conn_id)
    mgr.resolve(conn_id, "server", 42)
    sim.run()
    assert ev.value == ("server", 42)


def test_track_reject_fails_event():
    sim = Simulator()
    mgr = ConnectionManager(sim)
    conn_id = mgr.new_request_id()
    ev = mgr.track(conn_id)
    got = []

    def waiter():
        try:
            yield ev
        except VipConnectionError as exc:
            got.append(str(exc))

    proc = sim.process(waiter())
    mgr.reject(conn_id, "nope")
    sim.run(proc)
    assert got == ["nope"]


def test_forget_then_late_resolve_is_noop():
    sim = Simulator()
    mgr = ConnectionManager(sim)
    conn_id = mgr.new_request_id()
    mgr.track(conn_id)
    mgr.forget(conn_id)
    mgr.resolve(conn_id, "server", 1)  # no crash, nothing tracked
    mgr.reject(conn_id, "late")
    sim.run()


def test_nameservice_roundtrip():
    ns = NameService()
    ns.register("hostA", "node0")
    ns.register("hostA", "node0")  # idempotent re-register
    assert ns.resolve("hostA") == "node0"
    assert ns.hosts() == ("hostA",)
    with pytest.raises(VipConnectionError):
        ns.resolve("missing")
    with pytest.raises(VipConnectionError):
        ns.register("hostA", "other")
