"""Determinism guarantees of the kernel fast paths and the parallel
executor.

Three layers of protection:

1. golden values — ``base_latency``/``base_bandwidth`` for all three
   providers pinned to the exact floats the seed kernel produced, so any
   kernel "optimisation" that perturbs event ordering (and therefore the
   simulated clock) fails loudly;
2. ``jobs=1`` vs ``jobs=4`` — the process-pool fan-out must return
   byte-identical ``BenchResult``s (each task is a self-contained
   simulation; collection preserves task order);
3. property tests for :func:`repro.vibe.harness.reuse_schedule` at the
   boundary fractions the Bresenham spreading must get exactly right.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vibe.base_transfer import base_bandwidth, base_latency
from repro.vibe.harness import reuse_schedule
from repro.vibe.suite import run_all

GOLDEN_SIZES = [4, 1024, 8192]

#: (size, latency_us, cpu_send, cpu_recv) — exact, from the seed kernel
GOLDEN_LATENCY = {
    "mvia": [
        (4, 25.62949494949716, 0.9999999999999764, 0.9999999999999586),
        (1024, 80.07070707070382, 1.0000000000000264, 1.000000000000027),
        (8192, 341.7346868686803, 1.0000000000000075, 1.000000000000008),
    ],
    "bvia": [
        (4, 31.32881287878803, 0.9999999999999972, 0.9999999999999974),
        (1024, 53.164733333333714, 0.9999999999999991, 0.9999999999999993),
        (8192, 207.61559393939362, 1.0000000000000002, 1.0000000000000002),
    ],
    "clan": [
        (4, 8.138049783550523, 0.9999999999999241, 0.9999999999999246),
        (1024, 32.70884523809632, 0.9999999999999795, 0.9999999999999795),
        (8192, 205.6789058441534, 1.0000000000000038, 1.0000000000000036),
    ],
}

#: (size, bandwidth_mbs) — exact, from the seed kernel
GOLDEN_BANDWIDTH = {
    "mvia": [
        (4, 0.6726948734194751),
        (1024, 58.05384251085662),
        (8192, 66.12358018932524),
    ],
    "bvia": [
        (4, 0.2675530977808194),
        (1024, 44.921839914354166),
        (8192, 104.36309504379696),
    ],
    "clan": [
        (4, 1.30520508855993),
        (1024, 93.66749307270561),
        (8192, 109.92535070203395),
    ],
}


@pytest.mark.parametrize("provider", sorted(GOLDEN_LATENCY))
def test_golden_base_latency(provider):
    """Exact equality on purpose: the kernel's determinism contract says
    optimisations must not move a single event, hence not a single ULP."""
    result = base_latency(provider, sizes=GOLDEN_SIZES)
    got = [(m.param, m.latency_us, m.cpu_send, m.cpu_recv)
           for m in result.points]
    assert got == GOLDEN_LATENCY[provider]


@pytest.mark.parametrize("provider", sorted(GOLDEN_BANDWIDTH))
def test_golden_base_bandwidth(provider):
    result = base_bandwidth(provider, sizes=GOLDEN_SIZES)
    got = [(m.param, m.bandwidth_mbs) for m in result.points]
    assert got == GOLDEN_BANDWIDTH[provider]


@pytest.mark.parametrize("provider", ("mvia", "bvia", "clan"))
def test_jobs_byte_identical_latency(provider):
    serial = base_latency(provider, sizes=GOLDEN_SIZES, jobs=1)
    fanned = base_latency(provider, sizes=GOLDEN_SIZES, jobs=4)
    # dataclass repr spells out every field with full float precision,
    # so equal reprs means byte-identical results
    assert repr(serial) == repr(fanned)


@pytest.mark.parametrize("provider", ("mvia", "bvia", "clan"))
def test_jobs_byte_identical_bandwidth(provider):
    serial = base_bandwidth(provider, sizes=GOLDEN_SIZES, jobs=1)
    fanned = base_bandwidth(provider, sizes=GOLDEN_SIZES, jobs=4)
    assert repr(serial) == repr(fanned)


def test_run_all_jobs_byte_identical():
    names = ["base_latency", "base_bandwidth"]
    serial = run_all(providers=("mvia", "clan"), benchmarks=names,
                     sizes=[4, 1024], jobs=1)
    fanned = run_all(providers=("mvia", "clan"), benchmarks=names,
                     sizes=[4, 1024], jobs=4)
    assert repr(serial) == repr(fanned)


# ---------------------------------------------------------------------------
# reuse_schedule boundary properties


@given(iters=st.integers(0, 300), pool=st.integers(1, 32))
@settings(max_examples=60, deadline=None)
def test_reuse_schedule_full_reuse_always_buffer_zero(iters, pool):
    """fraction=1.0: every iteration must hit the reused buffer."""
    assert reuse_schedule(iters, 1.0, pool) == [0] * iters


@given(iters=st.integers(0, 300), pool=st.integers(2, 32))
@settings(max_examples=60, deadline=None)
def test_reuse_schedule_zero_reuse_never_buffer_zero(iters, pool):
    """fraction=0.0 with a real pool: buffer 0 is never reused."""
    schedule = reuse_schedule(iters, 0.0, pool)
    assert len(schedule) == iters
    assert all(1 <= idx < pool for idx in schedule)


@given(iters=st.integers(0, 300),
       fraction=st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_reuse_schedule_pool_of_one_is_all_zero(iters, fraction):
    """pool=1: there is only one buffer, whatever the fraction."""
    assert reuse_schedule(iters, fraction, 1) == [0] * iters


@given(iters=st.integers(1, 300),
       fraction=st.floats(0.0, 1.0, allow_nan=False),
       pool=st.integers(1, 32))
@settings(max_examples=60, deadline=None)
def test_reuse_schedule_hit_count_matches_fraction(iters, fraction, pool):
    """The number of reuse hits tracks ``fraction * iters`` to within
    one (Bresenham spreading), and indices stay within the pool."""
    schedule = reuse_schedule(iters, fraction, pool)
    assert len(schedule) == iters
    assert all(0 <= idx < pool for idx in schedule)
    if pool > 1:
        hits = schedule.count(0)
        assert abs(hits - fraction * iters) <= 1.0


def test_reuse_schedule_rejects_bad_arguments():
    with pytest.raises(ValueError):
        reuse_schedule(10, -0.1, 4)
    with pytest.raises(ValueError):
        reuse_schedule(10, 1.1, 4)
    with pytest.raises(ValueError):
        reuse_schedule(10, 0.5, 0)


# ---------------------------------------------------------------------------
# observability exports: the profiled ping-pong's trace and metrics
# files must be byte-identical across --jobs values and repeated runs
# (the id counters it resets are the only process-global state)

_PROFILE_PROVIDERS = ("mvia", "bvia", "clan", "iba")


def _profile_exports(jobs):
    from repro.obs.profile import (combined_metrics_json,
                                   combined_trace_json, profile_transfer)
    from repro.vibe.executor import parallel_map

    profiles = parallel_map(profile_transfer,
                            [(p, 256, 0) for p in _PROFILE_PROVIDERS], jobs)
    return combined_trace_json(profiles), combined_metrics_json(profiles)


def test_profile_exports_byte_identical_across_jobs():
    assert _profile_exports(jobs=1) == _profile_exports(jobs=4)


def test_profile_exports_byte_identical_across_repeats():
    first = _profile_exports(jobs=1)
    second = _profile_exports(jobs=1)
    assert first == second


def test_run_benchmark_meta_is_jobs_invariant():
    """The metadata stamped onto BenchResults carries no wall-clock
    state, so fanned-out results stay repr-identical to serial ones."""
    from repro.vibe.suite import run_benchmark

    serial = run_benchmark("base_latency", "clan", sizes=[4, 1024], jobs=1)
    fanned = run_benchmark("base_latency", "clan", sizes=[4, 1024], jobs=4)
    assert serial.meta["provider"] == "clan"
    assert serial.meta["params"]["benchmark"] == "base_latency"
    assert repr(serial) == repr(fanned)


def test_parallel_map_empty_task_list_returns_empty():
    """Regression: an empty task list must short-circuit to [] at every
    --jobs value instead of ever reaching the pool machinery."""
    from repro.vibe.executor import parallel_map

    for jobs in (1, 2, -1):
        assert parallel_map(len, [], jobs=jobs) == []
