"""Unit tests for the host CPU / rusage model."""

import pytest

from repro.hw.cpu import HostCPU, Rusage
from repro.sim import Simulator

from conftest import run_proc


def test_busy_charges_user_time():
    sim = Simulator()
    cpu = HostCPU(sim)
    actor = cpu.actor("a")

    def body():
        yield from actor.busy(5.0)
        yield from actor.busy(2.0, "sys")

    run_proc(sim, body())
    assert actor.rusage.utime == 5.0
    assert actor.rusage.stime == 2.0
    assert actor.rusage.total == 7.0
    assert sim.now == 7.0


def test_busy_zero_is_free():
    sim = Simulator()
    actor = HostCPU(sim).actor("a")

    def body():
        yield from actor.busy(0.0)

    run_proc(sim, body())
    assert sim.now == 0.0 and actor.rusage.total == 0.0


def test_busy_rejects_negative_and_bad_kind():
    sim = Simulator()
    actor = HostCPU(sim).actor("a")
    with pytest.raises(ValueError):
        actor.charge(-1.0)
    with pytest.raises(ValueError):
        actor.charge(1.0, "weird")

    def body():
        yield from actor.busy(-1.0)

    with pytest.raises(ValueError):
        run_proc(sim, body())


def test_copy_cost_scales_with_bytes():
    sim = Simulator()
    cpu = HostCPU(sim, mem_copy_bw=100.0)
    actor = cpu.actor("a")
    assert cpu.copy_cost(1000) == pytest.approx(10.0)

    def body():
        yield from actor.copy(500)

    run_proc(sim, body())
    assert sim.now == pytest.approx(5.0)
    assert actor.rusage.stime == pytest.approx(5.0)


def test_spin_wait_charges_wall_time():
    sim = Simulator()
    cpu = HostCPU(sim)
    actor = cpu.actor("a")
    ev = sim.event()

    def trigger():
        yield sim.timeout(8.0)
        ev.succeed("v")

    def body():
        value = yield from actor.spin_wait(ev)
        return value

    sim.process(trigger())
    assert run_proc(sim, body()) == "v"
    assert actor.rusage.utime == pytest.approx(8.0)


def test_block_wait_is_idle_plus_wakeup():
    sim = Simulator()
    cpu = HostCPU(sim)
    actor = cpu.actor("a")
    ev = sim.event()

    def trigger():
        yield sim.timeout(8.0)
        ev.succeed(None)

    def body():
        yield from actor.block_wait(ev, wakeup_cost=3.0, delay=2.0)

    sim.process(trigger())
    run_proc(sim, body())
    assert sim.now == pytest.approx(13.0)   # 8 wait + 2 delay + 3 handler
    assert actor.rusage.stime == pytest.approx(3.0)
    assert actor.rusage.utime == 0.0


def test_two_actors_contend_for_one_cpu():
    sim = Simulator()
    cpu = HostCPU(sim)
    a, b = cpu.actor("a"), cpu.actor("b")
    done = []

    def body(actor, name):
        yield from actor.busy(4.0)
        done.append((name, sim.now))

    sim.process(body(a, "a"))
    sim.process(body(b, "b"))
    sim.run()
    assert done == [("a", 4.0), ("b", 8.0)]


def test_spinner_holds_cpu_against_other_actor():
    sim = Simulator()
    cpu = HostCPU(sim)
    a, b = cpu.actor("spin"), cpu.actor("work")
    ev = sim.event()
    done = []

    def spinner():
        yield from a.spin_wait(ev)
        done.append(("spin", sim.now))

    def trigger():
        yield sim.timeout(5.0)
        ev.succeed(None)

    def worker():
        yield sim.timeout(1.0)       # arrives while spinner holds the CPU
        yield from b.busy(2.0)
        done.append(("work", sim.now))

    sim.process(spinner())
    sim.process(trigger())
    sim.process(worker())
    sim.run()
    assert done == [("spin", 5.0), ("work", 7.0)]


def test_actor_identity_and_snapshot():
    sim = Simulator()
    cpu = HostCPU(sim)
    assert cpu.actor("x") is cpu.actor("x")
    actor = cpu.actor("x")
    actor.charge(4.0)
    snap = actor.snapshot()
    actor.charge(1.0)
    delta = actor.rusage - snap
    assert delta.utime == 1.0
    assert isinstance(snap, Rusage)


def test_bad_copy_bandwidth_rejected():
    with pytest.raises(ValueError):
        HostCPU(Simulator(), mem_copy_bw=0.0)
