"""Unit tests for the host CPU / rusage model."""

import pytest

from repro.hw.cpu import HostCPU, Rusage
from repro.sim import Interrupt, Simulator

from conftest import run_proc


def test_busy_charges_user_time():
    sim = Simulator()
    cpu = HostCPU(sim)
    actor = cpu.actor("a")

    def body():
        yield from actor.busy(5.0)
        yield from actor.busy(2.0, "sys")

    run_proc(sim, body())
    assert actor.rusage.utime == 5.0
    assert actor.rusage.stime == 2.0
    assert actor.rusage.total == 7.0
    assert sim.now == 7.0


def test_busy_zero_is_free():
    sim = Simulator()
    actor = HostCPU(sim).actor("a")

    def body():
        yield from actor.busy(0.0)

    run_proc(sim, body())
    assert sim.now == 0.0 and actor.rusage.total == 0.0


def test_busy_rejects_negative_and_bad_kind():
    sim = Simulator()
    actor = HostCPU(sim).actor("a")
    with pytest.raises(ValueError):
        actor.charge(-1.0)
    with pytest.raises(ValueError):
        actor.charge(1.0, "weird")

    def body():
        yield from actor.busy(-1.0)

    with pytest.raises(ValueError):
        run_proc(sim, body())


def test_copy_cost_scales_with_bytes():
    sim = Simulator()
    cpu = HostCPU(sim, mem_copy_bw=100.0)
    actor = cpu.actor("a")
    assert cpu.copy_cost(1000) == pytest.approx(10.0)

    def body():
        yield from actor.copy(500)

    run_proc(sim, body())
    assert sim.now == pytest.approx(5.0)
    assert actor.rusage.stime == pytest.approx(5.0)


def test_spin_wait_charges_wall_time():
    sim = Simulator()
    cpu = HostCPU(sim)
    actor = cpu.actor("a")
    ev = sim.event()

    def trigger():
        yield sim.timeout(8.0)
        ev.succeed("v")

    def body():
        value = yield from actor.spin_wait(ev)
        return value

    sim.process(trigger())
    assert run_proc(sim, body()) == "v"
    assert actor.rusage.utime == pytest.approx(8.0)


def test_block_wait_is_idle_plus_wakeup():
    sim = Simulator()
    cpu = HostCPU(sim)
    actor = cpu.actor("a")
    ev = sim.event()

    def trigger():
        yield sim.timeout(8.0)
        ev.succeed(None)

    def body():
        yield from actor.block_wait(ev, wakeup_cost=3.0, delay=2.0)

    sim.process(trigger())
    run_proc(sim, body())
    assert sim.now == pytest.approx(13.0)   # 8 wait + 2 delay + 3 handler
    assert actor.rusage.stime == pytest.approx(3.0)
    assert actor.rusage.utime == 0.0


def test_two_actors_contend_for_one_cpu():
    sim = Simulator()
    cpu = HostCPU(sim)
    a, b = cpu.actor("a"), cpu.actor("b")
    done = []

    def body(actor, name):
        yield from actor.busy(4.0)
        done.append((name, sim.now))

    sim.process(body(a, "a"))
    sim.process(body(b, "b"))
    sim.run()
    assert done == [("a", 4.0), ("b", 8.0)]


def test_spinner_holds_cpu_against_other_actor():
    sim = Simulator()
    cpu = HostCPU(sim)
    a, b = cpu.actor("spin"), cpu.actor("work")
    ev = sim.event()
    done = []

    def spinner():
        yield from a.spin_wait(ev)
        done.append(("spin", sim.now))

    def trigger():
        yield sim.timeout(5.0)
        ev.succeed(None)

    def worker():
        yield sim.timeout(1.0)       # arrives while spinner holds the CPU
        yield from b.busy(2.0)
        done.append(("work", sim.now))

    sim.process(spinner())
    sim.process(trigger())
    sim.process(worker())
    sim.run()
    assert done == [("spin", 5.0), ("work", 7.0)]


def test_actor_identity_and_snapshot():
    sim = Simulator()
    cpu = HostCPU(sim)
    assert cpu.actor("x") is cpu.actor("x")
    actor = cpu.actor("x")
    actor.charge(4.0)
    snap = actor.snapshot()
    actor.charge(1.0)
    delta = actor.rusage - snap
    assert delta.utime == 1.0
    assert isinstance(snap, Rusage)


def test_bad_copy_bandwidth_rejected():
    with pytest.raises(ValueError):
        HostCPU(Simulator(), mem_copy_bw=0.0)


def test_spin_wait_failure_releases_cpu_and_charges_time():
    """A failing event mid-spin must free the CPU and bill the spin."""
    sim = Simulator()
    cpu = HostCPU(sim)
    actor = cpu.actor("a")
    ev = sim.event()
    caught = []

    def failer():
        yield sim.timeout(6.0)
        ev.fail(RuntimeError("nic died"))

    def spinner():
        try:
            yield from actor.spin_wait(ev)
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(failer())
    sim.process(spinner())
    sim.run()
    assert caught == ["nic died"]
    assert actor.rusage.utime == pytest.approx(6.0)   # spin until failure
    assert cpu.resource.in_use == 0                   # CPU released
    assert cpu.resource.queued == 0

    # the CPU must be immediately reusable after the failed spin
    def after():
        yield from actor.busy(2.0)

    run_proc(sim, after())
    assert cpu.resource.in_use == 0


def test_spin_wait_interrupt_while_queued_leaves_no_stale_request():
    """Interrupting an actor still queued for the CPU must not leak the
    slot: the dangling request used to be granted to nobody, wedging the
    resource forever."""
    sim = Simulator()
    cpu = HostCPU(sim)
    holder, spinner = cpu.actor("hold"), cpu.actor("spin")
    ev = sim.event()
    caught = []

    def hold_body():
        yield from holder.busy(10.0)

    def spin_body():
        try:
            yield from spinner.spin_wait(ev)
        except Interrupt as exc:
            caught.append(type(exc).__name__)

    sim.process(hold_body())
    proc = sim.process(spin_body())

    def interrupter():
        yield sim.timeout(3.0)      # spinner is queued behind the holder
        proc.interrupt(RuntimeError("give up"))

    sim.process(interrupter())
    sim.run()
    assert caught == ["Interrupt"]
    assert cpu.resource.in_use == 0
    assert cpu.resource.queued == 0
    assert spinner.rusage.total == 0.0   # never got the CPU: nothing billed


def test_busy_interrupt_while_queued_leaves_no_stale_request():
    sim = Simulator()
    cpu = HostCPU(sim)
    holder, worker = cpu.actor("hold"), cpu.actor("work")
    caught = []

    def hold_body():
        yield from holder.busy(10.0)

    def work_body():
        try:
            yield from worker.busy(5.0)
        except Interrupt as exc:
            caught.append(type(exc).__name__)

    sim.process(hold_body())
    proc = sim.process(work_body())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt(RuntimeError("cancelled"))

    sim.process(interrupter())
    sim.run()
    assert caught == ["Interrupt"]
    assert cpu.resource.in_use == 0
    assert cpu.resource.queued == 0
