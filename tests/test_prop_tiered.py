"""Property-based tests for the tiered fabric: any topology delivers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import GIGANET, Packet, TieredFabric
from repro.sim import Simulator

from conftest import run_proc


@st.composite
def topology(draw):
    nleaves = draw(st.integers(min_value=2, max_value=4))
    groups = []
    idx = 0
    for _l in range(nleaves):
        size = draw(st.integers(min_value=1, max_value=3))
        groups.append(tuple(f"n{idx + k}" for k in range(size)))
        idx += size
    # a set of (src, dst) messages between distinct nodes
    names = [n for g in groups for n in g]
    nmsgs = draw(st.integers(min_value=1, max_value=10))
    msgs = []
    for _ in range(nmsgs):
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from([n for n in names if n != a]))
        msgs.append((a, b))
    return tuple(groups), msgs


@given(topology())
@settings(max_examples=30, deadline=None)
def test_every_packet_reaches_its_destination(topo):
    groups, msgs = topo
    sim = Simulator()
    fab = TieredFabric(sim, GIGANET, groups)
    got: dict[str, list] = {n: [] for n in fab.node_names}
    for name in fab.node_names:
        fab.node(name).nic.rx_handler = \
            (lambda n: lambda p: got[n].append(p.payload))(name)

    def sender(a, b, tag):
        yield from fab.node(a).nic.transmit(Packet(a, b, "d", 32, tag))

    for i, (a, b) in enumerate(msgs):
        sim.process(sender(a, b, (a, b, i)))
    sim.run()

    expected: dict[str, list] = {n: [] for n in fab.node_names}
    for i, (a, b) in enumerate(msgs):
        expected[b].append((a, b, i))
    for node in fab.node_names:
        assert sorted(got[node]) == sorted(expected[node])
    # conservation: spine forwards exactly the inter-leaf messages
    inter = sum(1 for a, b in msgs if not fab.same_leaf(a, b))
    assert fab.spine.forwarded == inter
