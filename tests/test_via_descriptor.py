"""Unit tests for VIA descriptors."""

import pytest

from repro.via import (
    CompletionStatus,
    DataSegment,
    Descriptor,
    DescriptorOp,
    VipDescriptorError,
    VipInvalidParameter,
)
from repro.via.memory import MemoryHandle


def fake_handle(addr=0x1000, length=4096):
    return MemoryHandle(handle_id=1, address=addr, length=length, tag=7,
                        pages=[0])


def seg(addr=0x1000, length=64):
    return DataSegment(addr, length, fake_handle())


def test_send_constructor():
    d = Descriptor.send([seg()])
    assert d.op is DescriptorOp.SEND
    assert d.total_length == 64
    assert d.status is CompletionStatus.PENDING
    assert not d.is_complete


def test_recv_constructor():
    d = Descriptor.recv([seg(length=10), seg(length=20)])
    assert d.op is DescriptorOp.RECEIVE
    assert d.total_length == 30


def test_rdma_constructors():
    w = Descriptor.rdma_write([seg()], remote_address=0x2000,
                              remote_handle_id=9, immediate=5)
    assert w.address_segment.address == 0x2000
    assert w.control.immediate == 5
    r = Descriptor.rdma_read([seg()], 0x2000, 9)
    assert r.op is DescriptorOp.RDMA_READ


def test_segment_validation():
    with pytest.raises(VipInvalidParameter):
        DataSegment(-1, 10, fake_handle())
    with pytest.raises(VipInvalidParameter):
        DataSegment(0x1000, -5, fake_handle())


def test_validate_rejects_double_post():
    d = Descriptor.send([seg()])
    d.posted = True
    with pytest.raises(VipDescriptorError, match="already posted"):
        d.validate(16, 1 << 20)


def test_validate_segment_limit():
    d = Descriptor.send([seg() for _ in range(5)])
    with pytest.raises(VipDescriptorError, match="segments"):
        d.validate(4, 1 << 20)
    d.validate(5, 1 << 20)  # at the limit is fine


def test_validate_max_transfer_size():
    d = Descriptor.send([seg(length=2000)])
    with pytest.raises(VipDescriptorError, match="maximum transfer"):
        d.validate(16, 1999)


def test_validate_address_segment_rules():
    plain = Descriptor.send([seg()])
    plain.address_segment = Descriptor.rdma_write(
        [seg()], 0x0, 1).address_segment
    with pytest.raises(VipDescriptorError, match="must not carry"):
        plain.validate(16, 1 << 20)

    rdma = Descriptor.rdma_write([seg()], 0x2000, 9)
    rdma.address_segment = None
    with pytest.raises(VipDescriptorError, match="requires an address"):
        rdma.validate(16, 1 << 20)


def test_rdma_read_rejects_immediate():
    d = Descriptor.rdma_read([seg()], 0x2000, 9)
    d.control.immediate = 3
    with pytest.raises(VipDescriptorError, match="immediate"):
        d.validate(16, 1 << 20)


def test_immediate_only_send_is_legal():
    d = Descriptor.send([], immediate=0xDEAD)
    d.validate(16, 1 << 20)
    assert d.total_length == 0


def test_reset_rearms():
    d = Descriptor.send([seg()])
    d.control.status = CompletionStatus.SUCCESS
    d.control.length = 64
    d.completed_at = 12.5
    d.reset()
    assert d.status is CompletionStatus.PENDING
    assert d.control.length == 0
    assert d.completed_at is None


def test_reset_rejected_while_posted():
    d = Descriptor.send([seg()])
    d.posted = True
    with pytest.raises(VipDescriptorError):
        d.reset()


def test_desc_ids_unique():
    ids = {Descriptor.send([]).desc_id for _ in range(100)}
    assert len(ids) == 100
