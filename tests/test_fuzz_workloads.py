"""Workload fuzzing under the conformance checker.

Hypothesis generates random *valid* benchmark programs — message
sizes, windows, segment splits, buffer-reuse mixes, reliability
levels, wait modes, loss rates — and runs them on every provider with
the invariant checker attached.  ``VipError`` is legitimate VIA
semantics and is tolerated; a :class:`ConformanceError` (or any
simulator crash) is a stack bug and propagates.

Lossy draws use a self-contained stream program that establishes the
connection on a lossless wire first, so every draw exercises the data
path rather than occasionally burning its budget on handshake
retransmissions.  The data phase then runs lossy under a reliable
level, and the received payload sequence is checked for exactly-once
in-order delivery on top of the invariant hooks.

The fault-plan draws go further: a random :class:`FaultPlan` (wire
loss/corruption/duplication/reordering, link flaps, doorbell drops,
DMA aborts, TLB storms, CPU stalls and jitter) is armed from t=0 —
handshake included, which the retransmission machinery must survive.
Whatever subset of messages gets through must still be an exact
in-order prefix of what was sent.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import ALL_PROVIDERS
from repro.faults import FaultPlan, FaultSpec
from repro.providers import Testbed
from repro.via import Descriptor
from repro.via.constants import CompletionStatus, Reliability, WaitMode
from repro.via.errors import VipError, VipTimeout
from repro.vibe.harness import TransferConfig, run_latency

from conftest import run_pair, set_wire_loss

_RELIABLE = (Reliability.RELIABLE_DELIVERY, Reliability.RELIABLE_RECEPTION)


def _payload(i: int, size: int) -> bytes:
    return bytes((i + j) % 256 for j in range(size))


@st.composite
def latency_config(draw):
    provider = draw(st.sampled_from(ALL_PROVIDERS))
    cfg = TransferConfig(
        size=draw(st.integers(min_value=1, max_value=8192)),
        iters=draw(st.integers(min_value=1, max_value=5)),
        warmup=1,
        mode=draw(st.sampled_from([WaitMode.POLL, WaitMode.BLOCK])),
        reliability=draw(st.sampled_from((None,) + _RELIABLE
                                         + (Reliability.UNRELIABLE,))),
        use_recv_cq=draw(st.booleans()),
        use_send_cq=draw(st.booleans()),
        buffer_pool=draw(st.integers(min_value=1, max_value=3)),
        reuse_fraction=draw(st.sampled_from([0.0, 0.5, 1.0])),
        segments=draw(st.integers(min_value=1, max_value=3)),
        check=True,
    )
    return provider, cfg, draw(st.integers(min_value=0, max_value=3))


@st.composite
def lossy_stream_case(draw):
    return {
        "provider": draw(st.sampled_from(ALL_PROVIDERS)),
        "size": draw(st.integers(min_value=1, max_value=4096)),
        "count": draw(st.integers(min_value=1, max_value=10)),
        "window": draw(st.integers(min_value=1, max_value=4)),
        "level": draw(st.sampled_from(_RELIABLE)),
        "loss": draw(st.sampled_from([0.02, 0.05, 0.1])),
        "seed": draw(st.integers(min_value=0, max_value=3)),
    }


def run_lossy_stream(provider, size, count, window, level, loss, seed,
                     deadline=50_000.0):
    """Checked windowed stream: lossless handshake, lossy data phase.

    Returns (payload digests the server received in order, number the
    client believes it delivered).
    """
    tb = Testbed(provider, seed=seed, loss_rate=loss, check=True)
    set_wire_loss(tb, 0.0)
    ep: dict = {}

    def c_setup():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi(reliability=level)
        bufs = []
        for _ in range(window):
            buf = h.alloc(max(size, 4))
            mh = yield from h.register_mem(buf)
            bufs.append((buf, mh))
        yield from h.connect(vi, tb.node_names[1], 31)
        ep["c"] = (h, vi, bufs)

    def s_setup():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi(reliability=level)
        pool = []
        for _ in range(count):
            buf = h.alloc(max(size, 4))
            mh = yield from h.register_mem(buf)
            pool.append((buf, mh))
            yield from h.post_recv(
                vi, Descriptor.recv([h.segment(buf, mh, 0, size)]))
        req = yield from h.connect_wait(31)
        yield from h.accept(req, vi)
        ep["s"] = (h, vi, pool)

    run_pair(tb, c_setup(), s_setup())
    set_wire_loss(tb, loss)
    sent_ok = {"n": 0}
    got: list = []

    def c_data():
        h, vi, bufs = ep["c"]
        inflight = 0
        for i in range(count):
            if inflight >= window:
                # a reliable send completes only on acknowledgement,
                # so the i % window buffer is free again here
                try:
                    desc = yield from h.send_wait(vi, timeout=deadline)
                except VipTimeout:
                    return
                inflight -= 1
                if desc.status is not CompletionStatus.SUCCESS:
                    return
                sent_ok["n"] += 1
            buf, mh = bufs[i % window]
            h.write(buf, _payload(i, size))
            segs = [h.segment(buf, mh, 0, size)]
            yield from h.post_send(vi, Descriptor.send(segs))
            inflight += 1
        while inflight:
            try:
                desc = yield from h.send_wait(vi, timeout=deadline)
            except VipTimeout:
                return
            inflight -= 1
            if desc.status is CompletionStatus.SUCCESS:
                sent_ok["n"] += 1

    def s_data():
        h, vi, pool = ep["s"]
        for i in range(count):
            try:
                desc = yield from h.recv_wait(vi, timeout=deadline)
            except VipTimeout:
                return
            if desc.status is not CompletionStatus.SUCCESS:
                return
            buf, _mh = pool[i]
            got.append(hashlib.sha256(h.read(buf, size)).hexdigest())

    run_pair(tb, c_data(), s_data())
    tb.run()
    tb.checker.check_quiesced(tb)
    return got, sent_ok["n"]


@given(latency_config())
@settings(max_examples=15, deadline=None)
def test_fuzzed_pingpong_conforms(case):
    provider, cfg, seed = case
    try:
        m = run_latency(provider, cfg, seed=seed)
        assert m.latency_us > 0
    except VipError:
        pass          # legitimate VIA semantics, not a conformance bug


@given(lossy_stream_case())
@settings(max_examples=10, deadline=None)
def test_fuzzed_lossy_stream_delivers_exactly_once_in_order(case):
    got, _sent_ok = run_lossy_stream(**case)
    expected = [
        hashlib.sha256(_payload(i, case["size"])).hexdigest()
        for i in range(case["count"])
    ]
    # a reliable stream the server saw must be an exact in-order prefix
    # of what the client sent: no loss surfaced, no dup, no reorder
    assert got == expected[:len(got)]


# ---------------------------------------------------------------------------
# Random fault plans
# ---------------------------------------------------------------------------

@st.composite
def random_fault_spec(draw):
    kind = draw(st.sampled_from([
        "wire_loss", "wire_corrupt", "wire_duplicate", "wire_reorder",
        "link_down", "partition", "doorbell_drop", "dma_abort",
        "tlb_flush", "cpu_stall", "cpu_jitter",
    ]))
    kwargs = {
        "kind": kind,
        "at": draw(st.sampled_from([0.0, 50.0, 300.0, 1500.0])),
        "target": draw(st.sampled_from(
            [None, "node0", "node1", "node0.up", "node1.up"])),
        "rate": draw(st.sampled_from([0.05, 0.2, 0.5, 1.0])),
    }
    if kind in ("link_down", "partition"):
        # keep outages finite so a blacked-out stream can still finish
        kwargs["duration"] = draw(st.sampled_from([100.0, 800.0]))
    else:
        kwargs["duration"] = draw(st.sampled_from([None, 200.0, 2000.0]))
    if kind == "wire_reorder":
        kwargs["magnitude"] = draw(st.sampled_from([5.0, 25.0]))
    elif kind == "cpu_jitter":
        kwargs["magnitude"] = draw(st.sampled_from([0.5, 2.0]))
    elif kind == "cpu_stall":
        kwargs["duration"] = draw(st.sampled_from([200.0, 1500.0]))
    elif kind == "tlb_flush":
        kwargs["count"] = draw(st.integers(min_value=1, max_value=5))
        kwargs["period"] = 50.0
    return FaultSpec(**kwargs)


@st.composite
def fault_plan_case(draw):
    return {
        "provider": draw(st.sampled_from(ALL_PROVIDERS)),
        "level": draw(st.sampled_from(_RELIABLE)),
        "plan": FaultPlan(
            name="fuzz",
            seed=draw(st.integers(min_value=0, max_value=5)),
            faults=tuple(draw(st.lists(random_fault_spec(),
                                       min_size=1, max_size=3))),
        ),
        "size": draw(st.integers(min_value=1, max_value=2048)),
        "count": draw(st.integers(min_value=1, max_value=8)),
        "window": draw(st.integers(min_value=1, max_value=4)),
    }


def run_faulted_stream(provider, level, plan, size, count, window,
                       deadline=60_000.0):
    """Checked windowed stream with a fault plan armed from t=0.

    Timeouts, failed sends, and connection errors are all legitimate
    outcomes under arbitrary faults — the workload gives up rather than
    recovering.  What may never happen is a conformance violation, and
    whatever the server did receive must be an in-order prefix.
    """
    tb = Testbed(provider, seed=0, check=True, faults=plan)
    got: list = []

    def client():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi(reliability=level)
        bufs = []
        for _ in range(window):
            buf = h.alloc(max(size, 4))
            mh = yield from h.register_mem(buf)
            bufs.append((buf, mh))
        try:
            yield from h.connect(vi, tb.node_names[1], 31, timeout=deadline)
        except VipError:
            return  # a blacked-out handshake may legitimately give up
        inflight = 0
        for i in range(count):
            if inflight >= window:
                try:
                    desc = yield from h.send_wait(vi, timeout=deadline)
                except VipTimeout:
                    return
                inflight -= 1
                if desc.status is not CompletionStatus.SUCCESS:
                    return
            buf, mh = bufs[i % window]
            h.write(buf, _payload(i, size))
            segs = [h.segment(buf, mh, 0, size)]
            yield from h.post_send(vi, Descriptor.send(segs))
            inflight += 1
        while inflight:
            try:
                desc = yield from h.send_wait(vi, timeout=deadline)
            except VipTimeout:
                return
            inflight -= 1
            if desc.status is not CompletionStatus.SUCCESS:
                return

    def server():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi(reliability=level)
        pool = []
        for _ in range(count):
            buf = h.alloc(max(size, 4))
            mh = yield from h.register_mem(buf)
            pool.append((buf, mh))
            yield from h.post_recv(
                vi, Descriptor.recv([h.segment(buf, mh, 0, size)]))
        try:
            req = yield from h.connect_wait(31, timeout=deadline)
        except VipTimeout:
            return  # the client never got through
        yield from h.accept(req, vi)
        for i in range(count):
            try:
                desc = yield from h.recv_wait(vi, timeout=deadline)
            except VipTimeout:
                return
            if desc.status is not CompletionStatus.SUCCESS:
                return
            buf, _mh = pool[i]
            got.append(hashlib.sha256(h.read(buf, size)).hexdigest())

    run_pair(tb, client(), server())
    tb.run()  # drain retransmission timers and fault processes
    tb.checker.check_quiesced(tb)
    return got


@given(fault_plan_case())
@settings(max_examples=10, deadline=None)
def test_fuzzed_fault_plans_preserve_invariants(case):
    """Arbitrary fault plans on reliable levels: the conformance
    invariants must hold no matter what the wire, NIC, or host does."""
    got = run_faulted_stream(**case)
    expected = [
        hashlib.sha256(_payload(i, case["size"])).hexdigest()
        for i in range(case["count"])
    ]
    assert got == expected[:len(got)]
