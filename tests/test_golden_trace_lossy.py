"""Golden regression for the lossy-link machinery (mvia).

The lossless golden traces (``test_golden_trace.py``) pin the happy
path; this file pins the *fault* path: one windowed stream under
injected wire loss, once unreliable (drops surface as missing
deliveries) and once with reliable delivery (drops surface as NAKs and
retransmissions).  The full event sequence and the fault counters are
fixtures, so any change to drop selection, retransmission scheduling,
or ack ordering fails loudly here.

The connection is established on a lossless wire (the handshake has no
retransmission); loss is injected for the data phase only.

Regenerate after an intentional change with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace_lossy.py
"""

import json
import os
import pathlib

import pytest

from repro.obs.profile import _reset_id_counters
from repro.providers import Testbed
from repro.sim.trace import Tracer
from repro.via import Descriptor
from repro.via.constants import Reliability
from repro.via.errors import VipTimeout

from conftest import run_pair, set_wire_loss

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "golden_trace_mvia_lossy.json"
SIZE, COUNT, WINDOW, LOSS, SEED = 2000, 8, 4, 0.1, 5
LEVELS = ("unreliable", "reliable_delivery")
_DEADLINE = 20_000.0


def _lossy_stream_trace(level_name: str) -> dict:
    """One traced, checked stream under loss; returns events + counters."""
    level = Reliability(level_name)
    _reset_id_counters()
    tb = Testbed("mvia", seed=SEED, loss_rate=LOSS, check=True)
    tracer = Tracer()
    tb.sim.tracer = tracer
    set_wire_loss(tb, 0.0)
    ep: dict = {}

    def c_setup():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi(reliability=level)
        bufs = []
        for _ in range(WINDOW):
            buf = h.alloc(SIZE)
            mh = yield from h.register_mem(buf)
            bufs.append((buf, mh))
        yield from h.connect(vi, "node1", 41)
        ep["c"] = (h, vi, bufs)

    def s_setup():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi(reliability=level)
        for _ in range(COUNT):
            buf = h.alloc(SIZE)
            mh = yield from h.register_mem(buf)
            yield from h.post_recv(
                vi, Descriptor.recv([h.segment(buf, mh, 0, SIZE)]))
        req = yield from h.connect_wait(41)
        yield from h.accept(req, vi)
        ep["s"] = (h, vi)

    run_pair(tb, c_setup(), s_setup())
    set_wire_loss(tb, LOSS)
    delivered = {"n": 0}

    def c_data():
        h, vi, bufs = ep["c"]
        inflight = 0
        for i in range(COUNT):
            if inflight >= WINDOW:
                yield from h.send_wait(vi, timeout=_DEADLINE)
                inflight -= 1
            buf, mh = bufs[i % WINDOW]
            h.write(buf, bytes((i * 17 + j) % 256 for j in range(SIZE)))
            segs = [h.segment(buf, mh, 0, SIZE)]
            yield from h.post_send(vi, Descriptor.send(segs))
            inflight += 1
        while inflight:
            yield from h.send_wait(vi, timeout=_DEADLINE)
            inflight -= 1

    def s_data():
        h, vi = ep["s"]
        for _ in range(COUNT):
            try:
                yield from h.recv_wait(vi, timeout=_DEADLINE)
            except VipTimeout:
                return
            delivered["n"] += 1

    run_pair(tb, c_data(), s_data())
    tb.run()
    tb.checker.check_quiesced(tb)

    client = tb.provider("node0").engine
    server = tb.provider("node1").engine
    wire_drops = sum(ch.dropped_packets
                     for ch in _channels(tb))
    return {
        "events": [[ev.t, ev.category, ev.label, ev.node]
                   for ev in tracer.events],
        "counters": {
            "delivered": delivered["n"],
            "retransmissions": client.retransmissions,
            "naks_sent": server.naks_sent,
            "dup_drops": server.drops,
            "wire_drops": wire_drops,
        },
    }


def _channels(tb):
    from repro.check.invariants import _iter_channels

    return [ch for _label, ch in _iter_channels(tb)]


@pytest.fixture(scope="module")
def traces():
    return {level: _lossy_stream_trace(level) for level in LEVELS}


def test_golden_lossy_traces(traces):
    if os.environ.get("GOLDEN_REGEN"):  # pragma: no cover - maintenance aid
        FIXTURE.write_text(json.dumps(traces, indent=1) + "\n")
    want = json.loads(FIXTURE.read_text())
    for level in LEVELS:
        assert traces[level]["counters"] == want[level]["counters"], level
        assert traces[level]["events"] == want[level]["events"], level


def test_lossy_semantics(traces):
    """The two levels must show the paper's §3.2.5 semantics."""
    unrel = traces["unreliable"]["counters"]
    rel = traces["reliable_delivery"]["counters"]
    # the run is only a meaningful regression if the wire actually lost
    # something in both configurations
    assert unrel["wire_drops"] > 0 and rel["wire_drops"] > 0
    # unreliable: no recovery machinery, losses surface as gaps
    assert unrel["retransmissions"] == 0
    assert unrel["delivered"] < COUNT
    # reliable delivery: recovery machinery, no losses surface
    assert rel["retransmissions"] > 0
    assert rel["delivered"] == COUNT
