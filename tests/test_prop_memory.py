"""Property-based tests for memory / registration invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memory import PAGE_SIZE, MemorySystem, page_span
from repro.via.memory import MemoryRegistry


@given(st.integers(min_value=0, max_value=1 << 30),
       st.integers(min_value=0, max_value=1 << 20))
def test_page_span_covers_range_exactly(addr, length):
    pages = list(page_span(addr, length))
    assert pages == sorted(set(pages))
    # first page contains addr; last page contains the final byte
    assert pages[0] == addr // PAGE_SIZE
    last_byte = addr + max(length, 1) - 1
    assert pages[-1] == last_byte // PAGE_SIZE
    # contiguous
    assert pages == list(range(pages[0], pages[-1] + 1))


@given(st.lists(st.integers(min_value=1, max_value=10 * PAGE_SIZE),
                min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_register_deregister_restores_zero_pins(lengths):
    mem = MemorySystem()
    registry = MemoryRegistry(mem)
    handles = []
    for i, length in enumerate(lengths):
        region = mem.alloc(length)
        handles.append(registry.register(region.base, length, tag=1))
    assert mem.pinned_pages == len(
        {p for h in handles for p in h.pages}
    )
    for h in handles:
        registry.deregister(h)
    assert mem.pinned_pages == 0
    assert len(registry) == 0


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_interleaved_register_deregister_never_negative(data):
    mem = MemorySystem()
    registry = MemoryRegistry(mem)
    live = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=30))):
        if live and data.draw(st.booleans()):
            registry.deregister(live.pop(data.draw(
                st.integers(min_value=0, max_value=len(live) - 1))))
        else:
            length = data.draw(st.integers(min_value=1,
                                           max_value=4 * PAGE_SIZE))
            region = mem.alloc(length)
            live.append(registry.register(region.base, length, tag=1))
        assert mem.pinned_pages >= 0
        expected = len({p for h in live for p in h.pages})
        assert mem.pinned_pages == expected


@given(st.binary(min_size=0, max_size=2000),
       st.integers(min_value=0, max_value=500))
def test_write_read_roundtrip_any_bytes(data, offset):
    mem = MemorySystem()
    region = mem.alloc(3000)
    mem.write(region.base + offset, data)
    assert mem.read(region.base + offset, len(data)) == data
