"""Protocol properties of the conservative shard scheduler.

The :class:`~repro.shard.sync.ConservativeScheduler` is host-agnostic:
anything exposing ``peek`` / ``start_round`` / ``finish_round`` /
``release`` can sit behind it.  These tests drive it with fake shards
— scripted event lists and randomized cross-shard delay matrices — and
check the protocol invariants directly, without simulators:

* no wire record is ever delivered into a shard's past (causality),
* granted horizons advance monotonically,
* every scripted event runs (no starvation, no premature termination),
* all-idle shards terminate immediately (the null-message/horizon-bump
  path cannot deadlock), and
* the distributed start-gate fold replicates the single-heap barrier.
"""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import make_topology
from repro.shard import CausalityError, GateCoordinator, ShardBoundary, ShardPlan
from repro.shard.sync import ConservativeScheduler

_INF = float("inf")


class FakeShard:
    """Scripted shard: local event times, optional sends and gate events.

    ``sends[t] = (dst_shard, extra_delay)`` exports a record from the
    event at ``t`` with ``deliver_at = t + lookahead + extra_delay`` —
    the minimum-latency contract every real cut link obeys.  Imported
    records become local events at their timestamps; delivering one
    below the shard's clock trips the causality assertion.
    """

    def __init__(self, index, events, lookahead, sends=None, gates=None):
        self.index = index
        self.todo = sorted(events)
        self.lookahead = lookahead
        self.sends = dict(sends or {})
        self.gates = dict(gates or {})
        self.clock = 0.0
        self.processed = []
        self.releases = []
        self._seq = 0
        self._result = None

    def peek(self):
        return self.todo[0] if self.todo else _INF

    def start_round(self, horizon, inclusive, imports):
        for record in imports:
            assert record[0] >= self.clock, (
                f"causality violation: record at {record[0]} delivered "
                f"into shard {self.index}'s past (clock {self.clock})")
            bisect.insort(self.todo, record[0])
        exports = []
        gate_events = []
        while self.todo and (self.todo[0] <= horizon if inclusive
                             else self.todo[0] < horizon):
            t = self.todo.pop(0)
            self.clock = t
            self.processed.append(t)
            if t in self.sends:
                dst, extra = self.sends[t]
                self._seq += 1
                exports.append(
                    (t + self.lookahead + extra, self.index, self._seq, dst))
            if t in self.gates:
                cid, kind = self.gates[t]
                gate_events.append((t, cid, kind))
        self.clock = max(self.clock, horizon)
        self._result = (self.peek(), exports, gate_events, None)

    def finish_round(self):
        result, self._result = self._result, None
        return result

    def release(self, t0, releaser):
        self.releases.append((t0, releaser))
        return self.peek()

    def close(self):
        pass


def _run(shards, lookahead=1.0, gate_expected=0):
    sched = ConservativeScheduler(shards, lookahead,
                                  route=lambda record: record[3],
                                  gate_expected=gate_expected)
    sched.run()
    return sched


# -- scheduler properties -------------------------------------------------

@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_random_delay_matrices_preserve_causality(data):
    n = data.draw(st.integers(2, 4), label="shards")
    lookahead = data.draw(st.floats(0.5, 5.0, allow_nan=False), label="L")
    shards = []
    for i in range(n):
        times = sorted(data.draw(
            st.lists(st.floats(0.0, 100.0, allow_nan=False,
                               allow_infinity=False),
                     min_size=0, max_size=8, unique=True),
            label=f"events{i}"))
        sends = {}
        for t in times:
            if data.draw(st.booleans(), label=f"send@{t}"):
                sends[t] = (data.draw(st.integers(0, n - 1),
                                      label=f"dst@{t}"),
                            data.draw(st.floats(0.0, 10.0,
                                                allow_nan=False),
                                      label=f"extra@{t}"))
        shards.append(FakeShard(i, times, lookahead, sends=sends))
    scripted = sum(len(s.todo) for s in shards)
    sched = _run(shards, lookahead)
    # every scripted event ran, in local time order (causality asserts
    # inside FakeShard.start_round did not trip along the way)
    for shard in shards:
        assert shard.processed == sorted(shard.processed)
        assert not shard.todo
    # horizons granted to the fleet advance monotonically
    assert sched.horizons == sorted(sched.horizons)
    # every record sent to a peer became an event there: the fleet
    # processed exactly the scripted events plus the exchanged records
    exchanged = sum(s._seq for s in shards)
    assert sum(len(s.processed) for s in shards) == scripted + exchanged


def test_all_idle_shards_terminate_immediately():
    shards = [FakeShard(i, [], 1.0) for i in range(3)]
    sched = _run(shards)
    assert sched.rounds == 0
    assert sched.sync_stalls == [0, 0, 0]


def test_null_message_progress_for_eventless_shard():
    """Shard 1 has no local work at all: it advances purely on horizon
    grants and imported records — the null-message path."""
    shards = [
        FakeShard(0, [0.0, 5.0], 1.0, sends={0.0: (1, 0.0), 5.0: (1, 2.0)}),
        FakeShard(1, [], 1.0),
    ]
    sched = _run(shards)
    assert shards[1].processed == [1.0, 8.0]
    assert not shards[1].todo
    # the eventless shard stalled in rounds where it had nothing to do
    assert sched.sync_stalls[1] >= 1


def test_chained_relay_terminates():
    """A record that triggers no further work still drains: rounds are
    driven by pending records even when every shard reports idle."""
    shards = [
        FakeShard(0, [0.0], 2.0, sends={0.0: (1, 0.0)}),
        FakeShard(1, [], 2.0),
        FakeShard(2, [], 2.0),
    ]
    sched = _run(shards)
    assert shards[1].processed == [2.0]
    assert sched.rounds >= 2


def test_scheduler_rejects_nonpositive_lookahead():
    with pytest.raises(ValueError, match="lookahead"):
        ConservativeScheduler([], 0.0, route=lambda r: 0)


def test_lockstep_until_gate_release():
    """With an unreleased gate the scheduler runs one instant per round;
    the fold releases every shard exactly once, at the tipping arrival,
    and normal lookahead windows resume after."""
    shards = [
        FakeShard(0, [1.0, 4.0], 1.0, gates={1.0: (0, "arrive")}),
        FakeShard(1, [3.0], 1.0, gates={3.0: (1, "arrive")}),
    ]
    sched = _run(shards, gate_expected=2)
    assert shards[0].releases == [(3.0, 1)]
    assert shards[1].releases == [(3.0, 1)]
    # pre-release rounds are lockstep: horizons 1.0, 3.0 (no lookahead)
    assert sched.horizons[:2] == [1.0, 3.0]
    # post-release rounds widen by the lookahead
    assert sched.horizons[2] == pytest.approx(5.0)


def test_abandon_tips_gate_without_releaser():
    shards = [
        FakeShard(0, [1.0], 1.0, gates={1.0: (0, "arrive")}),
        FakeShard(1, [2.0], 1.0, gates={2.0: (1, "abandon")}),
    ]
    _run(shards, gate_expected=2)
    assert shards[0].releases == [(2.0, None)]


# -- gate coordinator fold ------------------------------------------------

def test_gate_fold_replicates_barrier_order():
    gate = GateCoordinator(expected=3)
    assert gate.fold([(1.0, 2, "arrive")]) is None
    assert not gate.released
    # two arrivals in one round, deliberately out of order: the fold
    # sorts by (time, cid) so the releaser is the *last* arrival
    result = gate.fold([(3.0, 0, "arrive"), (2.0, 1, "arrive")])
    assert result == (3.0, 0)
    assert gate.released
    assert gate.fold([(9.0, 5, "arrive")]) is None  # already released


def test_gate_fold_abandon_shrinks_expected():
    gate = GateCoordinator(expected=3)
    assert gate.fold([(1.0, 0, "arrive")]) is None
    assert gate.fold([(2.0, 1, "abandon")]) is None
    result = gate.fold([(4.0, 2, "arrive")])
    assert result == (4.0, 2)


def test_gate_fold_all_abandon():
    gate = GateCoordinator(expected=2)
    result = gate.fold([(1.0, 0, "abandon"), (2.0, 1, "abandon")])
    assert result == (2.0, None)


# -- boundary causality guard ---------------------------------------------

def test_boundary_rejects_record_in_the_past():
    from repro.cluster.topology import build_testbed

    topo = make_topology("star", 2, 1)
    plan = ShardPlan("mvia", topo, 2)
    tb = build_testbed("mvia", topo, seed=0)
    boundary = ShardBoundary(tb, plan, 0)
    tb.sim.run_below(100.0)  # advance the clock past t=50
    with pytest.raises(CausalityError):
        boundary.inject([(50.0, 1, 1, None)])


def test_plan_rejects_zero_lookahead():
    import dataclasses

    from repro.providers.registry import get_spec

    topo = make_topology("star", 2, 1)
    spec = get_spec("mvia")
    zeroed = dataclasses.replace(
        spec, network=dataclasses.replace(spec.network, prop_delay=0.0))
    with pytest.raises(ValueError, match="propagation delay"):
        ShardPlan(zeroed, topo, 2)
