"""Tests for ASCII plotting and the VipQuery* APIs."""

import pytest

from repro.providers import Testbed
from repro.via import Descriptor, Reliability, ViState
from repro.vibe import ascii_plot
from repro.vibe.metrics import BenchResult, Measurement

from conftest import connected_endpoints, run_pair, run_proc


# ---- ascii_plot ------------------------------------------------------------

def series(name, pts):
    return BenchResult("b", name, [Measurement(param=x, latency_us=y)
                                   for x, y in pts])


def test_plot_renders_markers_and_legend():
    a = series("alpha", [(4, 10.0), (1024, 50.0)])
    b = series("beta", [(4, 20.0), (1024, 90.0)])
    text = ascii_plot([a, b], "latency_us", "T")
    assert text.splitlines()[0] == "T"
    assert "o alpha" in text and "x beta" in text
    assert "(log)" in text
    assert text.count("o") >= 2  # two alpha points plotted


def test_plot_linear_x_when_nonpositive():
    a = series("a", [(0, 5.0), (10, 10.0)])
    text = ascii_plot([a], "latency_us", log_x=True)
    assert "(log)" not in text


def test_plot_empty():
    assert ascii_plot([], "latency_us") == "(nothing to plot)"
    empty = BenchResult("b", "none", [Measurement(param="label")])
    assert ascii_plot([empty], "latency_us") == "(nothing to plot)"


def test_plot_constant_series_centres():
    a = series("flat", [(1, 5.0), (100, 5.0)])
    text = ascii_plot([a], "latency_us", height=9)
    assert "o" in text


def test_plot_cli_flag(capsys):
    from repro.cli import main

    main(["--providers", "clan", "figure", "3", "--sizes", "4,4096",
          "--plot"])
    out = capsys.readouterr().out
    assert "o clan" in out
    assert "|" in out


# ---- VipQueryNic / VipQueryVi ------------------------------------------------

def test_query_nic_reports_capabilities(provider_name):
    tb = Testbed(provider_name)
    attrs = tb.open("node0", "a").query_nic()
    assert attrs.name == provider_name
    assert attrs.max_transfer_size > 0
    assert attrs.supports_rdma_write
    assert len(attrs.reliability_levels) == 3
    spec_read = tb.provider("node0").supports_rdma_read
    assert attrs.supports_rdma_read == spec_read


def test_query_vi_tracks_lifecycle():
    tb = Testbed("clan")
    cs, ss = connected_endpoints(tb)
    snapshots = {}

    def client():
        h, vi, region, mh = yield from cs()
        snapshots["connected"] = h.query_vi(vi)
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_send(vi, Descriptor.send(segs))
        snapshots["posted"] = h.query_vi(vi)
        yield from h.send_wait(vi)
        snapshots["done"] = h.query_vi(vi)

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.recv_wait(vi)

    run_pair(tb, client(), server())
    assert snapshots["connected"].state is ViState.CONNECTED
    assert snapshots["connected"].peer is not None
    assert snapshots["posted"].send_posted == 1
    assert snapshots["done"].send_posted == 0
    assert snapshots["done"].send_completed == 1
    assert snapshots["done"].reliability is Reliability.RELIABLE_DELIVERY


def test_query_vi_idle():
    tb = Testbed("mvia")
    h = tb.open("node0", "a")

    def body():
        vi = yield from h.create_vi()
        attrs = h.query_vi(vi)
        assert attrs.state is ViState.IDLE
        assert attrs.peer is None
        assert attrs.send_posted == attrs.recv_posted == 0

    run_proc(tb.sim, body())
