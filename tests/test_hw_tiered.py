"""Tests for the two-tier (leaf/spine) fabric."""

import pytest

from repro.hw import Packet, TieredFabric
from repro.providers import Testbed
from repro.sim import Simulator
from repro.via import Descriptor

from conftest import run_proc

GROUPS = (("a0", "a1"), ("b0", "b1"))


def test_construction_validates():
    sim = Simulator()
    from repro.hw import MYRINET

    with pytest.raises(ValueError, match="unique"):
        TieredFabric(sim, MYRINET, (("x",), ("x",)))
    with pytest.raises(ValueError, match="two leaves"):
        TieredFabric(sim, MYRINET, (("a", "b"),))


def test_local_and_remote_delivery():
    sim = Simulator()
    from repro.hw import GIGANET

    fab = TieredFabric(sim, GIGANET, GROUPS)
    got = {}
    for name in fab.node_names:
        fab.node(name).nic.rx_handler = \
            (lambda n: lambda p: got.setdefault(n, []).append(p.payload))(name)

    def body():
        yield from fab.node("a0").nic.transmit(
            Packet("a0", "a1", "d", 16, "intra"))
        yield from fab.node("a0").nic.transmit(
            Packet("a0", "b1", "d", 16, "inter"))

    run_proc(sim, body())
    sim.run()
    assert got["a1"] == ["intra"]
    assert got["b1"] == ["inter"]
    assert fab.same_leaf("a0", "a1")
    assert not fab.same_leaf("a0", "b0")
    # the inter-leaf packet crossed the spine
    assert fab.spine.forwarded == 1
    assert fab.leaves[0].forwarded_up == 1


def test_cross_leaf_latency_exceeds_intra_leaf():
    def lat(a, b, disc):
        tb = Testbed("clan", leaf_groups=GROUPS)
        out = {}

        def client():
            h = tb.open(a, "c")
            vi = yield from h.create_vi()
            r = h.alloc(4096)
            mh = yield from h.register_mem(r)
            yield from h.connect(vi, b, disc)
            segs = [h.segment(r, mh, 0, 4096)]
            yield from h.post_recv(vi, Descriptor.recv(segs))
            t0 = tb.now
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)
            yield from h.recv_wait(vi)
            out["lat"] = (tb.now - t0) / 2

        def server():
            h = tb.open(b, "s")
            vi = yield from h.create_vi()
            r = h.alloc(4096)
            mh = yield from h.register_mem(r)
            segs = [h.segment(r, mh, 0, 4096)]
            yield from h.post_recv(vi, Descriptor.recv(segs))
            req = yield from h.connect_wait(disc)
            yield from h.accept(req, vi)
            yield from h.recv_wait(vi)
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

        cp = tb.spawn(client())
        tb.spawn(server())
        tb.run(cp)
        return out["lat"]

    assert lat("a0", "b0", 11) > lat("a0", "a1", 10) * 1.3


def test_spine_contention_halves_crossing_flows():
    """Two simultaneous cross-leaf streams share the spine uplink; two
    intra-leaf streams do not contend at all."""
    def aggregate(pairs, cross):
        tb = Testbed("clan", leaf_groups=GROUPS)
        done = {}
        n, size = 20, 16384

        def sender(a, b, disc, idx):
            h = tb.open(a, f"c{idx}")
            vi = yield from h.create_vi()
            r = h.alloc(size)
            mh = yield from h.register_mem(r)
            yield from h.connect(vi, b, disc)
            segs = [h.segment(r, mh, 0, size)]
            for _ in range(n):
                yield from h.post_send(vi, Descriptor.send(segs))
                yield from h.send_wait(vi)

        def receiver(b, disc, idx):
            h = tb.open(b, f"s{idx}")
            vi = yield from h.create_vi()
            r = h.alloc(size)
            mh = yield from h.register_mem(r)
            segs = [h.segment(r, mh, 0, size)]
            for _ in range(n):
                yield from h.post_recv(vi, Descriptor.recv(segs))
            req = yield from h.connect_wait(disc)
            yield from h.accept(req, vi)
            for _ in range(n):
                yield from h.recv_wait(vi)
            done[idx] = tb.now

        t0 = None
        procs = []
        for idx, (a, b) in enumerate(pairs):
            procs.append(tb.spawn(sender(a, b, 20 + idx, idx)))
            procs.append(tb.spawn(receiver(b, 20 + idx, idx)))
        for p in procs:
            tb.run(p)
        return 2 * n * size / max(done.values())

    # two flows inside different leaves: fully parallel
    parallel = aggregate([("a0", "a1"), ("b0", "b1")], cross=False)
    # two flows both crossing the spine in the same direction: shared
    shared = aggregate([("a0", "b0"), ("a1", "b1")], cross=True)
    assert shared < parallel * 0.7


def test_via_stack_works_across_leaves_all_providers(provider_name):
    tb = Testbed(provider_name, leaf_groups=GROUPS)
    out = {}

    def client():
        h = tb.open("a0", "c")
        vi = yield from h.create_vi()
        r = h.alloc(64)
        mh = yield from h.register_mem(r)
        yield from h.connect(vi, "b1", 5)
        h.write(r, b"across-the-spine")
        segs = [h.segment(r, mh, 0, 16)]
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)

    def server():
        h = tb.open("b1", "s")
        vi = yield from h.create_vi()
        r = h.alloc(64)
        mh = yield from h.register_mem(r)
        segs = [h.segment(r, mh, 0, 16)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)
        yield from h.recv_wait(vi)
        out["data"] = h.read(r, 16)

    cp = tb.spawn(client())
    sp = tb.spawn(server())
    tb.run(cp)
    tb.run(sp)
    assert out["data"] == b"across-the-spine"
