"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Simulator,
    SimulationError,
    Timeout,
)


def test_timeout_advances_clock():
    sim = Simulator()
    t = sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0
    assert t.processed


def test_timeout_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        ev = sim.timeout(delay, delay)
        ev.callbacks.append(lambda e: order.append(e.value))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(5):
        ev = sim.timeout(1.0, i)
        ev.callbacks.append(lambda e: order.append(e.value))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("payload")
    sim.run()
    assert ev.ok and ev.value == "payload"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_unhandled_failure_propagates():
    sim = Simulator()
    sim.event().fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_defused_failure_is_silent():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    ev.defuse()
    sim.run()  # no raise


def test_process_returns_value():
    sim = Simulator()

    def body():
        yield sim.timeout(2.0)
        return 42

    proc = sim.process(body())
    assert sim.run(proc) == 42
    assert sim.now == 2.0


def test_process_waits_on_event_value():
    sim = Simulator()
    ev = sim.event()

    def trigger():
        yield sim.timeout(1.0)
        ev.succeed("hello")

    def waiter():
        value = yield ev
        return value

    sim.process(trigger())
    proc = sim.process(waiter())
    assert sim.run(proc) == "hello"


def test_process_receives_event_failure():
    sim = Simulator()
    ev = sim.event()

    def trigger():
        yield sim.timeout(1.0)
        ev.fail(ValueError("nope"))

    def waiter():
        with pytest.raises(ValueError, match="nope"):
            yield ev
        return "handled"

    sim.process(trigger())
    proc = sim.process(waiter())
    assert sim.run(proc) == "handled"


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise KeyError("inner")

    def outer():
        with pytest.raises(KeyError):
            yield sim.process(crasher())
        return "ok"

    proc = sim.process(outer())
    assert sim.run(proc) == "ok"


def test_process_can_wait_on_already_processed_event():
    sim = Simulator()
    ev = sim.timeout(0.0, "early")
    sim.run()
    assert ev.processed

    def body():
        value = yield ev
        return value

    proc = sim.process(body())
    assert sim.run(proc) == "early"


def test_process_yielding_non_event_is_an_error():
    sim = Simulator()

    def body():
        yield 42

    proc = sim.process(body())
    with pytest.raises(SimulationError, match="must yield Event"):
        sim.run(proc)


def test_nested_processes():
    sim = Simulator()

    def inner(n):
        yield sim.timeout(n)
        return n * 2

    def outer():
        a = yield sim.process(inner(3))
        b = yield sim.process(inner(4))
        return a + b

    proc = sim.process(outer())
    assert sim.run(proc) == 14
    assert sim.now == 7.0


def test_interrupt_raises_in_process():
    sim = Simulator()
    caught = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            caught.append(intr.cause)
        return "done"

    def attacker(proc):
        yield sim.timeout(1.0)
        proc.interrupt("reason")

    proc = sim.process(victim())
    sim.process(attacker(proc))
    assert sim.run(proc) == "done"
    assert caught == ["reason"]
    assert sim.now < 100.0


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run(proc)
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_anyof_fires_on_first():
    sim = Simulator()
    fast = sim.timeout(1.0, "fast")
    slow = sim.timeout(5.0, "slow")

    def body():
        results = yield AnyOf(sim, [fast, slow])
        return results

    proc = sim.process(body())
    results = sim.run(proc)
    assert results == {fast: "fast"}
    assert sim.now == 1.0


def test_allof_waits_for_all():
    sim = Simulator()
    a = sim.timeout(1.0, "a")
    b = sim.timeout(5.0, "b")

    def body():
        results = yield AllOf(sim, [a, b])
        return results

    proc = sim.process(body())
    results = sim.run(proc)
    assert results == {a: "a", b: "b"}
    assert sim.now == 5.0


def test_empty_condition_triggers_immediately():
    sim = Simulator()

    def body():
        result = yield AllOf(sim, [])
        return result

    assert sim.run(sim.process(body())) == {}


def test_run_until_time():
    sim = Simulator()
    fired = []
    for d in (1.0, 2.0, 3.0):
        sim.timeout(d).callbacks.append(lambda e: fired.append(sim.now))
    sim.run(until=2.5)
    assert fired == [1.0, 2.0]
    assert sim.now == 2.5


def test_run_until_past_deadline_rejected():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    never = sim.event()

    def body():
        yield never

    proc = sim.process(body())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(proc)


def test_peek():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 0.0 or sim.peek() == 7.0  # bootstrap-free timeout
    sim.run()
    assert sim.peek() == float("inf")


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        log = []

        def worker(n):
            for i in range(3):
                yield sim.timeout(n * 0.5 + 0.1)
                log.append((sim.now, n, i))

        for n in range(4):
            sim.process(worker(n))
        sim.run()
        return log

    assert build() == build()
