"""Property-based tests for the stream layer and collectives depth."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layers import MsgEndpoint, ViaStream
from repro.providers import Testbed

from conftest import run_pair


@st.composite
def stream_scenario(draw):
    total = draw(st.integers(min_value=1, max_value=12000))
    chunk = draw(st.sampled_from([64, 500, 1000, 4000]))
    # receiver read sizes partition the total arbitrarily
    reads = []
    remaining = total
    while remaining > 0:
        n = draw(st.integers(min_value=1, max_value=remaining))
        reads.append(n)
        remaining -= n
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return total, chunk, reads, seed


@given(stream_scenario())
@settings(max_examples=25, deadline=None)
def test_stream_any_write_read_split(scenario):
    """Any chunking on the writer side and any read sizes on the reader
    side reassemble the exact byte sequence."""
    total, chunk, reads, seed = scenario
    payload = bytes((seed + i) % 256 for i in range(total))
    tb = Testbed("clan")
    got = []

    def sender():
        h = tb.open("node0", "s")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=1024)
        yield from msg.setup()
        yield from h.connect(vi, "node1", 5)
        stream = ViaStream(msg, chunk=chunk)
        yield from stream.write(payload)

    def receiver():
        h = tb.open("node1", "r")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=1024)
        yield from msg.setup()
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)
        stream = ViaStream(msg, chunk=chunk)
        for n in reads:
            piece = yield from stream.read(n)
            got.append(piece)

    run_pair(tb, sender(), receiver())
    assert b"".join(got) == payload
    assert [len(g) for g in got] == reads


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2),
                          st.integers(min_value=0, max_value=200)),
                min_size=1, max_size=8))
@settings(max_examples=20, deadline=None)
def test_isend_arbitrary_sequences_preserve_order(seq):
    """Any isend sequence delivers exactly once, per-tag ordered."""
    tb = Testbed("mvia")
    got = []

    def payload(i, size):
        return bytes((i * 31 + j) % 256 for j in range(size))

    def sender():
        h = tb.open("node0", "s")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=512)
        yield from msg.setup()
        yield from h.connect(vi, "node1", 5)
        for i, (tag, size) in enumerate(seq):
            yield from msg.isend(tag, payload(i, size))
        yield from msg.flush_sends()

    def receiver():
        h = tb.open("node1", "r")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=512)
        yield from msg.setup()
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)
        for _ in seq:
            t, d = yield from msg.recv()
            got.append((t, d))

    run_pair(tb, sender(), receiver())
    assert got == [(t, payload(i, s)) for i, (t, s) in enumerate(seq)]
