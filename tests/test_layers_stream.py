"""Tests for the byte-stream layer."""

import pytest

from repro.layers import MsgEndpoint, ViaStream
from repro.providers import Testbed

from conftest import run_pair


def stream_pair(tb, chunk=2048):
    def client_setup():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        yield from h.connect(vi, tb.node_names[1], 5)
        return ViaStream(msg, chunk=chunk)

    def server_setup():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)
        return ViaStream(msg, chunk=chunk)

    return client_setup, server_setup


def test_stream_roundtrip(provider_name):
    tb = Testbed(provider_name)
    cs, ss = stream_pair(tb)
    payload = bytes(i % 256 for i in range(30000))
    out = {}

    def client():
        st = yield from cs()
        yield from st.write(payload)
        assert st.bytes_sent == len(payload)

    def server():
        st = yield from ss()
        out["data"] = yield from st.read(len(payload))
        assert st.bytes_received == len(payload)

    run_pair(tb, client(), server())
    assert out["data"] == payload


def test_read_smaller_than_chunks_buffers_remainder():
    tb = Testbed("clan")
    cs, ss = stream_pair(tb, chunk=100)
    out = {}

    def client():
        st = yield from cs()
        yield from st.write(b"A" * 250)

    def server():
        st = yield from ss()
        first = yield from st.read(30)
        second = yield from st.read(220)
        out["parts"] = (first, second, st.buffered)

    run_pair(tb, client(), server())
    first, second, buffered = out["parts"]
    assert first == b"A" * 30
    assert second == b"A" * 220
    assert buffered == 0


def test_interleaved_reads_and_writes():
    tb = Testbed("mvia")
    cs, ss = stream_pair(tb)
    out = {}

    def client():
        st = yield from cs()
        for i in range(5):
            yield from st.write(bytes([i]) * 10)
            ack = yield from st.read(1)
            assert ack == bytes([i])

    def server():
        st = yield from ss()
        for i in range(5):
            data = yield from st.read(10)
            assert data == bytes([i]) * 10
            yield from st.write(bytes([i]))
        out["ok"] = True

    run_pair(tb, client(), server())
    assert out["ok"]


def test_read_zero_and_negative():
    tb = Testbed("clan")
    cs, ss = stream_pair(tb)

    def client():
        st = yield from cs()
        got = yield from st.read(0)
        assert got == b""
        with pytest.raises(ValueError):
            yield from st.read(-1)

    def server():
        _st = yield from ss()

    run_pair(tb, client(), server())


def test_bad_chunk():
    tb = Testbed("clan")
    h = tb.open("node0", "a")

    def body():
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        with pytest.raises(ValueError):
            ViaStream(msg, chunk=0)

    tb.run(tb.spawn(body()))
