"""Golden snapshot-blob hashes (checkpoint format stability).

A state-tier blob of the canonical warmed two-node testbed is a pure
function of ``(provider, seed, code version)`` — the canonical pickler
sorts sets, strips memo noise, and the id allocators are reset at
build.  This suite pins the blob *hash* per provider as a fixture, so
any change to the blob format, the pickled object graph, or the
simulation the blob captures fails loudly here.

Regenerate after an *intentional* format or kernel change with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/test_snapshot_goldens.py

and review the fixture diff like any other golden change.

The skew tests pin the failure modes: a blob stamped by a different
code version must raise :class:`~repro.snap.SnapshotVersionError` (not
deserialize garbage), and a corrupted payload must raise
:class:`~repro.snap.SnapshotIntegrityError`.  The hashseed test proves
blobs are canonical across *processes*: two interpreters with different
``PYTHONHASHSEED`` values must produce identical hashes.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro import snap

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
GOLDENS = FIXTURES / "golden_snapshots.json"
PROVIDERS = ("mvia", "bvia", "clan", "iba")


def _warm_blob(provider: str) -> bytes:
    return snap.snapshot_state(snap.warmed_testbed(provider))


@pytest.fixture(scope="module")
def blobs():
    return {p: _warm_blob(p) for p in PROVIDERS}


def test_golden_blob_hashes(blobs):
    got = {p: snap.blob_hash(b) for p, b in blobs.items()}
    if os.environ.get("GOLDEN_REGEN"):  # pragma: no cover - maintenance aid
        GOLDENS.write_text(json.dumps(got, indent=1, sort_keys=True) + "\n")
    want = json.loads(GOLDENS.read_text())
    assert got == want


@pytest.mark.parametrize("provider", PROVIDERS)
def test_blob_is_reproducible_in_process(blobs, provider):
    """Regenerating the same warmed testbed yields byte-identical blobs
    no matter what ran earlier in the process."""
    assert _warm_blob(provider) == blobs[provider]


def test_blob_restores_to_working_testbed(blobs):
    tb = snap.restore(blobs["clan"])
    assert tb.name == "clan"
    assert tb.sim.events_run > 0


# ---------------------------------------------------------------------------
# version / integrity skew
# ---------------------------------------------------------------------------

def test_version_skew_is_refused(blobs):
    blob = blobs["mvia"]
    assert snap.CODE_VERSION.encode() in blob
    tampered = blob.replace(snap.CODE_VERSION.encode(), b"repro-0.0.0/snap-0")
    with pytest.raises(snap.SnapshotVersionError):
        snap.restore(tampered)


def test_corrupt_payload_is_refused(blobs):
    blob = bytearray(blobs["mvia"])
    blob[-1] ^= 0xFF
    with pytest.raises(snap.SnapshotIntegrityError):
        snap.restore(bytes(blob))


def test_truncated_blob_is_refused(blobs):
    with pytest.raises(snap.SnapshotError):
        snap.restore(blobs["mvia"][:6])


def test_foreign_magic_is_refused():
    with pytest.raises(snap.SnapshotError):
        snap.restore(b"NOTASNAP" + b"\x00" * 32)


# ---------------------------------------------------------------------------
# cross-process canonicality: hash-randomization independence
# ---------------------------------------------------------------------------

_HASHSEED_PROG = """\
import sys
from repro import snap
from repro.snap.recipe import checkpoint_replay

blob = snap.snapshot_state(snap.warmed_testbed("mvia"))
session = snap.build_session(
    "transfer",
    {"workload": "pingpong", "provider": "clan", "count": 2, "seed": 0},
)
session.run_events(150)
replay = checkpoint_replay(session)
print(snap.blob_hash(blob), snap.blob_hash(replay))
"""


def _hashes_under(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(pathlib.Path(__file__).parent.parent / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    out = subprocess.run(
        [sys.executable, "-c", _HASHSEED_PROG],
        env=env, capture_output=True, text=True, check=True)
    return out.stdout.strip()


def test_blobs_independent_of_hash_randomization():
    """Both tiers hash identically across interpreters with different
    PYTHONHASHSEED values — set iteration order, dict randomization, and
    id() churn are all canonicalized away."""
    assert _hashes_under("1") == _hashes_under("42")
