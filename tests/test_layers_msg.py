"""Tests for the tagged message layer (eager / rendezvous / credits)."""

import pytest

from repro.layers import ANY_TAG, MsgEndpoint
from repro.providers import Testbed

from conftest import run_pair


def make_pair(tb, eager_size=1024, pool=8, reliability=None, reg_cache=True):
    def client_setup():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi(reliability=reliability)
        msg = MsgEndpoint(h, vi, eager_size=eager_size, pool=pool,
                          reg_cache=reg_cache)
        yield from msg.setup()
        yield from h.connect(vi, tb.node_names[1], 5)
        return msg

    def server_setup():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi(reliability=reliability)
        msg = MsgEndpoint(h, vi, eager_size=eager_size, pool=pool,
                          reg_cache=reg_cache)
        yield from msg.setup()
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)
        return msg

    return client_setup, server_setup


def test_eager_roundtrip(provider_name):
    tb = Testbed(provider_name)
    cs, ss = make_pair(tb)
    out = {}

    def client():
        msg = yield from cs()
        yield from msg.send(7, b"eager-path")
        assert msg.stats["eager"] == 1 and msg.stats["rendezvous"] == 0

    def server():
        msg = yield from ss()
        tag, data = yield from msg.recv(7)
        out["msg"] = (tag, data)

    run_pair(tb, client(), server())
    assert out["msg"] == (7, b"eager-path")


def test_rendezvous_roundtrip(provider_name):
    tb = Testbed(provider_name)
    cs, ss = make_pair(tb, eager_size=512)
    payload = bytes(i % 256 for i in range(20000))
    out = {}

    def client():
        msg = yield from cs()
        yield from msg.send(9, payload)
        assert msg.stats["rendezvous"] == 1

    def server():
        msg = yield from ss()
        tag, data = yield from msg.recv(9)
        out["data"] = data

    run_pair(tb, client(), server())
    assert out["data"] == payload


def test_tag_matching_out_of_order():
    tb = Testbed("clan")
    cs, ss = make_pair(tb)
    out = {}

    def client():
        msg = yield from cs()
        yield from msg.send(1, b"first")
        yield from msg.send(2, b"second")

    def server():
        msg = yield from ss()
        tag2, d2 = yield from msg.recv(2)   # skip over tag 1
        tag1, d1 = yield from msg.recv(1)
        out["order"] = [(tag2, d2), (tag1, d1)]

    run_pair(tb, client(), server())
    assert out["order"] == [(2, b"second"), (1, b"first")]


def test_any_tag_receives_in_arrival_order():
    tb = Testbed("clan")
    cs, ss = make_pair(tb)
    out = {"msgs": []}

    def client():
        msg = yield from cs()
        for i in range(3):
            yield from msg.send(10 + i, bytes([i]))

    def server():
        msg = yield from ss()
        for _ in range(3):
            tag, data = yield from msg.recv(ANY_TAG)
            out["msgs"].append((tag, data))

    run_pair(tb, client(), server())
    assert out["msgs"] == [(10, b"\x00"), (11, b"\x01"), (12, b"\x02")]


def test_many_messages_exercise_credit_return():
    tb = Testbed("clan")
    cs, ss = make_pair(tb, pool=4)
    n = 40
    out = {}

    def client():
        msg = yield from cs()
        for i in range(n):
            yield from msg.send(1, bytes([i % 256]) * 32)
        out["credits_stats"] = msg.stats

    def server():
        msg = yield from ss()
        got = []
        for _ in range(n):
            _tag, data = yield from msg.recv(1)
            got.append(data[0])
        out["got"] = got
        out["server_stats"] = msg.stats

    run_pair(tb, client(), server())
    assert out["got"] == [i % 256 for i in range(n)]
    # with a pool of 4 and 40 sends the receiver must have returned credits
    assert out["server_stats"]["credits_sent"] > 0


def test_bidirectional_traffic():
    tb = Testbed("mvia")
    cs, ss = make_pair(tb)
    out = {}

    def client():
        msg = yield from cs()
        yield from msg.send(1, b"ping")
        tag, data = yield from msg.recv(2)
        out["client_got"] = data

    def server():
        msg = yield from ss()
        tag, data = yield from msg.recv(1)
        yield from msg.send(2, data[::-1])

    run_pair(tb, client(), server())
    assert out["client_got"] == b"gnip"


def test_reg_cache_avoids_reregistration():
    tb = Testbed("bvia")
    cs, ss = make_pair(tb, eager_size=256, reg_cache=True)
    payload = b"R" * 8000
    out = {}

    def client():
        msg = yield from cs()
        for _ in range(5):
            yield from msg.send(3, payload)
        out["regs"] = msg.stats["registrations"]
        out["pool"] = msg.pool

    def server():
        msg = yield from ss()
        for _ in range(5):
            yield from msg.recv(3)

    run_pair(tb, client(), server())
    # recv pool + sync staging + isend staging pool + ONE cached
    # rendezvous buffer
    assert out["regs"] == out["pool"] + 1 + 4 + 1


def test_no_reg_cache_registers_every_time():
    tb = Testbed("bvia")
    cs, ss = make_pair(tb, eager_size=256, reg_cache=False)
    payload = b"R" * 8000
    out = {}

    def client():
        msg = yield from cs()
        for _ in range(3):
            yield from msg.send(3, payload)
        out["regs"] = msg.stats["registrations"]
        out["pool"] = msg.pool

    def server():
        msg = yield from ss()
        for _ in range(3):
            yield from msg.recv(3)

    run_pair(tb, client(), server())
    assert out["regs"] == out["pool"] + 1 + 4 + 3


def test_validation():
    tb = Testbed("clan")
    h = tb.open("node0", "a")

    def body():
        vi = yield from h.create_vi()
        with pytest.raises(ValueError):
            MsgEndpoint(h, vi, eager_size=4)
        with pytest.raises(ValueError):
            MsgEndpoint(h, vi, pool=2)
        msg = MsgEndpoint(h, vi)
        with pytest.raises(ValueError):
            yield from msg.send(-1, b"x")

    tb.run(tb.spawn(body()))


def test_mixed_eager_and_rendezvous_keep_per_tag_order():
    tb = Testbed("clan")
    cs, ss = make_pair(tb, eager_size=128)
    out = {}

    def client():
        msg = yield from cs()
        yield from msg.send(5, b"small-1")
        yield from msg.send(5, b"L" * 5000)
        yield from msg.send(5, b"small-2")

    def server():
        msg = yield from ss()
        got = []
        for _ in range(3):
            _tag, data = yield from msg.recv(5)
            got.append(data[:7])
        out["got"] = got

    run_pair(tb, client(), server())
    assert out["got"] == [b"small-1", b"LLLLLLL", b"small-2"]
