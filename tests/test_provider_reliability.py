"""Provider tests: reliability levels, loss, retransmission, duplicates."""

import pytest

from repro.providers import Testbed, get_spec
from repro.via import CompletionStatus, Descriptor, Reliability

from conftest import connected_endpoints, run_pair, simple_recv, simple_send


def test_unreliable_send_completes_locally(provider_name):
    """With no receiver descriptor and UNRELIABLE service the send still
    completes (fire and forget)."""
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb, reliability=Reliability.UNRELIABLE)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        desc = yield from simple_send(h, vi, region, mh, b"void")
        result["status"] = desc.status

    def server():
        h, vi, region, mh = yield from ss()
        # never posts a receive

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.SUCCESS


@pytest.mark.parametrize("level", [Reliability.RELIABLE_DELIVERY,
                                   Reliability.RELIABLE_RECEPTION])
def test_reliable_send_completes_after_ack(provider_name, level):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb, reliability=level)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        desc = yield from simple_send(h, vi, region, mh, b"acked")
        result["status"] = desc.status
        result["acks"] = tb.provider("node0").engine.messages_sent

    def server():
        h, vi, region, mh = yield from ss()
        _desc, data = yield from simple_recv(h, vi, region, mh, 64)
        result["data"] = data

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.SUCCESS
    assert result["data"] == b"acked"


def test_loss_recovery_with_retransmission(provider_name):
    tb = Testbed(provider_name, loss_rate=0.3, seed=3)
    cs, ss = connected_endpoints(
        tb, reliability=Reliability.RELIABLE_DELIVERY)
    n = 12
    result = {"got": []}

    def client():
        h, vi, region, mh = yield from cs()
        for i in range(n):
            h.write(region, bytes([i]) * 8)
            segs = [h.segment(region, mh, 0, 8)]
            yield from h.post_send(vi, Descriptor.send(segs))
            desc = yield from h.send_wait(vi)
            assert desc.status is CompletionStatus.SUCCESS

    def server():
        h, vi, region, mh = yield from ss()
        for i in range(n):
            _desc, data = yield from simple_recv(h, vi, region, mh, 8)
            result["got"].append(data)

    run_pair(tb, client(), server())
    assert result["got"] == [bytes([i]) * 8 for i in range(n)]
    assert tb.provider("node0").engine.retransmissions > 0


def test_duplicates_do_not_consume_extra_descriptors():
    """Force an ack loss so the sender retransmits an already-delivered
    message; the receiver must filter it (exactly-once semantics)."""
    tb = Testbed("clan", loss_rate=0.25, seed=11)
    cs, ss = connected_endpoints(
        tb, reliability=Reliability.RELIABLE_DELIVERY)
    n = 30
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        for i in range(n):
            h.write(region, bytes([i, i, i, i]))
            segs = [h.segment(region, mh, 0, 4)]
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

    def server():
        h, vi, region, mh = yield from ss()
        seen = []
        for i in range(n):
            _desc, data = yield from simple_recv(h, vi, region, mh, 4)
            seen.append(data[0])
        result["seen"] = seen
        result["outstanding"] = vi.recv_q.outstanding

    run_pair(tb, client(), server())
    # every message delivered exactly once, in order
    assert result["seen"] == list(range(n))
    assert result["outstanding"] == 0


def test_transport_error_after_retries_exhausted():
    """100% loss: a reliable send must eventually fail, not hang."""
    spec = get_spec("clan").with_costs(rto=100.0, max_retries=3)
    tb = Testbed(spec, loss_rate=0.999999, seed=1)
    cs, ss = connected_endpoints(
        tb, reliability=Reliability.RELIABLE_DELIVERY)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        while not result.get("armed"):
            yield tb.sim.timeout(10.0)
        desc = yield from simple_send(h, vi, region, mh, b"doomed")
        result["status"] = desc.status

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))

    # The connection handshake rides the same lossy uplinks, so hold the
    # loss off until both sides are connected, then let it eat the data.
    channels = [tb.fabric.node(n).nic.port.out_channel
                for n in tb.node_names]
    rates = [ch.loss_rate for ch in channels]
    for ch in channels:
        ch.loss_rate = 0.0

    def arm_loss():
        yield tb.sim.timeout(3000.0)  # well past the cLAN connect cost
        for ch, rate in zip(channels, rates):
            ch.loss_rate = rate
        result["armed"] = True

    cproc = tb.spawn(client(), "client")
    tb.spawn(server(), "server")
    tb.spawn(arm_loss(), "arm-loss")
    tb.run(cproc)
    assert result["status"] is CompletionStatus.TRANSPORT_ERROR


def test_reliable_delivery_faster_or_equal_to_reception_for_sender():
    """Send completion: delivery acks fire before placement, reception
    acks after — the sender sees delivery first."""
    times = {}
    for level in (Reliability.RELIABLE_DELIVERY,
                  Reliability.RELIABLE_RECEPTION):
        tb = Testbed("clan")
        cs, ss = connected_endpoints(tb, reliability=level, bufsize=32768)
        out = {}

        def client():
            h, vi, region, mh = yield from cs()
            t0 = tb.now
            yield from simple_send(h, vi, region, mh, b"z" * 28672)
            out["t"] = tb.now - t0

        def server():
            h, vi, region, mh = yield from ss()
            yield from simple_recv(h, vi, region, mh, 28672)

        run_pair(tb, client(), server())
        times[level] = out["t"]
    assert times[Reliability.RELIABLE_DELIVERY] <= \
        times[Reliability.RELIABLE_RECEPTION]
