"""The paper's qualitative claims, asserted against the reproduction.

Every test here encodes a sentence from the paper's §4 evaluation; if
one fails, the reproduction has drifted from the published result.
These use reduced sweeps to stay fast; the full sweeps live in
``benchmarks/``.
"""

import pytest

from repro.via.constants import WaitMode
from repro.vibe import (
    TransferConfig,
    async_latency,
    base_bandwidth,
    base_latency,
    client_server,
    cq_overhead,
    memreg_sweep,
    multivi_bandwidth,
    multivi_latency,
    nondata_costs,
    reuse_latency,
    run_latency,
)

SMALL = [4, 256]
MID = [1024, 4096]
BIG = [12288, 28672]


@pytest.fixture(scope="module")
def table1():
    return {p: nondata_costs(p, repeats=2) for p in ("mvia", "bvia", "clan")}


def cost(table1, provider, op):
    return table1[provider].point(op).extra["cost_us"]


# ----- Table 1 orderings ---------------------------------------------------

def test_create_vi_ordering(table1):
    """M-VIA > BVIA > cLAN (93 / 28 / 3 us)."""
    assert cost(table1, "mvia", "create_vi") > cost(table1, "bvia", "create_vi") \
        > cost(table1, "clan", "create_vi")


def test_connection_cost_ordering(table1):
    """'the cost of establishing connections [is] extremely high in the
    cLAN implementation. This cost for M-VIA is higher than for BVIA.'"""
    mvia = cost(table1, "mvia", "establish_connection")
    bvia = cost(table1, "bvia", "establish_connection")
    clan = cost(table1, "clan", "establish_connection")
    assert mvia > clan > bvia
    assert clan > 2000  # "extremely high"
    assert bvia < 600


def test_cq_creation_most_expensive_on_bvia(table1):
    """'The cost of creating and destroying a CQ is higher in BVIA.'"""
    for op in ("create_cq", "destroy_cq"):
        assert cost(table1, "bvia", op) > cost(table1, "clan", op)
        assert cost(table1, "bvia", op) > cost(table1, "mvia", op)


def test_teardown_most_expensive_on_clan(table1):
    assert cost(table1, "clan", "teardown_connection") > \
        cost(table1, "bvia", "teardown_connection") > \
        cost(table1, "mvia", "teardown_connection")


# ----- Figs. 1 & 2: memory registration ------------------------------------

def test_bvia_registration_most_expensive_below_20kb():
    sweeps = {p: memreg_sweep(p) for p in ("mvia", "bvia", "clan")}
    for size in (4, 256, 1024, 4096, 12288):
        bvia = sweeps["bvia"].point(size).extra["register_us"]
        for other in ("mvia", "clan"):
            assert bvia > sweeps[other].point(size).extra["register_us"], size


def test_registration_cost_grows_with_pages(provider_name):
    sweep = memreg_sweep(provider_name)
    regs = [p.extra["register_us"] for p in sweep.points]
    for a, b in zip(regs, regs[1:]):
        assert b >= a - 1e-9  # non-decreasing (modulo float noise)
    assert regs[-1] > regs[0]


def test_deregistration_cheap_even_for_huge_regions(provider_name):
    """'memory deregistration ... is less than 16us for regions up to
    32 MB.'"""
    sweep = memreg_sweep(provider_name, sizes=[4096, 1 << 20, 32 << 20])
    for p in sweep.points:
        assert p.extra["deregister_us"] < 16.0
        assert p.extra["deregister_us"] < p.extra["register_us"] * 10


# ----- Fig. 3: base latency / bandwidth, polling ---------------------------

@pytest.fixture(scope="module")
def base_lat():
    sizes = SMALL + MID + BIG
    return {p: base_latency(p, sizes) for p in ("mvia", "bvia", "clan")}


@pytest.fixture(scope="module")
def base_bw():
    sizes = SMALL + MID + BIG
    return {p: base_bandwidth(p, sizes) for p in ("mvia", "bvia", "clan")}


def test_clan_has_lowest_latency(base_lat):
    """'cLAN provides the lowest latency.'"""
    for size in SMALL + MID:
        clan = base_lat["clan"].point(size).latency_us
        assert clan < base_lat["mvia"].point(size).latency_us
        assert clan < base_lat["bvia"].point(size).latency_us


def test_mvia_beats_bvia_short_loses_long(base_lat):
    """'M-VIA has a lower latency for short messages. BVIA outperforms
    M-VIA for longer messages because M-VIA requires extra data
    copies.'"""
    assert base_lat["mvia"].point(4).latency_us \
        < base_lat["bvia"].point(4).latency_us
    for size in BIG:
        assert base_lat["bvia"].point(size).latency_us \
            < base_lat["mvia"].point(size).latency_us


def test_latency_monotone_in_size(base_lat):
    for res in base_lat.values():
        lats = [p.latency_us for p in res.points]
        assert lats == sorted(lats)


def test_clan_bandwidth_best_midrange_bvia_best_large(base_bw):
    """'Bandwidth results indicate the superiority of cLAN ... for a
    large range of message sizes. However, for large messages, BVIA
    outperforms both cLAN and M-VIA.'"""
    for size in (256, 1024, 4096):
        clan = base_bw["clan"].point(size).bandwidth_mbs
        assert clan > base_bw["mvia"].point(size).bandwidth_mbs
        assert clan > base_bw["bvia"].point(size).bandwidth_mbs
    for size in BIG:
        bvia = base_bw["bvia"].point(size).bandwidth_mbs
        assert bvia > base_bw["clan"].point(size).bandwidth_mbs
        assert bvia > base_bw["mvia"].point(size).bandwidth_mbs


def test_polling_cpu_utilisation_is_100_percent(base_lat):
    """'The CPU utilization results show a 100% utilization when polling
    is used.'"""
    for res in base_lat.values():
        for p in res.points:
            assert p.cpu_send == pytest.approx(1.0, abs=1e-6)
            assert p.cpu_recv == pytest.approx(1.0, abs=1e-6)


# ----- Fig. 4: blocking ------------------------------------------------------

def test_blocking_latency_exceeds_polling(provider_name):
    poll = run_latency(provider_name, TransferConfig(size=4))
    block = run_latency(provider_name,
                        TransferConfig(size=4, mode=WaitMode.BLOCK))
    assert block.latency_us > poll.latency_us + 5.0
    assert block.cpu_send < 0.9


def test_mvia_highest_blocking_cpu_for_small_messages():
    """'Since M-VIA emulates VIA in the host operating system, it has a
    higher CPU utilization for small messages.'"""
    utils = {
        p: run_latency(p, TransferConfig(size=4, mode=WaitMode.BLOCK)).cpu_send
        for p in ("mvia", "bvia", "clan")
    }
    assert utils["mvia"] > utils["bvia"]
    assert utils["mvia"] > utils["clan"]


# ----- Fig. 5: buffer reuse ---------------------------------------------------

def test_bvia_latency_degrades_as_reuse_drops():
    """'changing the send and receive buffers has a significant effect
    on the latency of messages for BVIA' and 'the impact ... is more
    severe for large messages.'"""
    results = reuse_latency("bvia", sizes=[256, 28672],
                            reuse_levels=(1.0, 0.5, 0.0), iters=32)
    by_reuse = {r.params["reuse"]: r for r in results}
    for size in (256, 28672):
        l100 = by_reuse[1.0].point(size).latency_us
        l50 = by_reuse[0.5].point(size).latency_us
        l0 = by_reuse[0.0].point(size).latency_us
        assert l0 > l50 > l100
    small_delta = by_reuse[0.0].point(256).latency_us \
        - by_reuse[1.0].point(256).latency_us
    big_delta = by_reuse[0.0].point(28672).latency_us \
        - by_reuse[1.0].point(28672).latency_us
    assert big_delta > small_delta * 2


@pytest.mark.parametrize("provider", ["mvia", "clan"])
def test_controls_flat_under_reuse(provider):
    """'the results for M-VIA and cLAN do not change significantly with
    the percentage of buffer reuse.'"""
    results = reuse_latency(provider, sizes=[12288],
                            reuse_levels=(1.0, 0.0), iters=32)
    l100 = results[0].point(12288).latency_us
    l0 = results[1].point(12288).latency_us
    assert abs(l0 - l100) < 1.0


# ----- §4.3.3: completion queues ------------------------------------------------

def test_cq_overhead_bvia_2_to_5us_others_negligible():
    """'The impact of associating work queues with completion queues in
    M-VIA and cLAN was found to be negligible. For BVIA, 2-5 microsec
    overhead was observed.'"""
    for size in (4, 1024):
        bvia = cq_overhead("bvia", sizes=[size]).point(size)
        assert 2.0 <= bvia.extra["overhead_us"] <= 5.0
    for provider in ("mvia", "clan"):
        res = cq_overhead(provider, sizes=[4]).point(4)
        assert res.extra["overhead_us"] < 1.0


# ----- Fig. 6: multiple VIs ---------------------------------------------------

def test_bvia_latency_grows_with_vi_count_others_flat():
    """'with increase in the number of VIs, the latency of messages
    increases significantly [BVIA] ... results for M-VIA and cLAN do
    not show any significant change.'"""
    counts = (1, 8, 32)
    bvia = multivi_latency("bvia", vi_counts=counts)
    assert bvia.point(32).latency_us > bvia.point(1).latency_us + 30
    for provider in ("mvia", "clan"):
        res = multivi_latency(provider, vi_counts=counts)
        assert abs(res.point(32).latency_us - res.point(1).latency_us) < 1.0


def test_bvia_bandwidth_falls_with_vi_count():
    counts = (1, 16)
    res = multivi_bandwidth("bvia", size=4096, vi_counts=counts)
    assert res.point(16).bandwidth_mbs < res.point(1).bandwidth_mbs


# ----- Fig. 7: client-server ----------------------------------------------------

@pytest.fixture(scope="module")
def fig7():
    replies = [16, 1024, 28672]
    return {p: client_server(p, 16, replies, transactions=16)
            for p in ("mvia", "bvia", "clan")}


def test_clan_most_transactions(fig7):
    """'cLAN implementation outperforms BVIA and M-VIA.'"""
    for reply in (16, 1024):
        clan = fig7["clan"].point(reply).tps
        assert clan > fig7["mvia"].point(reply).tps
        assert clan > fig7["bvia"].point(reply).tps


def test_mvia_bvia_cross_between_short_and_mid(fig7):
    """'M-VIA outperforms BVIA for short ... messages but is
    outperformed by BVIA for mid-size messages.'"""
    assert fig7["mvia"].point(16).tps > fig7["bvia"].point(16).tps
    assert fig7["bvia"].point(1024).tps > fig7["mvia"].point(1024).tps


def test_larger_requests_lower_tps():
    small = client_server("clan", 16, [1024], transactions=12)
    large = client_server("clan", 256, [1024], transactions=12)
    assert large.point(1024).tps < small.point(1024).tps


# ----- §3.2.5: asynchronous handling ------------------------------------------

def test_async_policies_differ_across_providers():
    delays = (200.0,)
    mvia = async_latency("mvia", delays=delays).point(200.0)
    bvia = async_latency("bvia", delays=delays).point(200.0)
    clan = async_latency("clan", delays=delays).point(200.0)
    assert mvia.extra["delivered"]          # kernel buffered
    assert not bvia.extra["delivered"]      # dropped
    assert clan.extra["delivered"]          # NAK + retry
    assert clan.extra["retransmissions"] >= 1
    assert clan.latency_us > mvia.latency_us  # the retry backoff costs
