"""Cross-cutting integration: programming-model layers on tiered
fabrics — the full stack from DES kernel to DSM, across a spine."""

import pytest

from repro.layers import MsgEndpoint, RpcClient, RpcServer, connect_group
from repro.layers.dsm import connect_mesh
from repro.providers import Testbed

GROUPS = (("a0", "a1"), ("b0", "b1"))


def test_dsm_spans_leaves():
    """A DSM mesh across two leaf switches stays coherent."""
    names = ["a0", "a1", "b0", "b1"]
    tb = Testbed("clan", leaf_groups=GROUPS)
    setups = connect_mesh(tb, names, npages=4)
    shared = {}

    def writer(i):
        node = yield from setups[i]
        yield from node.write(i * 4096, f"node-{i}".encode())
        shared[f"w{i}"] = True

    def reader():
        node = yield from setups[3]
        yield from node.write(3 * 4096, b"node-3")
        shared["w3"] = True
        while not all(f"w{i}" in shared for i in range(4)):
            yield tb.sim.timeout(50.0)
        out = []
        for i in range(4):
            data = yield from node.read(i * 4096, 6)
            out.append(data)
        shared["all"] = out

    procs = [tb.spawn(writer(i)) for i in range(3)]
    procs.append(tb.spawn(reader()))
    for p in procs:
        tb.run(p)
    assert shared["all"] == [b"node-0", b"node-1", b"node-2", b"node-3"]


def test_collectives_span_leaves():
    import struct

    names = ["a0", "a1", "b0", "b1"]
    tb = Testbed("iba", leaf_groups=GROUPS)
    setups = connect_group(tb, names)
    out = {}

    def add(x, y):
        return struct.pack(">Q", struct.unpack(">Q", x)[0]
                           + struct.unpack(">Q", y)[0])

    def app(i):
        g = yield from setups[i]
        total = yield from g.allreduce(struct.pack(">Q", 10 + i), add)
        data = yield from g.bcast(b"spanning" if g.rank == 2 else None,
                                  root=2)
        out[i] = (struct.unpack(">Q", total)[0], data)

    procs = [tb.spawn(app(i)) for i in range(4)]
    for p in procs:
        tb.run(p)
    for i in range(4):
        assert out[i] == (10 + 11 + 12 + 13, b"spanning")


def test_rpc_across_the_spine():
    tb = Testbed("mvia", leaf_groups=GROUPS)
    out = {}

    def client():
        h = tb.open("a0", "client")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        yield from h.connect(vi, "b1", 5)
        rpc = RpcClient(msg)
        out["echo"] = yield from rpc.call(0, b"over-the-top")

    def server():
        h = tb.open("b1", "server")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)
        rpc = RpcServer(msg)
        rpc.register("echo", lambda b: b)
        yield from rpc.serve(max_calls=1)

    cp = tb.spawn(client())
    sp = tb.spawn(server())
    tb.run(cp)
    tb.run(sp)
    assert out["echo"] == b"over-the-top"


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main

    main(["--providers", "clan", "report", "--out",
          str(tmp_path / "rep"), "--quick"])
    out = capsys.readouterr().out
    assert "report written" in out
    assert (tmp_path / "rep" / "REPORT.md").exists()
