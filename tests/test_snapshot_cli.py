"""CLI surface of the checkpoint/restore subsystem.

`vibe run --warm-start`, `vibe cluster --warm-start/--checkpoint-dir`,
and `vibe chaos --rewind` are exercised through :func:`repro.cli.main`
— the same entry CI drives — plus the :func:`rewind_scenario` API
underneath.  The byte-identity claims (cold report == warm report ==
resumed report) are asserted on the emitted JSON files, mirroring the
CI ``snap`` job's ``cmp`` steps.
"""

import json

import pytest

from repro import snap
from repro.cli import main
from repro.faults.chaos import rewind_scenario
from repro.faults.scenarios import get_scenario

_CLUSTER_ARGS = ["cluster", "--quick", "--provider", "mvia",
                 "--nodes", "4", "--requests", "4"]


def _cluster_json(tmp_path, name, extra):
    out = tmp_path / name
    main(_CLUSTER_ARGS + ["--json-out", str(out)] + extra)
    return out.read_bytes()


def test_cluster_warm_start_byte_identical(tmp_path, capsys):
    cold = _cluster_json(tmp_path, "cold.json", [])
    warm = _cluster_json(tmp_path, "warm.json", ["--warm-start"])
    assert warm == cold
    # the warm pool is torn down with the sweep
    assert snap.pool_stats() == {"entries": 0, "hits": 0, "builds": 0}


def test_cluster_checkpoint_dir_resumes_byte_identical(tmp_path, capsys):
    ckpt = tmp_path / "ckpt"
    cold = _cluster_json(tmp_path, "cold.json", [])
    first = _cluster_json(tmp_path, "a.json",
                          ["--checkpoint-dir", str(ckpt)])
    cells = sorted(ckpt.glob("cell-*.json"))
    assert cells, "no cells persisted"
    # every persisted cell is valid JSON with the point payload
    for cell in cells:
        assert "point" in json.loads(cell.read_text())
    resumed = _cluster_json(tmp_path, "b.json",
                            ["--checkpoint-dir", str(ckpt)])
    assert first == cold
    assert resumed == cold


def test_run_warm_start_same_output(capsys):
    main(["--providers", "mvia", "run", "base_latency"])
    cold = capsys.readouterr().out
    main(["--providers", "mvia", "run", "base_latency", "--warm-start"])
    warm = capsys.readouterr().out
    assert warm == cold


# ---------------------------------------------------------------------------
# chaos rewind
# ---------------------------------------------------------------------------

def test_rewind_scenario_api():
    rw = rewind_scenario("mvia", get_scenario("loss_burst"), quick=True)
    assert rw.matches_cold
    assert rw.checkpoint_bytes < 4096, \
        "replay checkpoints store a recipe, not the object graph"
    assert rw.events_traced > 0
    assert rw.result.ok
    assert "loss_burst" in rw.summary() and "ok" in rw.summary()


def test_rewind_refuses_cluster_scenarios():
    with pytest.raises(ValueError):
        rewind_scenario("mvia", get_scenario("many_clients"), quick=True)


def test_chaos_rewind_cli(capsys):
    main(["--providers", "mvia", "chaos", "--rewind", "--quick",
          "--scenario", "loss_burst", "--scenario", "link_flap"])
    out = capsys.readouterr().out
    assert "chaos rewind: 2 scenarios x 1 providers" in out
    assert "loss_burst" in out and "link_flap" in out
    assert "PASS" in out
    assert "FAIL" not in out


def test_chaos_rewind_cli_unknown_scenario_fails():
    with pytest.raises(KeyError):
        main(["chaos", "--rewind", "--scenario", "no_such_scenario"])
