"""Provider tests: RDMA write / read, protection, immediate data."""

import pytest

from repro.providers import Testbed, get_spec
from repro.via import (
    CompletionStatus,
    Descriptor,
    VipNotSupported,
)

from conftest import connected_endpoints, run_pair, run_proc


def _exchange(tb, enable_read=False):
    """Set up endpoints that also export their buffer for RDMA."""
    xchg = {}
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        xchg["client"] = (h, vi, region, mh)
        while "server" not in xchg:
            yield tb.sim.timeout(1.0)
        return xchg

    def server():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi()
        region = h.alloc(4096)
        mh = yield from h.register_mem(region, enable_rdma_write=True,
                                       enable_rdma_read=enable_read)
        req = yield from h.connect_wait(9)
        yield from h.accept(req, vi)
        xchg["server"] = (h, vi, region, mh)

    return client, server, xchg


def test_rdma_write_places_data(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        while "target" not in result:
            yield tb.sim.timeout(1.0)
        raddr, rhid = result["target"]
        h.write(region, b"rdma-payload")
        segs = [h.segment(region, mh, 0, 12)]
        desc = Descriptor.rdma_write(segs, raddr + 50, rhid)
        yield from h.post_send(vi, desc)
        done = yield from h.send_wait(vi)
        result["status"] = done.status
        result["done_at"] = tb.now

    def server():
        h, vi, region, mh = yield from ss()
        result["target"] = (region.base, mh.handle_id)
        # no receive descriptor involved: poll memory for the data
        while h.read(region, 12, 50) != b"rdma-payload":
            yield tb.sim.timeout(5.0)
        result["data"] = h.read(region, 12, 50)

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.SUCCESS
    assert result["data"] == b"rdma-payload"


def test_rdma_write_with_immediate_consumes_descriptor(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        while "target" not in result:
            yield tb.sim.timeout(1.0)
        raddr, rhid = result["target"]
        h.write(region, b"notify!!")
        segs = [h.segment(region, mh, 0, 8)]
        desc = Descriptor.rdma_write(segs, raddr, rhid, immediate=321)
        yield from h.post_send(vi, desc)
        yield from h.send_wait(vi)

    def server():
        h, vi, region, mh = yield from ss()
        yield from h.post_recv(vi, Descriptor.recv([]))
        result["target"] = (region.base, mh.handle_id)
        desc = yield from h.recv_wait(vi)
        result["imm"] = desc.control.immediate
        result["len"] = desc.control.length
        result["data"] = h.read(region, 8)

    run_pair(tb, client(), server())
    assert result["imm"] == 321
    assert result["len"] == 8
    assert result["data"] == b"notify!!"


def test_rdma_write_protection_error(provider_name):
    """Writing outside the remote handle fails the sender's descriptor
    on reliable VIs (NAK) and leaves target memory untouched."""
    from repro.via.constants import Reliability

    spec = get_spec(provider_name)
    tb = Testbed(spec)
    result = {}
    cs, ss = connected_endpoints(
        tb, reliability=Reliability.RELIABLE_DELIVERY)

    def client():
        h, vi, region, mh = yield from cs()
        while "target" not in result:
            yield tb.sim.timeout(1.0)
        raddr, rhid = result["target"]
        h.write(region, b"overflow")
        segs = [h.segment(region, mh, 0, 8)]
        # beyond the end of the 4096-byte remote registration
        desc = Descriptor.rdma_write(segs, raddr + 4090, rhid)
        yield from h.post_send(vi, desc)
        done = yield from h.send_wait(vi)
        result["status"] = done.status

    def server():
        h, vi, region, mh = yield from ss()
        result["target"] = (region.base, mh.handle_id)
        while "status" not in result:
            yield tb.sim.timeout(5.0)

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.PROTECTION_ERROR


def test_rdma_read_roundtrip():
    spec = get_spec("clan").with_choices(supports_rdma_read=True)
    tb = Testbed(spec)
    result = {}
    cs, _ = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        while "target" not in result:
            yield tb.sim.timeout(1.0)
        raddr, rhid = result["target"]
        segs = [h.segment(region, mh, 0, 11)]
        desc = Descriptor.rdma_read(segs, raddr + 100, rhid)
        yield from h.post_send(vi, desc)
        done = yield from h.send_wait(vi)
        result["status"] = done.status
        result["data"] = h.read(region, 11)

    def server():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi()
        region = h.alloc(4096)
        mh = yield from h.register_mem(region, enable_rdma_read=True)
        h.write(region, b"read-me-now", 100)
        req = yield from h.connect_wait(9)
        yield from h.accept(req, vi)
        result["target"] = (region.base, mh.handle_id)
        while "status" not in result:
            yield tb.sim.timeout(5.0)

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.SUCCESS
    assert result["data"] == b"read-me-now"


def test_rdma_read_protection_nak():
    spec = get_spec("clan").with_choices(supports_rdma_read=True)
    tb = Testbed(spec)
    result = {}
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        while "target" not in result:
            yield tb.sim.timeout(1.0)
        raddr, rhid = result["target"]
        segs = [h.segment(region, mh, 0, 8)]
        # remote handle has rdma_read disabled
        desc = Descriptor.rdma_read(segs, raddr, rhid)
        yield from h.post_send(vi, desc)
        done = yield from h.send_wait(vi)
        result["status"] = done.status

    def server():
        h, vi, region, mh = yield from ss()   # read NOT enabled
        result["target"] = (region.base, mh.handle_id)
        while "status" not in result:
            yield tb.sim.timeout(5.0)

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.PROTECTION_ERROR


def test_rdma_read_unsupported_raises(provider_name):
    tb = Testbed(provider_name)  # none of the stock providers support it
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        segs = [h.segment(region, mh, 0, 8)]
        with pytest.raises(VipNotSupported):
            yield from h.post_send(vi, Descriptor.rdma_read(segs, 0x1000, 1))

    def server():
        h, vi, region, mh = yield from ss()

    run_pair(tb, client(), server())


def test_large_rdma_write_fragments(provider_name):
    tb = Testbed(provider_name)
    size = 10000
    result = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        region = h.alloc(size)
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, "node1", 9)
        while "target" not in result:
            yield tb.sim.timeout(1.0)
        raddr, rhid = result["target"]
        payload = bytes(i % 253 for i in range(size))
        h.write(region, payload)
        segs = [h.segment(region, mh, 0, size)]
        yield from h.post_send(vi, Descriptor.rdma_write(segs, raddr, rhid))
        yield from h.send_wait(vi)
        result["payload"] = payload

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        region = h.alloc(size)
        mh = yield from h.register_mem(region, enable_rdma_write=True)
        req = yield from h.connect_wait(9)
        yield from h.accept(req, vi)
        result["target"] = (region.base, mh.handle_id)
        # an unreliable RDMA write completes at the *sender* before the
        # last fragment lands; the application-visible contract is to
        # poll target memory (or use immediate data), so poll the tail
        expected_tail = bytes((size - 1) % 253 for _ in range(1))
        while h.read(region, 1, size - 1) != expected_tail:
            yield tb.sim.timeout(5.0)
        result["data"] = h.read(region, size)

    run_pair(tb, client(), server())
    assert result["data"] == result["payload"]
