"""Unit tests for measurement helpers."""

import pytest

from repro.sim import BusyTracker, Counter, TimeWeighted


def test_busy_tracker_accumulates():
    bt = BusyTracker()
    bt.charge(2.0)
    bt.charge(3.0)
    assert bt.total == 5.0


def test_busy_tracker_rejects_negative():
    with pytest.raises(ValueError):
        BusyTracker().charge(-1.0)


def test_busy_tracker_snapshots():
    bt = BusyTracker()
    bt.charge(2.0)
    bt.snapshot("a")
    bt.charge(3.0)
    assert bt.since("a") == 3.0
    assert bt.since("missing") == 5.0


def test_time_weighted_mean():
    tw = TimeWeighted(now=0.0, value=0.0)
    tw.update(10.0, 4.0)   # 0 for 10us
    tw.update(20.0, 0.0)   # 4 for 10us
    assert tw.mean(20.0) == pytest.approx(2.0)
    assert tw.max == 4.0


def test_time_weighted_rejects_backwards_time():
    tw = TimeWeighted(now=5.0)
    with pytest.raises(ValueError):
        tw.update(4.0, 1.0)


def test_counter():
    c = Counter()
    c.inc("x")
    c.inc("x", 2)
    assert c.get("x") == 3
    assert c.get("y") == 0
    c.reset()
    assert c.get("x") == 0
