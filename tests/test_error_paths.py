"""Error-path coverage: the unhappy branches the benchmarks route around.

Four clusters, mirroring where the stack can fail:

* ``loss_goodput`` under heavy loss — the ``VipTimeout`` break on the
  receiver and the retransmission recovery on the reliable levels;
* transport exhaustion — a black wire drives a reliable send through
  all its retries into ``TRANSPORT_ERROR`` and the VI into ERROR,
  after which further posts raise ``VipStateError``;
* VI/connection state machine — ``VipStateError`` on illegal
  transitions and operations in the wrong state;
* memory protection — every ``VipProtectionError`` raise in
  ``via/memory.py``, plus the engine's stale-fragment/duplicate
  exactly-once filter.
"""

import pytest

from repro.providers import Testbed
from repro.providers.engine import DataFrag
from repro.via import Descriptor
from repro.via.constants import CompletionStatus, Reliability, ViState
from repro.via.errors import VipProtectionError, VipStateError
from repro.vibe.reliability import loss_goodput

from conftest import connected_endpoints, run_pair, run_proc, set_wire_loss

# empirically chosen: every handshake survives (it has no retransmission)
# and the unreliable stream loses at least one message mid-run
_LOSSY_SEED = 3


def test_loss_goodput_heavy_loss_timeout_branch():
    res = loss_goodput("mvia", size=1024, count=8, loss_rate=0.25,
                       seed=_LOSSY_SEED)
    by_level = {p.param: p.extra for p in res.points}
    unrel = by_level["unreliable"]
    # the receiver timed out waiting for a lost datagram and gave up
    assert unrel["delivered"] < unrel["sent"]
    assert unrel["retransmissions"] == 0
    for level in ("reliable_delivery", "reliable_reception"):
        rel = by_level[level]
        # same wire, but the recovery machinery hides the losses
        assert rel["delivered"] == rel["sent"]
        assert rel["retransmissions"] > 0


def _connected(provider="mvia", reliability=None, check=True,
               loss_rate=None):
    """Connected pair; ``loss_rate`` arms the retransmission machinery
    (a construction-time flag) but the handshake itself runs lossless."""
    tb = Testbed(provider, check=check, loss_rate=loss_rate)
    if loss_rate is not None:
        set_wire_loss(tb, 0.0)
    c_setup, s_setup = connected_endpoints(tb, reliability=reliability)
    got = {}

    def c():
        got["c"] = yield from c_setup()

    def s():
        got["s"] = yield from s_setup()

    run_pair(tb, c(), s())
    return tb, got["c"], got["s"]


def test_transport_exhaustion_errors_the_vi():
    """All retries lost: TRANSPORT_ERROR writeback, VI -> ERROR, and a
    further post is refused with VipStateError."""
    tb, (hc, vic, rc, mhc), _ = _connected(
        reliability=Reliability.RELIABLE_DELIVERY, loss_rate=0.1)
    set_wire_loss(tb, 1.0)
    segs = [hc.segment(rc, mhc, 0, 64)]

    def client():
        yield from hc.post_send(vic, Descriptor.send(segs))
        desc = yield from hc.send_wait(vic)
        return desc

    desc = run_proc(tb.sim, client())
    assert desc.status is CompletionStatus.TRANSPORT_ERROR
    assert vic.state is ViState.ERROR
    with pytest.raises(VipStateError, match="needs connected"):
        run_proc(tb.sim, hc.post_send(vic, Descriptor.send(segs)))


def test_connect_on_connected_vi_raises():
    tb, (hc, vic, _rc, _mhc), _ = _connected()
    with pytest.raises(VipStateError, match="connected"):
        run_proc(tb.sim, hc.connect(vic, tb.node_names[1], 77))


def test_illegal_vi_transition_raises():
    tb = Testbed("mvia")
    h = tb.open(tb.node_names[0], "app")
    vi = run_proc(tb.sim, h.create_vi())
    with pytest.raises(VipStateError, match="illegal transition"):
        vi.to_state(ViState.DISCONNECTED)


def test_memory_protection_raises():
    tb = Testbed("mvia")
    h = tb.open(tb.node_names[0], "app")
    p = tb.provider(tb.node_names[0])
    region = h.alloc(4096)
    with pytest.raises(VipProtectionError, match="positive"):
        p.registry.register(region.base, 0, tag=h.ptag)
    mh = run_proc(tb.sim, h.register_mem(region))
    with pytest.raises(VipProtectionError, match="unknown memory handle"):
        p.registry.lookup(mh.handle_id + 1000)
    with pytest.raises(VipProtectionError, match="tag mismatch"):
        p.registry.check_local(region.base, 64, mh, tag=h.ptag + 1)
    with pytest.raises(VipProtectionError, match="outside handle"):
        p.registry.check_local(region.base + 4096 - 8, 64, mh, tag=h.ptag)
    with pytest.raises(VipProtectionError, match="RDMA read disabled"):
        p.registry.check_rdma_target(region.base, 64, mh.handle_id,
                                     write=False)
    run_proc(tb.sim, h.deregister_mem(mh))
    with pytest.raises(VipStateError, match="not registered"):
        p.registry.deregister(mh)
    with pytest.raises(VipProtectionError, match="deregistered"):
        p.registry.check_local(region.base, 64, mh, tag=h.ptag)


def test_rdma_write_disabled_target_raises():
    tb = Testbed("mvia")
    h = tb.open(tb.node_names[0], "app")
    p = tb.provider(tb.node_names[0])
    region = h.alloc(4096)
    mh = run_proc(tb.sim, h.register_mem(region, enable_rdma_write=False))
    with pytest.raises(VipProtectionError, match="RDMA write disabled"):
        p.registry.check_rdma_target(region.base, 64, mh.handle_id,
                                     write=True)


def _frag(seq, frag, nfrags, dst_vi, data=b"x" * 8, offset=0):
    return DataFrag(src_vi=0, dst_vi=dst_vi, seq=seq, frag=frag,
                    nfrags=nfrags, offset=offset, total_len=nfrags * len(data),
                    data=data, op="send")


def test_stale_fragment_is_dropped_not_delivered():
    """A non-first fragment with no reassembly in progress (its head was
    dropped or NAKed) must be discarded without touching a descriptor."""
    tb, _, (hs, vis, rs, mhs) = _connected(check=False)
    eng = tb.provider(tb.node_names[1]).engine
    run_proc(tb.sim, hs.post_recv(
        vis, Descriptor.recv([hs.segment(rs, mhs, 0, 64)])))
    before = eng.drops
    assert vis.rx_state is None
    run_proc(tb.sim, eng._rx_send(vis, _frag(seq=0, frag=1, nfrags=2,
                                             dst_vi=vis.vi_id)))
    assert eng.drops == before + 1
    assert vis.recv_q.outstanding == 1          # descriptor untouched
    assert vis.recv_q.claimable == 1
    assert eng.messages_received == 0


def test_duplicate_message_refiltered_and_reacked():
    """Exactly-once: a full retransmission of an already-accepted message
    is dropped (and re-acked on reliable VIs) instead of consuming a
    fresh descriptor."""
    tb, (hc, vic, rc, mhc), (hs, vis, rs, mhs) = _connected(
        reliability=Reliability.RELIABLE_DELIVERY, check=False)

    def c():
        hc.write(rc, b"a" * 64)
        yield from hc.post_send(vic, Descriptor.send(
            [hc.segment(rc, mhc, 0, 64)]))
        yield from hc.send_wait(vic)

    def s():
        yield from hs.post_recv(vis, Descriptor.recv(
            [hs.segment(rs, mhs, 0, 64)]))
        yield from hs.recv_wait(vis)

    run_pair(tb, c(), s())
    eng = tb.provider(tb.node_names[1]).engine
    assert vis.expected_rx_seq == 1
    run_proc(tb.sim, hs.post_recv(vis, Descriptor.recv(
        [hs.segment(rs, mhs, 0, 64)])))
    before = eng.drops
    # replay the whole message (fragment 0 of seq 0) as a lost-ack
    # retransmission would
    run_proc(tb.sim, eng._rx_send(vis, _frag(seq=0, frag=0, nfrags=1,
                                             dst_vi=vis.vi_id)))
    tb.run()                                    # drain the re-ack
    assert eng.drops == before + 1
    assert vis.recv_q.outstanding == 1          # nothing consumed
    assert eng.messages_received == 1           # still exactly once
