"""Provider tests: the send/receive data path on all three stacks."""

import pytest

from repro.providers import Testbed
from repro.via import (
    CompletionStatus,
    Descriptor,
    VipDescriptorError,
    VipErrorResource,
    VipInvalidParameter,
    VipProtectionError,
)
from repro.via.constants import WaitMode

from conftest import connected_endpoints, run_pair, simple_recv, simple_send


def test_pingpong_data_integrity(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    payload = bytes(range(256)) * 8  # 2 KiB pattern
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        yield from simple_send(h, vi, region, mh, payload)

    def server():
        h, vi, region, mh = yield from ss()
        desc, data = yield from simple_recv(h, vi, region, mh, 4096)
        result["data"] = data
        result["status"] = desc.status

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.SUCCESS
    assert result["data"] == payload


def test_zero_length_message(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        yield from h.post_send(vi, Descriptor.send([]))
        yield from h.send_wait(vi)

    def server():
        h, vi, region, mh = yield from ss()
        yield from h.post_recv(vi, Descriptor.recv([]))
        desc = yield from h.recv_wait(vi)
        result["len"] = desc.control.length
        result["status"] = desc.status

    run_pair(tb, client(), server())
    assert result == {"len": 0, "status": CompletionStatus.SUCCESS}


def test_immediate_data_delivery(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        yield from h.post_send(vi, Descriptor.send([], immediate=0xBEEF))
        yield from h.send_wait(vi)

    def server():
        h, vi, region, mh = yield from ss()
        yield from h.post_recv(vi, Descriptor.recv([]))
        desc = yield from h.recv_wait(vi)
        result["imm"] = desc.control.immediate

    run_pair(tb, client(), server())
    assert result["imm"] == 0xBEEF


def test_multi_segment_gather_scatter(provider_name):
    """Gather from 3 send segments, scatter into 2 receive segments."""
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        h.write(region, b"AAAA", 0)
        h.write(region, b"BBBBBB", 100)
        h.write(region, b"CC", 200)
        segs = [h.segment(region, mh, 0, 4),
                h.segment(region, mh, 100, 6),
                h.segment(region, mh, 200, 2)]
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 5),
                h.segment(region, mh, 500, 100)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        desc = yield from h.recv_wait(vi)
        result["len"] = desc.control.length
        result["first"] = h.read(region, 5, 0)
        result["rest"] = h.read(region, 7, 500)

    run_pair(tb, client(), server())
    assert result["len"] == 12
    assert result["first"] == b"AAAAB"
    assert result["rest"] == b"BBBBBCC"


def test_length_error_when_message_exceeds_descriptor(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        yield from simple_send(h, vi, region, mh, b"x" * 512)

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 100)]  # too small
        yield from h.post_recv(vi, Descriptor.recv(segs))
        desc = yield from h.recv_wait(vi)
        result["status"] = desc.status
        result["len"] = desc.control.length

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.LENGTH_ERROR
    assert result["len"] == 0


def test_fifo_completion_order_across_many_messages(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    n = 16
    got = []

    def client():
        h, vi, region, mh = yield from cs()
        for i in range(n):
            h.write(region, bytes([i]), i)
            segs = [h.segment(region, mh, i, 1)]
            yield from h.post_send(vi, Descriptor.send(segs))
        for _ in range(n):
            yield from h.send_wait(vi)

    def server():
        h, vi, region, mh = yield from ss()
        descs = []
        for i in range(n):
            segs = [h.segment(region, mh, 100 + i, 1)]
            d = Descriptor.recv(segs)
            descs.append(d)
            yield from h.post_recv(vi, d)
        for i in range(n):
            desc = yield from h.recv_wait(vi)
            assert desc is descs[i], "completion out of FIFO order"
            got.append(h.read(region, 1, 100 + i)[0])

    run_pair(tb, client(), server())
    assert got == list(range(n))


def test_large_message_fragments_and_reassembles(provider_name):
    tb = Testbed(provider_name)
    size = 20000  # > GigE MTU, multiple fragments
    cs, ss = connected_endpoints(tb, bufsize=size)
    payload = bytes(i % 251 for i in range(size))
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        yield from simple_send(h, vi, region, mh, payload)

    def server():
        h, vi, region, mh = yield from ss()
        desc, data = yield from simple_recv(h, vi, region, mh, size)
        result["data"] = data

    run_pair(tb, client(), server())
    assert result["data"] == payload


def test_post_send_rejects_wrong_op(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        with pytest.raises(VipInvalidParameter):
            yield from h.post_send(vi, Descriptor.recv([]))
        with pytest.raises(VipInvalidParameter):
            yield from h.post_recv(vi, Descriptor.send([]))

    def server():
        h, vi, region, mh = yield from ss()

    run_pair(tb, client(), server())


def test_post_rejects_unregistered_segment(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        other = h.alloc(64)  # never registered
        from repro.via import DataSegment

        with pytest.raises(VipProtectionError):
            yield from h.post_send(
                vi, Descriptor.send([DataSegment(other.base, 64, mh)])
            )

    def server():
        h, vi, region, mh = yield from ss()

    run_pair(tb, client(), server())


def test_max_transfer_size_enforced(provider_name):
    tb = Testbed(provider_name)
    limit = tb.provider("node0").max_transfer_size
    cs, ss = connected_endpoints(tb, bufsize=limit + 4096)

    def client():
        h, vi, region, mh = yield from cs()
        segs = [h.segment(region, mh, 0, limit + 1)]
        with pytest.raises(VipDescriptorError, match="maximum transfer"):
            yield from h.post_send(vi, Descriptor.send(segs))

    def server():
        h, vi, region, mh = yield from ss()

    run_pair(tb, client(), server())


def test_send_queue_depth_enforced(provider_name):
    from repro.providers import get_spec

    tb = Testbed(get_spec(provider_name).with_costs(max_outstanding=2))
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        segs = [h.segment(region, mh, 0, 4)]
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.post_send(vi, Descriptor.send(segs))
        if vi.send_q.outstanding >= 2:
            with pytest.raises(VipErrorResource, match="full"):
                yield from h.post_send(vi, Descriptor.send(segs))

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 4)]
        for _ in range(2):
            yield from h.post_recv(vi, Descriptor.recv(segs))

    run_pair(tb, client(), server())


def test_cq_wait_returns_queue_and_descriptor(provider_name):
    tb = Testbed(provider_name)
    payload = b"through-the-cq"
    result = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, "node1", 9)
        yield from simple_send(h, vi, region, mh, payload)

    def server():
        h = tb.open("node1", "server")
        cq = yield from h.create_cq()
        vi = yield from h.create_vi(recv_cq=cq)
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, len(payload))]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(9)
        yield from h.accept(req, vi)
        wq, desc = yield from h.cq_wait(cq)
        result["wq_kind"] = wq.kind
        result["data"] = h.read(region, desc.control.length)

    run_pair(tb, client(), server())
    assert result["wq_kind"] == "recv"
    assert result["data"] == payload


def test_blocking_wait_mode_works(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        yield from simple_send(h, vi, region, mh, b"block-me")

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        desc = yield from h.recv_wait(vi, WaitMode.BLOCK)
        result["data"] = h.read(region, desc.control.length)
        result["stime"] = h.actor.rusage.stime

    run_pair(tb, client(), server())
    assert result["data"] == b"block-me"
    assert result["stime"] > 0  # the wakeup was charged as system time


def test_send_done_polls_nonblocking(provider_name):
    tb = Testbed(provider_name)
    cs, ss = connected_endpoints(tb)

    def client():
        h, vi, region, mh = yield from cs()
        assert (yield from h.send_done(vi)) is None
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_send(vi, Descriptor.send(segs))
        # poll until done
        while True:
            desc = yield from h.send_done(vi)
            if desc is not None:
                return

    def server():
        h, vi, region, mh = yield from ss()
        segs = [h.segment(region, mh, 0, 8)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.recv_wait(vi)

    run_pair(tb, client(), server())
