"""Unit tests for the NIC model: translation cache and DMA engine."""

import pytest

from repro.hw.nic import NIC, DMAEngine, TranslationCache
from repro.sim import Simulator

from conftest import run_proc


def test_tlb_hit_miss_accounting():
    tlb = TranslationCache(entries=2)
    assert tlb.lookup(1) is None
    tlb.insert(1, 101)
    assert tlb.lookup(1) == 101
    assert tlb.hits == 1 and tlb.misses == 1
    assert tlb.hit_rate == pytest.approx(0.5)


def test_tlb_lru_eviction():
    tlb = TranslationCache(entries=2)
    tlb.insert(1, 101)
    tlb.insert(2, 102)
    tlb.lookup(1)            # refresh 1; 2 becomes LRU
    tlb.insert(3, 103)       # evicts 2
    assert tlb.evictions == 1
    assert tlb.lookup(2) is None
    assert tlb.lookup(1) == 101
    assert tlb.lookup(3) == 103


def test_tlb_invalidate_and_flush():
    tlb = TranslationCache(entries=4)
    tlb.insert(1, 101)
    tlb.invalidate(1)
    assert tlb.lookup(1) is None
    tlb.insert(2, 102)
    tlb.flush()
    assert len(tlb) == 0


def test_tlb_insert_existing_updates():
    tlb = TranslationCache(entries=2)
    tlb.insert(1, 101)
    tlb.insert(1, 201)
    assert tlb.lookup(1) == 201
    assert len(tlb) == 1


def test_tlb_requires_capacity():
    with pytest.raises(ValueError):
        TranslationCache(entries=0)


def test_dma_transfer_time():
    sim = Simulator()
    dma = DMAEngine(sim, bandwidth=100.0, per_transfer_cost=1.0)
    assert dma.transfer_time(1000) == pytest.approx(11.0)

    def body():
        yield from dma.transfer(500)

    run_proc(sim, body())
    assert sim.now == pytest.approx(6.0)
    assert dma.transfers == 1 and dma.bytes_moved == 500


def test_dma_serializes_transfers():
    sim = Simulator()
    dma = DMAEngine(sim, bandwidth=100.0)
    done = []

    def body(n):
        yield from dma.transfer(1000)
        done.append((n, sim.now))

    sim.process(body(0))
    sim.process(body(1))
    sim.run()
    assert done == [(0, pytest.approx(10.0)), (1, pytest.approx(20.0))]


def test_dma_zero_bytes_costs_setup_only():
    sim = Simulator()
    dma = DMAEngine(sim, bandwidth=100.0, per_transfer_cost=0.5)

    def body():
        yield from dma.transfer(0)

    run_proc(sim, body())
    assert sim.now == pytest.approx(0.5)


def test_dma_rejects_negative():
    sim = Simulator()
    dma = DMAEngine(sim, bandwidth=100.0)

    def body():
        yield from dma.transfer(-1)

    with pytest.raises(ValueError):
        run_proc(sim, body())
    with pytest.raises(ValueError):
        DMAEngine(sim, bandwidth=0.0)


def test_nic_requires_port_and_handler():
    sim = Simulator()
    nic = NIC(sim, "n0")
    from repro.hw.link import Packet

    with pytest.raises(RuntimeError):
        run_proc(sim, nic.transmit(Packet("a", "b", "d", 1)))
    with pytest.raises(RuntimeError):
        nic.deliver(Packet("a", "b", "d", 1))


def test_nic_counts_traffic():
    from repro.hw import Fabric, MYRINET, Packet

    sim = Simulator()
    fab = Fabric(sim, MYRINET)
    got = []
    fab.node("node1").nic.rx_handler = got.append

    def body():
        yield from fab.node("node0").nic.transmit(
            Packet("node0", "node1", "d", 64)
        )

    run_proc(sim, body())
    sim.run()
    assert fab.node("node0").nic.tx_packets == 1
    assert fab.node("node1").nic.rx_packets == 1
    assert len(got) == 1
