"""Provider tests: VI / CQ / memory lifecycle on each implementation."""

import pytest

from repro.providers import Testbed
from repro.via import (
    Descriptor,
    ViState,
    VipErrorResource,
    VipProtectionError,
    VipStateError,
)

from conftest import run_proc


def test_vi_create_destroy(provider_name):
    tb = Testbed(provider_name)
    h = tb.open("node0", "app")

    def body():
        vi = yield from h.create_vi()
        assert vi.state is ViState.IDLE
        assert tb.provider("node0").open_vi_count == 1
        yield from h.destroy_vi(vi)
        assert vi.state is ViState.DESTROYED
        assert tb.provider("node0").open_vi_count == 0

    run_proc(tb.sim, body())


def test_vi_create_cost_matches_calibration(provider_name):
    tb = Testbed(provider_name)
    h = tb.open("node0", "app")
    costs = tb.provider("node0").costs

    def body():
        t0 = tb.now
        yield from h.create_vi()
        return tb.now - t0

    assert run_proc(tb.sim, body()) == pytest.approx(costs.vi_create)


def test_vi_destroy_rejects_pending_work(provider_name):
    tb = Testbed(provider_name)
    h = tb.open("node0", "app")

    def body():
        vi = yield from h.create_vi()
        region = h.alloc(64)
        mh = yield from h.register_mem(region)
        yield from h.post_recv(vi, Descriptor.recv([h.segment(region, mh)]))
        with pytest.raises(VipStateError, match="not empty"):
            yield from h.destroy_vi(vi)

    run_proc(tb.sim, body())


def test_cq_lifecycle_and_attachment(provider_name):
    tb = Testbed(provider_name)
    h = tb.open("node0", "app")

    def body():
        cq = yield from h.create_cq(depth=16)
        vi = yield from h.create_vi(recv_cq=cq)
        assert cq.attached == 1
        with pytest.raises(VipStateError, match="attached"):
            yield from h.destroy_cq(cq)
        yield from h.destroy_vi(vi)
        assert cq.attached == 0
        yield from h.destroy_cq(cq)
        assert cq.destroyed

    run_proc(tb.sim, body())


def test_register_pins_and_costs_scale_per_page(provider_name):
    tb = Testbed(provider_name)
    h = tb.open("node0", "app")
    costs = tb.provider("node0").costs
    page = tb.provider("node0").node.mem.page_size

    def body():
        small = h.alloc(16)
        t0 = tb.now
        mh_small = yield from h.register_mem(small)
        cost_small = tb.now - t0
        big = h.alloc(8 * page)
        t0 = tb.now
        mh_big = yield from h.register_mem(big)
        cost_big = tb.now - t0
        assert cost_small == pytest.approx(costs.reg_base + costs.reg_per_page)
        assert cost_big == pytest.approx(
            costs.reg_base + 8 * costs.reg_per_page)
        assert tb.provider("node0").node.mem.pinned_pages == 9
        yield from h.deregister_mem(mh_small)
        yield from h.deregister_mem(mh_big)
        assert tb.provider("node0").node.mem.pinned_pages == 0

    run_proc(tb.sim, body())


def test_deregister_invalidates_nic_tlb():
    tb = Testbed("bvia")
    h = tb.open("node0", "app")
    nic = tb.provider("node0").node.nic

    def body():
        region = h.alloc(4096)
        mh = yield from h.register_mem(region)
        vpage = mh.pages[0]
        nic.tlb.insert(vpage, 77)
        yield from h.deregister_mem(mh)
        assert nic.tlb.lookup(vpage) is None

    run_proc(tb.sim, body())


def test_clan_registration_preloads_nic_table():
    """NIC-resident tables are installed at registration (cLAN model)."""
    tb = Testbed("clan")
    h = tb.open("node0", "app")
    nic = tb.provider("node0").node.nic

    def body():
        region = h.alloc(3 * 4096)
        mh = yield from h.register_mem(region)
        for vpage in mh.pages:
            assert nic.tlb.lookup(vpage) is not None

    run_proc(tb.sim, body())


def test_register_unallocated_memory_rejected(provider_name):
    tb = Testbed(provider_name)
    h = tb.open("node0", "app")

    def body():
        with pytest.raises(Exception):
            yield from h.register_mem(0xDEAD0000, 64)

    run_proc(tb.sim, body())


def test_handles_are_per_node():
    tb = Testbed("clan")
    h0 = tb.open("node0", "a")
    h1 = tb.open("node1", "b")

    def body0():
        region = h0.alloc(64)
        mh = yield from h0.register_mem(region)
        return mh

    mh = run_proc(tb.sim, body0())
    with pytest.raises(VipProtectionError):
        tb.provider("node1").registry.lookup(mh.handle_id)
