"""Fault-injection subsystem: plan validation, JSON round-trips,
injector determinism, and the zero-cost-when-disabled contract.

The byte-identity tests are the heart of the contract: a testbed with no
plan, an empty plan, or an armed plan whose windows never open must
produce the exact same trace as one built before ``repro.faults``
existed.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec, attach_faults
from repro.faults.plan import DELIVERY_KINDS, WIRE_KINDS
from repro.obs.profile import _reset_id_counters
from repro.providers import Testbed
from repro.sim.trace import Tracer
from repro.via import CompletionStatus, Reliability

from conftest import connected_endpoints, run_pair, simple_recv, simple_send


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan data model
# ---------------------------------------------------------------------------

def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="gremlin")


@pytest.mark.parametrize("kwargs", [
    {"kind": "wire_loss", "at": -1.0},
    {"kind": "wire_loss", "duration": 0.0},
    {"kind": "wire_loss", "rate": 0.0},
    {"kind": "wire_loss", "rate": 1.5},
    {"kind": "wire_reorder"},                 # needs magnitude
    {"kind": "cpu_jitter"},                   # needs magnitude
    {"kind": "cpu_stall"},                    # needs duration
    {"kind": "wire_loss", "skip": -1},
    {"kind": "tlb_flush", "count": 0},
])
def test_spec_validation(kwargs):
    with pytest.raises(ValueError):
        FaultSpec(**kwargs)


def test_spec_window():
    spec = FaultSpec(kind="wire_loss", at=100.0, duration=50.0)
    assert not spec.active(99.9)
    assert spec.active(100.0)
    assert spec.active(149.9)
    assert not spec.active(150.0)
    open_ended = FaultSpec(kind="wire_loss", at=10.0)
    assert open_ended.end == float("inf")
    assert open_ended.active(1e12)


def test_spec_dict_omits_defaults():
    assert FaultSpec(kind="dma_abort").to_dict() == {"kind": "dma_abort"}
    d = FaultSpec(kind="wire_loss", rate=0.5, at=7.0).to_dict()
    assert d == {"kind": "wire_loss", "rate": 0.5, "at": 7.0}


def test_plan_json_round_trip():
    plan = FaultPlan(name="storm", seed=3, faults=(
        FaultSpec(kind="wire_corrupt", rate=0.25),
        FaultSpec(kind="link_down", target="node0.up", at=100.0,
                  duration=500.0),
        FaultSpec(kind="tlb_flush", at=50.0, count=4, period=10.0),
        FaultSpec(kind="cpu_stall", target="node1", at=5.0, duration=20.0),
    ))
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    # and the encoding is stable, so plans can live in fixture files
    assert again.to_json() == plan.to_json()


def test_plan_shifted_moves_every_window():
    plan = FaultPlan(faults=(
        FaultSpec(kind="wire_loss", at=10.0, duration=5.0),
        FaultSpec(kind="dma_abort", at=0.0),
    ))
    moved = plan.shifted(100.0)
    assert [s.at for s in moved.faults] == [110.0, 100.0]
    assert moved.faults[0].end == 115.0
    assert plan.faults[0].at == 10.0  # original untouched


def test_affects_delivery_classification():
    for kind in sorted(WIRE_KINDS | {"dma_abort"}):
        kwargs = {"magnitude": 1.0} if kind == "wire_reorder" else {}
        assert FaultPlan(faults=(FaultSpec(kind=kind, **kwargs),)).affects_delivery
        assert kind in DELIVERY_KINDS
    benign = FaultPlan(faults=(
        FaultSpec(kind="doorbell_drop"),
        FaultSpec(kind="tlb_flush"),
        FaultSpec(kind="cpu_stall", duration=5.0),
    ))
    assert not benign.affects_delivery


# ---------------------------------------------------------------------------
# Injector mechanics
# ---------------------------------------------------------------------------

def test_empty_plan_never_arms():
    tb = Testbed("mvia")
    injector = attach_faults(tb, FaultPlan())
    assert tb.injector is injector
    assert not injector.armed
    assert tb.sim.faults is None


def test_skip_and_count_are_surgical():
    """skip=2, count=1 fires on exactly the third opportunity."""
    tb = Testbed("mvia")
    spec = FaultSpec(kind="wire_loss", skip=2, count=1)
    injector = attach_faults(tb, FaultPlan(faults=(spec,)))
    channel = tb.fabric.node("node0").nic.port.out_channel
    fates = [injector.wire_fate(channel, None)[0] for _ in range(6)]
    assert fates == ["pass", "pass", "drop", "pass", "pass", "pass"]
    assert injector.injected[0] == 1
    assert injector.counters == {"wire_loss": 1}


def test_rate_stream_is_deterministic_per_seed():
    def fates(seed):
        tb = Testbed("mvia")
        plan = FaultPlan(seed=seed,
                         faults=(FaultSpec(kind="wire_loss", rate=0.5),))
        injector = attach_faults(tb, plan)
        ch = tb.fabric.node("node0").nic.port.out_channel
        return [injector.wire_fate(ch, None)[0] for _ in range(64)]

    assert fates(1) == fates(1)
    assert fates(1) != fates(2)
    assert "drop" in fates(1) and "pass" in fates(1)


def test_target_prefix_matching():
    tb = Testbed("mvia")
    plan = FaultPlan(faults=(
        FaultSpec(kind="wire_loss", target="node0"),))
    injector = attach_faults(tb, plan)
    ch0 = tb.fabric.node("node0").nic.port.out_channel
    ch1 = tb.fabric.node("node1").nic.port.out_channel
    assert injector.wire_fate(ch0, None)[0] == "drop"
    assert injector.wire_fate(ch1, None)[0] == "pass"


# ---------------------------------------------------------------------------
# Byte-identity: disabled / inert faults change nothing
# ---------------------------------------------------------------------------

def _traced_ping(provider="mvia", faults=None):
    """One reliable ping-pong; returns the full (t, cat, label, node)
    event sequence plus the payload the server echoed."""
    _reset_id_counters()
    tb = Testbed(provider, seed=0, faults=faults)
    tracer = Tracer()
    tb.sim.tracer = tracer
    cs, ss = connected_endpoints(tb, reliability=Reliability.RELIABLE_DELIVERY)
    out = {}

    def client():
        h, vi, region, mh = yield from cs()
        desc = yield from simple_send(h, vi, region, mh, b"ping-payload")
        out["status"] = desc.status

    def server():
        h, vi, region, mh = yield from ss()
        _desc, data = yield from simple_recv(h, vi, region, mh, 12)
        out["data"] = data

    run_pair(tb, client(), server())
    assert out["status"] is CompletionStatus.SUCCESS
    assert out["data"] == b"ping-payload"
    return [(ev.t, ev.category, ev.label, ev.node) for ev in tracer.events]


def test_no_plan_and_empty_plan_are_byte_identical():
    assert _traced_ping(faults=None) == _traced_ping(faults=FaultPlan())


def test_armed_but_never_matching_plan_is_byte_identical():
    """A non-delivery fault whose window never opens perturbs nothing:
    the hooks are consulted but every decision is a plain window check."""
    dormant = FaultPlan(faults=(
        FaultSpec(kind="doorbell_drop", at=1e12),
        FaultSpec(kind="cpu_jitter", at=1e12, magnitude=2.0),
    ))
    assert not dormant.affects_delivery
    assert _traced_ping(faults=None) == _traced_ping(faults=dormant)


# ---------------------------------------------------------------------------
# Armed faults actually bite (one spot check per hook family)
# ---------------------------------------------------------------------------

def test_cpu_stall_delays_the_workload():
    # long enough that no parallel slack on the other node can hide it
    base = _traced_ping()
    stalled = _traced_ping(faults=FaultPlan(faults=(
        FaultSpec(kind="cpu_stall", target="node1", at=0.0,
                  duration=20_000.0),)))
    assert stalled[-1][0] > base[-1][0] + 10_000.0


def test_harvest_publishes_fault_counters():
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.harvest import harvest_into

    tb = Testbed("mvia", faults=FaultPlan(faults=(
        FaultSpec(kind="tlb_flush", target="node0", at=0.0, count=3,
                  period=1.0),)))

    def body():
        yield tb.sim.timeout(10.0)

    tb.run(tb.spawn(body(), "idle"))
    reg = MetricsRegistry()
    harvest_into(reg, tb)
    assert reg.get("faults.tlb_flush.injected").value == 3
