"""Property tests for the observability layer.

Covers the two contracts the golden fixtures cannot: the
:class:`~repro.sim.trace.Tracer` bookkeeping under arbitrary emit
streams (capacity / ``dropped`` accounting, ``select``/``first``/
``last`` consistency) and the :class:`~repro.obs.metrics.Histogram`
invariants (bucket conservation, quantile monotonicity, merge
associativity) that make metric snapshots safe to aggregate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.trace import Tracer

# ---------------------------------------------------------------------------
# Tracer

_CATS = ("host", "nic", "wire", "via")
_LABELS = ("post", "dma", "reap")
_NODES = ("node0", "node1")

emits = st.lists(
    st.tuples(st.floats(0, 1e6, allow_nan=False), st.sampled_from(_CATS),
              st.sampled_from(_LABELS), st.sampled_from(_NODES)),
    max_size=60,
)


@given(stream=emits, capacity=st.one_of(st.none(), st.integers(0, 40)))
@settings(max_examples=80, deadline=None)
def test_tracer_capacity_and_dropped_accounting(stream, capacity):
    tracer = Tracer(capacity=capacity)
    for t, cat, label, node in stream:
        tracer.emit(t, cat, label, node)
    if capacity is None:
        assert len(tracer) == len(stream)
        assert tracer.dropped == 0
    else:
        assert len(tracer) == min(len(stream), capacity)
        assert tracer.dropped == max(0, len(stream) - capacity)
    # kept events are exactly the stream prefix, in emit order
    assert [(e.t, e.category, e.label, e.node) for e in tracer.events] == \
        stream[:len(tracer)]
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0


@given(stream=emits, cat=st.sampled_from(_CATS),
       label=st.one_of(st.none(), st.sampled_from(_LABELS)),
       node=st.one_of(st.none(), st.sampled_from(_NODES)))
@settings(max_examples=80, deadline=None)
def test_tracer_select_first_last_consistent(stream, cat, label, node):
    tracer = Tracer()
    for t, c, lb, nd in stream:
        tracer.emit(t, c, lb, nd)
    kwargs = {"category": cat}
    if label is not None:
        kwargs["label"] = label
    if node is not None:
        kwargs["node"] = node
    hits = tracer.select(**kwargs)
    # select is a pure order-preserving filter of the event list
    assert hits == [e for e in tracer.events
                    if e.category == cat
                    and (label is None or e.label == label)
                    and (node is None or e.node == node)]
    assert tracer.first(**kwargs) == (hits[0] if hits else None)
    assert tracer.last(**kwargs) == (hits[-1] if hits else None)


@given(stream=emits, since=st.floats(0, 1e6, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_tracer_select_since_filters_by_time(stream, since):
    tracer = Tracer()
    for t, c, lb, nd in stream:
        tracer.emit(t, c, lb, nd)
    assert tracer.select(since=since) == \
        [e for e in tracer.events if e.t >= since]


# ---------------------------------------------------------------------------
# Histogram

BOUNDS = (1.0, 4.0, 16.0, 64.0)
values = st.lists(st.floats(0, 1000, allow_nan=False, allow_infinity=False),
                  max_size=80)


def _filled(vals):
    h = Histogram("h", BOUNDS)
    for v in vals:
        h.observe(v)
    return h


@given(vals=values)
@settings(max_examples=100, deadline=None)
def test_histogram_count_is_sum_of_buckets(vals):
    h = _filled(vals)
    assert h.count == sum(h.counts) == len(vals)
    if vals:
        assert h.vmin == min(vals)
        assert h.vmax == max(vals)
        assert h.total == sum(vals)


@given(vals=values.filter(bool),
       qs=st.lists(st.floats(0, 1), min_size=2, max_size=6))
@settings(max_examples=100, deadline=None)
def test_histogram_quantiles_monotone_and_bounded(vals, qs):
    h = _filled(vals)
    qs = sorted(qs)
    estimates = [h.quantile(q) for q in qs]
    assert estimates == sorted(estimates)
    for est in estimates:
        assert 0 <= est <= h.vmax
    assert h.quantile(0.0) == h.vmin
    assert h.quantile(1.0) == h.vmax


# integer-valued samples: float addition over them is exact, so merge
# associativity can be asserted on the full snapshot (sum included)
int_values = st.lists(st.integers(0, 1000).map(float), max_size=60)


@given(a=int_values, b=int_values, c=int_values)
@settings(max_examples=80, deadline=None)
def test_histogram_merge_associative_and_conserving(a, b, c):
    left = _filled(a).merge(_filled(b)).merge(_filled(c))
    right = _filled(a).merge(_filled(b).merge(_filled(c)))
    assert left.snapshot() == right.snapshot()
    assert left.count == len(a) + len(b) + len(c)
    assert left.counts == [x + y + z for x, y, z in zip(
        _filled(a).counts, _filled(b).counts, _filled(c).counts)]


@given(vals=values.filter(bool))
@settings(max_examples=60, deadline=None)
def test_histogram_snapshot_quantiles_from_observed_range(vals):
    snap = _filled(vals).snapshot()
    assert snap["count"] == len(vals)
    assert snap["p50"] <= snap["p90"] <= snap["p99"]


@given(names=st.lists(st.sampled_from("abcd"), min_size=1, max_size=20),
       by=st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_registry_inc_accumulates_per_name(names, by):
    reg = MetricsRegistry()
    for n in names:
        reg.inc(n, by)
    snap = reg.snapshot()
    for n in set(names):
        assert snap[n]["value"] == names.count(n) * by
    assert list(snap) == sorted(snap)
