"""Tests for the RPC and get/put layers."""

import pytest

from repro.layers import GetPut, MsgEndpoint, RpcClient, RpcError, RpcServer
from repro.providers import Testbed, get_spec

from conftest import run_pair


def endpoints(tb):
    def client_setup():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        yield from h.connect(vi, tb.node_names[1], 5)
        return h, vi, msg

    def server_setup():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)
        return h, vi, msg

    return client_setup, server_setup


# ---- RPC -------------------------------------------------------------------

def test_rpc_call_roundtrip(provider_name):
    tb = Testbed(provider_name)
    cs, ss = endpoints(tb)
    out = {}

    def client():
        _h, _vi, msg = yield from cs()
        rpc = RpcClient(msg)
        out["upper"] = yield from rpc.call(0, b"hello")
        out["sum"] = yield from rpc.call(1, bytes([1, 2, 3]))
        assert rpc.calls_made == 2

    def server():
        _h, _vi, msg = yield from ss()
        rpc = RpcServer(msg)
        rpc.register("upper", lambda b: b.upper())
        rpc.register("sum", lambda b: bytes([sum(b)]))
        yield from rpc.serve(max_calls=2)
        out["served"] = rpc.calls_served

    run_pair(tb, client(), server())
    assert out["upper"] == b"HELLO"
    assert out["sum"] == bytes([6])
    assert out["served"] == 2


def test_rpc_unknown_method():
    tb = Testbed("clan")
    cs, ss = endpoints(tb)

    def client():
        _h, _vi, msg = yield from cs()
        rpc = RpcClient(msg)
        with pytest.raises(RpcError, match="no such method"):
            yield from rpc.call(42, b"")

    def server():
        _h, _vi, msg = yield from ss()
        rpc = RpcServer(msg)
        yield from rpc.serve(max_calls=1)

    run_pair(tb, client(), server())


def test_rpc_handler_exception_propagates():
    tb = Testbed("clan")
    cs, ss = endpoints(tb)

    def client():
        _h, _vi, msg = yield from cs()
        rpc = RpcClient(msg)
        with pytest.raises(RpcError, match="deliberate"):
            yield from rpc.call(0, b"")

    def server():
        _h, _vi, msg = yield from ss()
        rpc = RpcServer(msg)

        def boom(_b):
            raise ValueError("deliberate")

        rpc.register("boom", boom)
        yield from rpc.serve(max_calls=1)

    run_pair(tb, client(), server())


def test_rpc_duplicate_registration():
    tb = Testbed("clan")
    msg = object.__new__(MsgEndpoint)  # no wire use in this test
    rpc = RpcServer(msg)
    rpc.register("a", lambda b: b)
    with pytest.raises(ValueError):
        rpc.register("a", lambda b: b)
    assert rpc.method_index("a") == 0


def test_rpc_large_payloads_go_rendezvous():
    tb = Testbed("bvia")
    cs, ss = endpoints(tb)
    big = bytes(i % 256 for i in range(12000))
    out = {}

    def client():
        _h, _vi, msg = yield from cs()
        rpc = RpcClient(msg)
        out["echo"] = yield from rpc.call(0, big)

    def server():
        _h, _vi, msg = yield from ss()
        rpc = RpcServer(msg)
        rpc.register("echo", lambda b: b)
        yield from rpc.serve(max_calls=1)

    run_pair(tb, client(), server())
    assert out["echo"] == big


# ---- Get/Put ------------------------------------------------------------------

def test_put_is_one_sided(provider_name):
    tb = Testbed(provider_name)
    cs, ss = endpoints(tb)
    out = {}

    def owner():
        h, vi, msg = yield from ss()
        gp = GetPut(h, vi, msg)
        win = yield from gp.expose(4096)
        # wait passively; no receive descriptors for the put itself
        while h.read(win, 4, 64) != b"PUT!":
            yield tb.sim.timeout(10.0)
        out["data"] = h.read(win, 4, 64)

    def peer():
        h, vi, msg = yield from cs()
        gp = GetPut(h, vi, msg)
        win = yield from gp.attach()
        yield from gp.put(win, 64, b"PUT!")

    run_pair(tb, peer(), owner())
    assert out["data"] == b"PUT!"


def test_emulated_get_without_rdma_read():
    tb = Testbed("bvia")  # no RDMA read -> request/reply fallback
    cs, ss = endpoints(tb)
    out = {}

    def owner():
        h, vi, msg = yield from ss()
        gp = GetPut(h, vi, msg)
        win = yield from gp.expose(4096)
        h.write(win, b"window-content", 10)
        yield from gp.serve()

    def peer():
        h, vi, msg = yield from cs()
        gp = GetPut(h, vi, msg)
        win = yield from gp.attach()
        out["got"] = yield from gp.get(win, 10, 14)
        yield from gp.stop_server()

    run_pair(tb, peer(), owner())
    assert out["got"] == b"window-content"


def test_true_one_sided_get_with_rdma_read():
    spec = get_spec("clan").with_choices(supports_rdma_read=True)
    tb = Testbed(spec)
    cs, ss = endpoints(tb)
    out = {}

    def owner():
        h, vi, msg = yield from ss()
        gp = GetPut(h, vi, msg)
        win = yield from gp.expose(4096)
        h.write(win, b"silent-read", 0)
        while "got" not in out:
            yield tb.sim.timeout(10.0)

    def peer():
        h, vi, msg = yield from cs()
        gp = GetPut(h, vi, msg)
        win = yield from gp.attach()
        out["got"] = yield from gp.get(win, 0, 11)

    run_pair(tb, peer(), owner())
    assert out["got"] == b"silent-read"


def test_put_get_bounds_checked():
    tb = Testbed("clan")
    cs, ss = endpoints(tb)

    def owner():
        h, vi, msg = yield from ss()
        gp = GetPut(h, vi, msg)
        yield from gp.expose(128)
        yield tb.sim.timeout(50_000.0)

    def peer():
        h, vi, msg = yield from cs()
        gp = GetPut(h, vi, msg)
        win = yield from gp.attach()
        with pytest.raises(ValueError):
            yield from gp.put(win, 120, b"too-long!")
        with pytest.raises(ValueError):
            yield from gp.get(win, -1, 4)

    cproc = tb.spawn(peer(), "peer")
    tb.spawn(owner(), "owner")
    tb.run(cproc)


def test_serve_requires_exposed_window():
    tb = Testbed("clan")
    h = tb.open("node0", "a")

    def body():
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        gp = GetPut(h, vi, msg)
        with pytest.raises(RuntimeError):
            yield from gp.serve()

    tb.run(tb.spawn(body()))
