"""Provider tests: unexpected-message policies (DROP / BUFFER / RETRY).

These are the architectural behaviours behind the asynchronous-message
micro-benchmark (§3.2.5): what each stack does when data arrives before
its receive descriptor is posted.
"""

import pytest

from repro.providers import Testbed
from repro.via import CompletionStatus, Descriptor, Reliability, VipTimeout

from conftest import connected_endpoints, run_pair, simple_send


def _late_recv_scenario(tb, delay, reliability=None, timeout=30_000.0):
    cs, ss = connected_endpoints(tb, reliability=reliability)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        yield from simple_send(h, vi, region, mh, b"early-bird")

    def server():
        h, vi, region, mh = yield from ss()
        yield tb.sim.timeout(delay)
        segs = [h.segment(region, mh, 0, 64)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        try:
            desc = yield from h.recv_wait(vi, timeout=timeout)
            result["data"] = h.read(region, desc.control.length)
            result["status"] = desc.status
        except VipTimeout:
            result["lost"] = True

    run_pair(tb, client(), server())
    return result


def test_mvia_buffers_unexpected_messages():
    """Kernel buffering: the late receive still gets the data."""
    result = _late_recv_scenario(Testbed("mvia"), delay=500.0)
    assert result.get("data") == b"early-bird"
    assert result["status"] is CompletionStatus.SUCCESS


def test_bvia_drops_unexpected_messages():
    """Zero-copy unreliable NIC: the message is gone."""
    result = _late_recv_scenario(Testbed("bvia"), delay=500.0)
    assert result.get("lost") is True
    assert Testbed  # silence linters


def test_clan_retries_until_descriptor_posted():
    """Reliable delivery: NAK + sender retransmission recovers the data."""
    tb = Testbed("clan")
    result = _late_recv_scenario(tb, delay=500.0)
    assert result.get("data") == b"early-bird"
    assert tb.provider("node0").engine.retransmissions >= 1


def test_bvia_reliable_vi_also_retries():
    """The NAK path is a property of the reliability level, not the
    provider: a reliable VI on BVIA recovers too."""
    tb = Testbed("bvia")
    result = _late_recv_scenario(
        tb, delay=500.0, reliability=Reliability.RELIABLE_DELIVERY)
    assert result.get("data") == b"early-bird"


def test_mvia_buffered_messages_preserve_order():
    tb = Testbed("mvia")
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        for i in range(4):
            yield from simple_send(h, vi, region, mh, bytes([i]) * 4)

    def server():
        h, vi, region, mh = yield from ss()
        yield tb.sim.timeout(1000.0)  # let all four arrive unexpected
        got = []
        for _ in range(4):
            segs = [h.segment(region, mh, 0, 16)]
            yield from h.post_recv(vi, Descriptor.recv(segs))
            desc = yield from h.recv_wait(vi)
            got.append(h.read(region, desc.control.length))
        result["got"] = got

    run_pair(tb, client(), server())
    assert result["got"] == [bytes([i]) * 4 for i in range(4)]


def test_mvia_buffered_length_error():
    """A buffered message larger than the eventual descriptor still
    completes with LENGTH_ERROR, matching the wire path."""
    tb = Testbed("mvia")
    cs, ss = connected_endpoints(tb)
    result = {}

    def client():
        h, vi, region, mh = yield from cs()
        yield from simple_send(h, vi, region, mh, b"z" * 256)

    def server():
        h, vi, region, mh = yield from ss()
        yield tb.sim.timeout(500.0)
        segs = [h.segment(region, mh, 0, 16)]  # too small
        yield from h.post_recv(vi, Descriptor.recv(segs))
        desc = yield from h.recv_wait(vi)
        result["status"] = desc.status

    run_pair(tb, client(), server())
    assert result["status"] is CompletionStatus.LENGTH_ERROR
