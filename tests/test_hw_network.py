"""Unit tests for fabric presets, switch forwarding, and topology."""

import pytest

from repro.hw import GIGANET, GIGE, MYRINET, Fabric, Packet
from repro.sim import Simulator

from conftest import run_proc


def deliver_one(params, size=1000):
    sim = Simulator()
    fab = Fabric(sim, params)
    got = []
    fab.node("node1").nic.rx_handler = lambda p: got.append(sim.now)

    def body():
        yield from fab.node("node0").nic.transmit(
            Packet("node0", "node1", "data", size)
        )

    run_proc(sim, body())
    sim.run()
    return got[0]


def test_presets_have_expected_relative_latency():
    t_myri = deliver_one(MYRINET)
    t_gige = deliver_one(GIGE)
    t_clan = deliver_one(GIGANET)
    # store-and-forward Ethernet pays double serialisation + switch
    assert t_gige > t_myri
    assert t_gige > t_clan


def test_gige_store_and_forward_doubles_serialisation():
    t = deliver_one(GIGE, size=1500)
    ser = (1500 + GIGE.header_bytes) / GIGE.bandwidth + GIGE.per_packet_cost
    # two serialisations (uplink + downlink) plus fixed delays
    fixed = 2 * GIGE.prop_delay + GIGE.switch_latency
    assert t == pytest.approx(2 * ser + fixed, rel=0.01)


def test_cut_through_single_serialisation():
    t = deliver_one(MYRINET, size=16000)
    ser = (16000 + MYRINET.header_bytes) / MYRINET.bandwidth \
        + MYRINET.per_packet_cost
    fixed = 2 * MYRINET.prop_delay + MYRINET.switch_latency
    assert t == pytest.approx(ser + fixed, rel=0.02)


def test_switch_rejects_unknown_destination():
    sim = Simulator()
    fab = Fabric(sim, MYRINET)

    def body():
        yield from fab.node("node0").nic.transmit(
            Packet("node0", "nowhere", "data", 10)
        )

    with pytest.raises(KeyError):
        run_proc(sim, body())
        sim.run()


def test_three_node_fabric():
    sim = Simulator()
    fab = Fabric(sim, GIGANET, node_names=("a", "b", "c"))
    got = {"b": [], "c": []}
    fab.node("b").nic.rx_handler = lambda p: got["b"].append(p.payload)
    fab.node("c").nic.rx_handler = lambda p: got["c"].append(p.payload)

    def body():
        yield from fab.node("a").nic.transmit(Packet("a", "b", "d", 1, "to-b"))
        yield from fab.node("a").nic.transmit(Packet("a", "c", "d", 1, "to-c"))

    run_proc(sim, body())
    sim.run()
    assert got == {"b": ["to-b"], "c": ["to-c"]}


def test_duplicate_node_names_rejected():
    with pytest.raises(ValueError):
        Fabric(Simulator(), MYRINET, node_names=("x", "x"))


def test_with_loss_and_mtu_builders():
    lossy = GIGE.with_loss(0.1)
    assert lossy.loss_rate == 0.1 and GIGE.loss_rate == 0.0
    small = MYRINET.with_mtu(512)
    assert small.mtu == 512 and MYRINET.mtu == 32768
    with pytest.raises(ValueError):
        MYRINET.with_mtu(10)


def test_nodes_get_host_params():
    from repro.hw import HostParams

    sim = Simulator()
    host = HostParams(mem_copy_bw=50.0, tlb_entries=8)
    fab = Fabric(sim, MYRINET, host=host)
    node = fab.node("node0")
    assert node.cpu.mem_copy_bw == 50.0
    assert node.nic.tlb.entries == 8
