"""Unit tests for fabric presets, switch forwarding, and topology."""

import pytest

from repro.hw import GIGANET, GIGE, MYRINET, Fabric, Packet
from repro.sim import Simulator

from conftest import run_proc


def deliver_one(params, size=1000):
    sim = Simulator()
    fab = Fabric(sim, params)
    got = []
    fab.node("node1").nic.rx_handler = lambda p: got.append(sim.now)

    def body():
        yield from fab.node("node0").nic.transmit(
            Packet("node0", "node1", "data", size)
        )

    run_proc(sim, body())
    sim.run()
    return got[0]


def test_presets_have_expected_relative_latency():
    t_myri = deliver_one(MYRINET)
    t_gige = deliver_one(GIGE)
    t_clan = deliver_one(GIGANET)
    # store-and-forward Ethernet pays double serialisation + switch
    assert t_gige > t_myri
    assert t_gige > t_clan


def test_gige_store_and_forward_doubles_serialisation():
    t = deliver_one(GIGE, size=1500)
    ser = (1500 + GIGE.header_bytes) / GIGE.bandwidth + GIGE.per_packet_cost
    # two serialisations (uplink + downlink) plus fixed delays
    fixed = 2 * GIGE.prop_delay + GIGE.switch_latency
    assert t == pytest.approx(2 * ser + fixed, rel=0.01)


def test_cut_through_single_serialisation():
    t = deliver_one(MYRINET, size=16000)
    ser = (16000 + MYRINET.header_bytes) / MYRINET.bandwidth \
        + MYRINET.per_packet_cost
    fixed = 2 * MYRINET.prop_delay + MYRINET.switch_latency
    assert t == pytest.approx(ser + fixed, rel=0.02)


def test_switch_rejects_unknown_destination():
    sim = Simulator()
    fab = Fabric(sim, MYRINET)

    def body():
        yield from fab.node("node0").nic.transmit(
            Packet("node0", "nowhere", "data", 10)
        )

    with pytest.raises(KeyError):
        run_proc(sim, body())
        sim.run()


def test_three_node_fabric():
    sim = Simulator()
    fab = Fabric(sim, GIGANET, node_names=("a", "b", "c"))
    got = {"b": [], "c": []}
    fab.node("b").nic.rx_handler = lambda p: got["b"].append(p.payload)
    fab.node("c").nic.rx_handler = lambda p: got["c"].append(p.payload)

    def body():
        yield from fab.node("a").nic.transmit(Packet("a", "b", "d", 1, "to-b"))
        yield from fab.node("a").nic.transmit(Packet("a", "c", "d", 1, "to-c"))

    run_proc(sim, body())
    sim.run()
    assert got == {"b": ["to-b"], "c": ["to-c"]}


def test_duplicate_node_names_rejected():
    with pytest.raises(ValueError):
        Fabric(Simulator(), MYRINET, node_names=("x", "x"))


def test_with_loss_and_mtu_builders():
    lossy = GIGE.with_loss(0.1)
    assert lossy.loss_rate == 0.1 and GIGE.loss_rate == 0.0
    small = MYRINET.with_mtu(512)
    assert small.mtu == 512 and MYRINET.mtu == 32768
    with pytest.raises(ValueError):
        MYRINET.with_mtu(10)


def test_nodes_get_host_params():
    from repro.hw import HostParams

    sim = Simulator()
    host = HostParams(mem_copy_bw=50.0, tlb_entries=8)
    fab = Fabric(sim, MYRINET, host=host)
    node = fab.node("node0")
    assert node.cpu.mem_copy_bw == 50.0
    assert node.nic.tlb.entries == 8


# -- output-port contention model ----------------------------------------
# Two-node goldens: the port model must add nothing to uncontended paths.
# These exact values predate OutputPort and must never drift.
TWO_NODE_GOLDENS = {
    "myrinet": 7.40625,
    "gige": 20.216,
    "giganet": 9.95892857142857,
}


def test_two_node_delivery_pinned_to_seed_goldens():
    assert deliver_one(MYRINET) == TWO_NODE_GOLDENS["myrinet"]
    assert deliver_one(GIGE) == TWO_NODE_GOLDENS["gige"]
    assert deliver_one(GIGANET) == TWO_NODE_GOLDENS["giganet"]


def _converge(params, senders=4, size=16000, per_sender=1):
    """N senders flood one sink concurrently; returns (arrivals, port)."""
    sim = Simulator()
    names = tuple("abcdefgh"[:senders]) + ("sink",)
    fab = Fabric(sim, params, node_names=names)
    got = []
    fab.node("sink").nic.rx_handler = lambda p: got.append(sim.now)

    def send(src):
        for _ in range(per_sender):
            yield from fab.node(src).nic.transmit(
                Packet(src, "sink", "data", size))

    for s in names[:-1]:
        sim.process(send(s))
    sim.run()
    return sorted(got), fab.switch.port("sink")


def test_cut_through_converging_senders_drain_at_line_rate():
    arrivals, port = _converge(MYRINET)
    frame = (16000 + MYRINET.header_bytes) / MYRINET.bandwidth
    deltas = [b - a for a, b in zip(arrivals, arrivals[1:])]
    # all four frames land, serialised by the output port at exactly
    # one frame time apart — not the old infinite-rate downlink
    assert len(arrivals) == 4
    for d in deltas:
        assert d == pytest.approx(frame, rel=1e-9)
    assert port.contended == 3
    assert port.drops == 0 and port.backpressured == 0
    assert port.max_backlog_us == pytest.approx(3 * frame, rel=1e-9)


def test_cut_through_single_sender_never_contends():
    _, port = _converge(MYRINET, senders=1, per_sender=8)
    assert port.forwarded == 8
    assert port.contended == 0
    assert port.max_backlog_us == 0.0


def test_store_and_forward_tail_drops_past_port_buffer():
    arrivals, port = _converge(GIGE.with_port_buffer(1), senders=4,
                               size=1400, per_sender=4)
    assert port.forwarded == 16
    assert port.drops > 0
    assert len(arrivals) == 16 - port.drops
    # determinism: same run, same drops
    arrivals2, port2 = _converge(GIGE.with_port_buffer(1), senders=4,
                                 size=1400, per_sender=4)
    assert arrivals2 == arrivals and port2.drops == port.drops


def test_cut_through_backpressure_counted_past_buffer():
    params = MYRINET.with_port_buffer(1)
    _, port = _converge(params, senders=6, size=30000)
    assert port.contended > 0
    assert port.backpressured > 0   # backlog beyond one frame of buffer
    assert port.drops == 0          # wormhole flow control never drops


def test_with_port_buffer_builder_validates():
    small = GIGE.with_port_buffer(2)
    assert small.port_buffer_frames == 2
    assert GIGE.port_buffer_frames == 64
    with pytest.raises(ValueError):
        GIGE.with_port_buffer(0)
