"""Tests for the suite registry, report helpers, and leftover corners."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator
from repro.vibe import (
    SUITE,
    collective_latency,
    render_memreg,
    run_all,
    run_benchmark,
)
from repro.vibe.metrics import BenchResult, Measurement


def test_suite_registry_is_complete():
    # one entry per benchmark family; every entry is callable
    assert len(SUITE) >= 30
    for name, fn in SUITE.items():
        assert callable(fn), name
    for required in ("nondata", "base_latency", "reuse_latency",
                     "multivi_latency", "client_server", "dsm_fault_latency",
                     "collective_latency", "stream_throughput",
                     "tail_latency"):
        assert required in SUITE


def test_run_benchmark_by_name():
    result = run_benchmark("memreg", "clan")
    assert result.benchmark == "memreg"
    with pytest.raises(KeyError, match="unknown benchmark"):
        run_benchmark("bogus", "clan")


def test_run_all_subset():
    out = run_all(providers=("clan",), benchmarks=["memreg"])
    assert out["memreg"]["clan"].provider == "clan"


def test_collective_latency_shapes():
    res = collective_latency("clan", group_sizes=(2, 4), rounds=3)
    assert res.point(2).extra["barrier_us"] > 0
    assert res.point(4).extra["barrier_us"] > res.point(2).extra["barrier_us"]
    # allreduce includes a reduction exchange: at least as deep as barrier
    for n in (2, 4):
        assert res.point(n).extra["allreduce_us"] \
            >= res.point(n).extra["barrier_us"] * 0.8


def test_render_memreg_titles():
    res = {"clan": BenchResult("memreg", "clan", [
        Measurement(param=4, extra={"register_us": 6.0,
                                    "deregister_us": 4.0}),
    ])}
    assert "Fig. 1" in render_memreg(res, "register_us")
    assert "Fig. 2" in render_memreg(res, "deregister_us")
    assert "custom" in render_memreg(res, "register_us", title="custom")


# ---- simulation kernel leftovers ------------------------------------------

def test_allof_fails_when_member_fails():
    sim = Simulator()
    good = sim.timeout(1.0, "ok")
    bad = sim.event()

    def failer():
        yield sim.timeout(2.0)
        bad.fail(RuntimeError("member"))

    def waiter():
        with pytest.raises(RuntimeError, match="member"):
            yield AllOf(sim, [good, bad])
        return True

    sim.process(failer())
    proc = sim.process(waiter())
    assert sim.run(proc)


def test_anyof_with_already_processed_member():
    sim = Simulator()
    done = sim.timeout(0.0, "first")
    sim.run()

    def waiter():
        result = yield AnyOf(sim, [done, sim.timeout(100.0)])
        return result

    proc = sim.process(waiter())
    assert sim.run(proc) == {done: "first"}
    assert sim.now < 100.0


def test_condition_rejects_cross_simulator_events():
    from repro.sim import SimulationError

    a, b = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AnyOf(a, [b.timeout(1.0)])


def test_process_repr_and_names():
    sim = Simulator()

    def named():
        yield sim.timeout(1.0)

    proc = sim.process(named(), name="my-proc")
    assert proc.name == "my-proc"
    assert "my-proc" in repr(proc)
    sim.run(proc)
    assert "done" in repr(proc)


def test_run_until_none_drains_everything():
    sim = Simulator()
    for d in (5.0, 1.0, 3.0):
        sim.timeout(d)
    sim.run()
    assert sim.now == 5.0
    assert sim.peek() == float("inf")


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_every_suite_entry_takes_a_provider_first():
    """`vibe run <name> --provider X` must work for every entry."""
    import inspect

    for name, fn in SUITE.items():
        params = list(inspect.signature(fn).parameters.values())
        assert params, name
        first = params[0]
        assert first.kind in (first.POSITIONAL_ONLY,
                              first.POSITIONAL_OR_KEYWORD), name
        # and everything else must be defaulted (run_benchmark passes
        # only the provider)
        for p in params[1:]:
            assert p.default is not inspect.Parameter.empty \
                or p.kind is p.VAR_KEYWORD, (name, p.name)
