"""Overload resilience: retries, admission control, SLO verdicts.

Covers the policy records (parsing, backoff determinism), the client
retry engine (exactly-once accounting, liveness against a dead server),
the server admission path (shedding, NAKs, connection caps), per-tenant
SLO verdicts and the ``slo_knee``, and the byte-determinism contract:
a report with retries and shedding enabled is byte-identical for any
``--jobs`` and any ``--shards N``.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, run_cluster, run_cluster_once
from repro.cluster.policy import (DEFAULT_DEADLINE_US, RetryPolicy,
                                  ServerPolicy)
from repro.cluster.runner import slo_knee
from repro.shard import run_cluster_once_sharded

# a config comfortably past the knee: fixed:100 caps one server at
# 10k rps while four clients offer 48k, so shedding and retries engage
OVERLOAD = ClusterConfig(
    nodes=6, clients=6, requests=8, window=2, service="fixed:100",
    retry="on", server_policy="depth=4,shed=deadline", tenants=3,
    deadline_us=400_000.0)

# the same cluster at a trivial load: every SLO holds
HEALTHY = ClusterConfig(
    nodes=6, clients=6, requests=8, window=2, service="fixed:20",
    retry="on", server_policy="depth=64,shed=tail", tenants=2,
    deadline_us=400_000.0)


# ---------------------------------------------------------------------------
# policy records

def test_retry_parse_off_variants():
    for spec in ("off", "none", "", "  off "):
        assert RetryPolicy.parse(spec) is None


def test_retry_parse_on_is_defaults():
    assert RetryPolicy.parse("on") == RetryPolicy()


def test_retry_parse_kv_spec():
    pol = RetryPolicy.parse("budget=5,base=100,cap=2000,jitter=0.25,"
                            "timeout=9000")
    assert pol == RetryPolicy(max_retries=5, base_us=100.0, cap_us=2000.0,
                              jitter=0.25, timeout_us=9000.0)


def test_retry_parse_rejects_unknown_key():
    with pytest.raises(ValueError, match="unknown retry key"):
        RetryPolicy.parse("budget=3,frobs=1")


def test_retry_validates_fields():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_us=0.0)


def test_backoff_is_capped_exponential_and_deterministic():
    pol = RetryPolicy(base_us=100.0, cap_us=800.0, jitter=0.5)
    a = [pol.backoff_us(i, random.Random(7)) for i in range(8)]
    b = [pol.backoff_us(i, random.Random(7)) for i in range(8)]
    assert a == b  # same stream, same waits
    for i, wait in enumerate(a):
        ceiling = min(800.0, 100.0 * 2 ** i)
        assert 0.5 * ceiling <= wait <= 1.5 * ceiling


def test_backoff_without_jitter_is_exact():
    pol = RetryPolicy(base_us=100.0, cap_us=800.0, jitter=0.0)
    rng = random.Random(0)
    assert [pol.backoff_us(i, rng) for i in range(5)] == \
        [100.0, 200.0, 400.0, 800.0, 800.0]


def test_server_policy_parse():
    assert ServerPolicy.parse("none") is None
    pol = ServerPolicy.parse("depth=64,shed=deadline,conns=16")
    assert pol == ServerPolicy(queue_depth=64, shed_mode="deadline",
                               max_conns=16)
    with pytest.raises(ValueError, match="unknown shed mode"):
        ServerPolicy.parse("shed=sideways")
    with pytest.raises(ValueError, match="unknown server-policy key"):
        ServerPolicy.parse("depth=4,windows=9")


def test_deadline_default_is_single_source():
    from repro.cluster.server import ClusterServer
    from repro.cluster.workload import ClusterClient
    from repro.providers import Testbed

    assert ClusterConfig().deadline_us == DEFAULT_DEADLINE_US
    tb = Testbed("mvia")
    cli = ClusterClient(tb, tb.node_names[0], 0, tb.node_names[1],
                        n_requests=1)
    srv = ClusterServer(tb, tb.node_names[1], 1, 1)
    assert cli.deadline_us == srv.deadline_us == DEFAULT_DEADLINE_US


# ---------------------------------------------------------------------------
# slo_knee

def _pt(offered, ok):
    return {"offered_rps": offered, "slo_ok": ok}


def test_slo_knee_largest_passing_rate():
    pts = [_pt(2000.0, True), _pt(8000.0, True), _pt(32000.0, False)]
    assert slo_knee(pts) == {"slo_knee_rps": 8000.0}


def test_slo_knee_nothing_passes():
    assert slo_knee([_pt(2000.0, False)]) == {"slo_knee_rps": 0.0}
    assert slo_knee([]) == {"slo_knee_rps": 0.0}


# ---------------------------------------------------------------------------
# overload integration: shedding, NAKs, exactly-once accounting

@pytest.fixture(scope="module")
def overload_point():
    return run_cluster_once("mvia", OVERLOAD, 48_000.0)


def test_overload_sheds_and_naks(overload_point):
    pt = overload_point
    assert pt["violations"] == []
    assert pt["shed_queue"] + pt["shed_deadline"] > 0
    assert pt["naks_sent"] > 0
    assert pt["retried"] > 0


def test_every_request_resolves_exactly_once(overload_point):
    # the "counted once" regression: a request that dies is either
    # abandoned or deadline_exceeded, never both, and never lost
    pt = overload_point
    expected = OVERLOAD.clients * OVERLOAD.requests
    assert (pt["completed"] + pt["abandoned"]
            + pt["deadline_exceeded"] == expected)
    for ten in pt["tenants"]:
        assert (ten["completed"] + ten["abandoned"]
                + ten["deadline_exceeded"] == ten["expected"])


def test_tenant_slices_sum_to_point(overload_point):
    pt = overload_point
    assert len(pt["tenants"]) == OVERLOAD.tenants
    for key in ("completed", "retried", "abandoned", "deadline_exceeded"):
        assert sum(t[key] for t in pt["tenants"]) == pt[key]


def test_overloaded_point_fails_slo(overload_point):
    assert overload_point["slo_ok"] is False


def test_healthy_point_passes_slo():
    pt = run_cluster_once("mvia", HEALTHY, 2_000.0)
    assert pt["violations"] == []
    assert pt["slo_ok"] is True
    for ten in pt["tenants"]:
        assert ten["slo"]["ok"] is True
        assert ten["completed"] == ten["expected"]


def test_connection_cap_rejects_surplus_dials():
    cfg = replace(HEALTHY, server_policy="conns=4", tenants=1,
                  mode="closed", requests=4)
    pt = run_cluster_once("mvia", cfg, None)
    assert pt["violations"] == []
    assert pt["conns_rejected"] > 0
    # the two rejected clients give up their whole quota as failed;
    # the four admitted ones complete everything
    assert pt["completed"] == 4 * 4
    assert pt["failed"] == 2 * 4


def test_closed_loop_retry_completes():
    cfg = replace(HEALTHY, mode="closed", tenants=1)
    pt = run_cluster_once("mvia", cfg, None)
    assert pt["violations"] == []
    assert pt["completed"] == cfg.clients * cfg.requests


def test_retry_client_survives_dead_server():
    """Liveness: every request resolves by its deadline even when the
    server dies mid-run and stops answering entirely — a window wedged
    full of zombie attempts must not hang the client."""
    from repro.cluster.workload import ClusterClient
    from repro.providers import Testbed
    from repro.via import Descriptor
    from repro.via.constants import Reliability

    tb = Testbed("mvia")
    client_node, server_node = tb.node_names[0], tb.node_names[1]
    n, window, timeout = 6, 2, 2_000.0
    cli = ClusterClient(
        tb, client_node, 0, server_node, n_requests=n, window=window,
        interval_us=1.0, offsets=[i * 500.0 for i in range(n)],
        retry=RetryPolicy(max_retries=2, base_us=100.0, cap_us=400.0,
                          jitter=0.0, timeout_us=timeout),
        deadline_us=200_000.0)

    def mute_server():
        # accept the connection, post receives, never respond
        h = tb.open(server_node, "server")
        vi = yield from h.create_vi(Reliability.RELIABLE_DELIVERY)
        buf = h.alloc(4096)
        mh = yield from h.register_mem(buf)
        for w in range(16):
            yield from h.post_recv(
                vi, Descriptor.recv([h.segment(buf, mh, w * 256, 256)]))
        req = yield from h.connect_wait(4000)
        yield from h.accept(req, vi)

    sproc = tb.spawn(mute_server(), "mute-server")
    cproc = tb.spawn(cli.body(), "client")
    tb.run(sproc)
    tb.run(cproc)
    stats = cli.stats
    assert stats["completed"] == 0
    assert (stats["abandoned"] + stats["deadline_exceeded"]) == n
    # resolved promptly: by the last request's deadline, not the run's
    last_deadline = cli.schedule[-1] + timeout
    assert stats["done_at"] <= last_deadline + 1_000.0


# ---------------------------------------------------------------------------
# byte-determinism with retries + shedding enabled

@given(seed=st.integers(min_value=0, max_value=31))
@settings(max_examples=3, deadline=None)
def test_report_bytes_identical_across_jobs_and_shards(seed):
    cfg = replace(OVERLOAD, requests=4, seed=seed)
    rates = (48_000.0,)
    serial = run_cluster(("mvia",), cfg, rates=rates, jobs=1)
    fanned = run_cluster(("mvia",), cfg, rates=rates, jobs=2)
    assert serial.to_json() == fanned.to_json()
    sharded = run_cluster(("mvia",), cfg, rates=rates, jobs=1, shards=3,
                          shard_workers="inline")
    assert serial.to_json() == sharded.to_json()


def test_sharded_point_matches_single_heap():
    pt, _stats = run_cluster_once_sharded("mvia", OVERLOAD, 48_000.0,
                                          shards=2, workers="inline")
    assert pt == run_cluster_once("mvia", OVERLOAD, 48_000.0)


# ---------------------------------------------------------------------------
# overload chaos cells

@pytest.mark.parametrize("name", ["retry_storm", "slow_server_shed",
                                  "partition_retry"])
def test_overload_scenarios_pass_quick(name):
    from repro.faults.chaos import run_scenario
    from repro.faults.scenarios import get_scenario

    r = run_scenario("mvia", get_scenario(name), seed=0, quick=True)
    assert r.ok, (r.note, r.violations)


def test_overload_scenario_deterministic():
    from repro.faults.chaos import run_scenario
    from repro.faults.scenarios import get_scenario

    sc = get_scenario("slow_server_shed")
    a = run_scenario("clan", sc, seed=2, quick=True)
    b = run_scenario("clan", sc, seed=2, quick=True)
    assert a.to_dict() == b.to_dict()


def test_rewind_refuses_overload_workload():
    from repro.faults.chaos import rewind_scenario
    from repro.faults.scenarios import get_scenario

    with pytest.raises(ValueError, match="overload workload"):
        rewind_scenario("mvia", get_scenario("retry_storm"))
