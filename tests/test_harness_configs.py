"""Cross-cutting TransferConfig combinations and remaining corners."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.providers import Testbed
from repro.via import Reliability, VipTimeout
from repro.via.constants import WaitMode
from repro.vibe import TransferConfig, run_bandwidth, run_latency
from repro.vibe.rusage import cpu_utilization, getrusage

from conftest import run_proc


def test_blocking_bandwidth_works(provider_name):
    m = run_bandwidth(provider_name,
                      TransferConfig(size=4096, count=30,
                                     mode=WaitMode.BLOCK))
    assert m.bandwidth_mbs > 0
    # blocking frees the receiver's CPU while streaming
    assert m.cpu_recv < 1.0


def test_send_cq_bandwidth(provider_name):
    m = run_bandwidth(provider_name,
                      TransferConfig(size=1024, count=30, use_send_cq=True))
    assert m.bandwidth_mbs > 0


def test_both_cqs_latency(provider_name):
    m = run_latency(provider_name,
                    TransferConfig(size=64, use_send_cq=True,
                                   use_recv_cq=True))
    assert m.latency_us > 0


def test_reliability_override_with_cq_and_segments():
    m = run_latency("clan", TransferConfig(
        size=4096, segments=4, use_recv_cq=True,
        reliability=Reliability.RELIABLE_RECEPTION,
    ))
    assert m.latency_us > 0


def test_mtu_and_reuse_combined():
    m = run_latency("bvia", TransferConfig(
        size=16384, mtu=2048, buffer_pool=8, reuse_fraction=0.5, iters=16,
    ))
    base = run_latency("bvia", TransferConfig(size=16384, mtu=2048,
                                              iters=16))
    assert m.latency_us > base.latency_us  # reuse misses on top of MTU


def test_latency_insensitive_to_seed(provider_name):
    """The base path has no randomness: seeds must not matter."""
    a = run_latency(provider_name, TransferConfig(size=256), seed=0)
    b = run_latency(provider_name, TransferConfig(size=256), seed=99)
    assert a.latency_us == b.latency_us


def test_connect_wait_server_timeout():
    tb = Testbed("clan")

    def server():
        h = tb.open("node1", "server")
        with pytest.raises(VipTimeout):
            yield from h.connect_wait(5, timeout=1000.0)

    run_proc(tb.sim, server())


def test_rusage_module_roundtrip():
    tb = Testbed("clan")
    h = tb.open("node0", "app")

    def body():
        before = getrusage(h)
        yield from h.actor.busy(10.0)
        yield from h.actor.busy(5.0, "sys")
        after = getrusage(h)
        assert cpu_utilization(before, after, 30.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            cpu_utilization(before, after, 0.0)

    run_proc(tb.sim, body())


@given(st.floats(min_value=0.01, max_value=0.15),
       st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_reliable_delivery_survives_any_loss_rate(loss, seed):
    """Property: under any plausible loss rate, every reliably-sent
    message is delivered exactly once, in order."""
    from repro.via import Descriptor
    from conftest import connected_endpoints, run_pair, simple_recv

    tb = Testbed("clan", loss_rate=loss, seed=seed)
    # keep the handshake off the lossy wire
    channels = [tb.fabric.node(n).nic.port.out_channel
                for n in tb.node_names]
    for ch in channels:
        ch.loss_rate = 0.0
    cs, ss = connected_endpoints(
        tb, reliability=Reliability.RELIABLE_DELIVERY)
    n = 10
    got = []

    def client():
        h, vi, region, mh = yield from cs()
        for ch in channels:
            ch.loss_rate = loss
        for i in range(n):
            h.write(region, bytes([i]) * 4)
            segs = [h.segment(region, mh, 0, 4)]
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi, timeout=500_000.0)

    def server():
        h, vi, region, mh = yield from ss()
        for _ in range(n):
            _desc, data = yield from simple_recv(h, vi, region, mh, 4)
            got.append(data[0])

    run_pair(tb, client(), server())
    assert got == list(range(n))
