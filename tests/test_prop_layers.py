"""Property-based tests for the programming-model layers."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layers import MsgEndpoint, connect_group
from repro.layers.dsm import connect_mesh
from repro.providers import Testbed

from conftest import run_pair

PAGE = 512  # small pages keep the state space interesting


# ---------------------------------------------------------------------------
# DSM: random serialized access sequences match a flat reference memory
# ---------------------------------------------------------------------------

@st.composite
def dsm_workload(draw):
    nnodes = draw(st.integers(min_value=2, max_value=3))
    npages = draw(st.integers(min_value=1, max_value=3))
    nops = draw(st.integers(min_value=1, max_value=12))
    region = npages * PAGE
    ops = []
    for _ in range(nops):
        node = draw(st.integers(min_value=0, max_value=nnodes - 1))
        offset = draw(st.integers(min_value=0, max_value=region - 1))
        length = draw(st.integers(min_value=1,
                                  max_value=min(region - offset, 300)))
        if draw(st.booleans()):
            data = draw(st.binary(min_size=length, max_size=length))
            ops.append((node, "w", offset, data))
        else:
            ops.append((node, "r", offset, length))
    return nnodes, npages, ops


@given(dsm_workload())
@settings(max_examples=25, deadline=None)
def test_dsm_matches_reference_memory(workload):
    """Strictly serialised random reads/writes across nodes behave like
    one flat memory (sequential consistency of the protocol)."""
    nnodes, npages, ops = workload
    names = [f"n{i}" for i in range(nnodes)]
    tb = Testbed("clan", node_names=tuple(names))
    setups = connect_mesh(tb, names, npages=npages, page_size=PAGE)
    reference = bytearray(npages * PAGE)
    shared = {"turn": 0}
    failures = []

    def app(i):
        node = yield from setups[i]
        for idx, (who, kind, offset, arg) in enumerate(ops):
            # strict global serialisation: one op at a time, in order.
            # (strictly-less: a node finishing setup late may find the
            # counter already past its first few foreign ops)
            while shared["turn"] < idx:
                yield tb.sim.timeout(3.0)
            if who == i:
                if kind == "w":
                    yield from node.write(offset, arg)
                    reference[offset:offset + len(arg)] = arg
                else:
                    data = yield from node.read(offset, arg)
                    if data != bytes(reference[offset:offset + arg]):
                        failures.append((idx, who, kind, offset))
                shared["turn"] = idx + 1
        # drain: let other nodes observe the final turn
        shared.setdefault("done", 0)
        shared["done"] += 1

    procs = [tb.spawn(app(i), f"app{i}") for i in range(nnodes)]
    for p in procs:
        tb.run(p)
    assert not failures


# ---------------------------------------------------------------------------
# collectives: any size, any root, any values
# ---------------------------------------------------------------------------

@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=5),
       st.lists(st.integers(min_value=0, max_value=2**30), min_size=6,
                max_size=6),
       st.binary(min_size=1, max_size=128))
@settings(max_examples=15, deadline=None)
def test_collectives_correct_for_any_shape(n, root, values, payload):
    root %= n
    names = [f"n{i}" for i in range(n)]
    tb = Testbed("iba", node_names=tuple(names))
    setups = connect_group(tb, names)
    out = {}

    def add(a, b):
        return struct.pack(">Q", struct.unpack(">Q", a)[0]
                           + struct.unpack(">Q", b)[0])

    def app(i):
        g = yield from setups[i]
        data = yield from g.bcast(payload if g.rank == root else None,
                                  root=root)
        total = yield from g.allreduce(struct.pack(">Q", values[g.rank]),
                                       add)
        yield from g.barrier()
        out[i] = (data, struct.unpack(">Q", total)[0])

    procs = [tb.spawn(app(i)) for i in range(n)]
    for p in procs:
        tb.run(p)
    expected_sum = sum(values[:n])
    for i in range(n):
        assert out[i] == (payload, expected_sum)


# ---------------------------------------------------------------------------
# message layer: random bidirectional traffic delivers exactly, per-tag FIFO
# ---------------------------------------------------------------------------

@st.composite
def traffic(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    msgs = []
    for _ in range(n):
        tag = draw(st.integers(min_value=0, max_value=2))
        size = draw(st.integers(min_value=0, max_value=3000))
        msgs.append((tag, size))
    return msgs


@given(traffic(), traffic())
@settings(max_examples=20, deadline=None)
def test_msg_layer_random_traffic(c2s, s2c):
    tb = Testbed("clan")
    got = {"server": [], "client": []}

    def payload(tag, size, i):
        return bytes((tag + size + i + j) % 256 for j in range(size))

    def endpoint(node, actor, disc, is_client):
        h = tb.open(node, actor)
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=1024, pool=8)
        yield from msg.setup()
        if is_client:
            yield from h.connect(vi, "node1", disc)
        else:
            req = yield from h.connect_wait(disc)
            yield from h.accept(req, vi)
        return msg

    def client():
        msg = yield from endpoint("node0", "client", 5, True)
        for i, (tag, size) in enumerate(c2s):
            yield from msg.send(tag, payload(tag, size, i))
        for _ in s2c:
            t, d = yield from msg.recv()
            got["client"].append((t, d))

    def server():
        msg = yield from endpoint("node1", "server", 5, False)
        for _ in c2s:
            t, d = yield from msg.recv()
            got["server"].append((t, d))
        for i, (tag, size) in enumerate(s2c):
            yield from msg.send(tag, payload(tag, size, i))

    run_pair(tb, client(), server())
    assert got["server"] == [(t, payload(t, s, i))
                             for i, (t, s) in enumerate(c2s)]
    assert got["client"] == [(t, payload(t, s, i))
                             for i, (t, s) in enumerate(s2c)]
