"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.providers import Testbed
from repro.via import Descriptor


def run_proc(sim, gen, name="test"):
    """Run one process to completion and return its value."""
    proc = sim.process(gen, name=name)
    return sim.run(proc)


def run_pair(tb: Testbed, client_gen, server_gen):
    """Run a client/server pair to completion; returns (client, server)
    process return values."""
    cproc = tb.spawn(client_gen, "client")
    sproc = tb.spawn(server_gen, "server")
    cval = tb.run(cproc)
    sval = tb.run(sproc)
    return cval, sval


def connected_endpoints(tb: Testbed, disc: int = 9, reliability=None,
                        bufsize: int = 4096):
    """Generator factories producing ``(handle, vi, region, mh)`` on each
    node with an established connection and a registered buffer."""

    def client_setup():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi(reliability=reliability)
        region = h.alloc(bufsize)
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, tb.node_names[1], disc)
        return h, vi, region, mh

    def server_setup():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi(reliability=reliability)
        region = h.alloc(bufsize)
        mh = yield from h.register_mem(region)
        req = yield from h.connect_wait(disc)
        yield from h.accept(req, vi)
        return h, vi, region, mh

    return client_setup, server_setup


def simple_send(h, vi, region, mh, data: bytes):
    """Post-send ``data`` from the start of ``region`` and wait."""
    h.write(region, data)
    segs = [h.segment(region, mh, 0, len(data))]
    yield from h.post_send(vi, Descriptor.send(segs))
    desc = yield from h.send_wait(vi)
    return desc


def simple_recv(h, vi, region, mh, length: int):
    """Post-recv into ``region`` and wait; returns (desc, bytes)."""
    segs = [h.segment(region, mh, 0, length)]
    yield from h.post_recv(vi, Descriptor.recv(segs))
    desc = yield from h.recv_wait(vi)
    return desc, h.read(region, desc.control.length)


@pytest.fixture(params=["mvia", "bvia", "clan"])
def provider_name(request):
    return request.param


def set_wire_loss(tb: Testbed, rate: float) -> None:
    """Set the loss rate of every channel in the fabric."""
    from repro.check.invariants import _iter_channels

    for _label, channel in _iter_channels(tb):
        channel.loss_rate = rate


@pytest.fixture
def checked_testbed():
    """Factory for testbeds with the conformance checker attached."""

    def make(provider: str = "mvia", **kwargs) -> Testbed:
        return Testbed(provider, check=True, **kwargs)

    return make
