"""Tests for the collective operations layer."""

import struct

import pytest

from repro.layers import CommGroup, connect_group
from repro.providers import Testbed


def run_group(provider, n, app_factory, **group_kw):
    """Wire an n-rank communicator and run one app per rank."""
    names = [f"n{i}" for i in range(n)]
    tb = Testbed(provider, node_names=tuple(names))
    setups = connect_group(tb, names, **group_kw)
    shared: dict = {"tb": tb}

    def runner(i):
        group = yield from setups[i]
        yield from app_factory(i)(group, shared)

    procs = [tb.spawn(runner(i), f"rank{i}") for i in range(n)]
    for p in procs:
        tb.run(p)
    return shared


def _pack(x: int) -> bytes:
    return struct.pack(">Q", x)


def _unpack(b: bytes) -> int:
    return struct.unpack(">Q", b)[0]


def _add(a: bytes, b: bytes) -> bytes:
    return _pack(_unpack(a) + _unpack(b))


def _maximum(a: bytes, b: bytes) -> bytes:
    return a if _unpack(a) >= _unpack(b) else b


@pytest.mark.parametrize("n", [2, 3, 4, 6, 8])
def test_barrier_synchronises(n):
    """No rank leaves the barrier before the slowest rank enters it."""
    def factory(i):
        def app(group, shared):
            tb = shared["tb"]
            # rank i dawdles proportionally before entering
            yield tb.sim.timeout(200.0 * i)
            shared[f"enter{group.rank}"] = tb.now
            yield from group.barrier()
            shared[f"leave{group.rank}"] = tb.now
        return app

    shared = run_group("clan", n, factory)
    latest_entry = max(shared[f"enter{i}"] for i in range(n))
    for i in range(n):
        assert shared[f"leave{i}"] >= latest_entry


@pytest.mark.parametrize("n", [2, 3, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_reaches_everyone(n, root):
    if root >= n:
        pytest.skip("root outside group")
    payload = bytes(range(64))

    def factory(i):
        def app(group, shared):
            data = yield from group.bcast(
                payload if group.rank == root else None, root=root)
            shared[f"got{group.rank}"] = data
        return app

    shared = run_group("clan", n, factory)
    for i in range(n):
        assert shared[f"got{i}"] == payload


def test_bcast_root_must_supply_payload():
    def factory(i):
        def app(group, shared):
            if group.rank == 0:
                with pytest.raises(ValueError):
                    yield from group.bcast(None, root=0)
                yield from group.bcast(b"after-the-error", root=0)
            else:
                data = yield from group.bcast(None, root=0)
                shared["data"] = data
        return app

    shared = run_group("clan", 2, factory)
    assert shared["data"] == b"after-the-error"


@pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8])
def test_allreduce_sum_and_max(n):
    def factory(i):
        def app(group, shared):
            total = yield from group.allreduce(_pack(group.rank + 1), _add)
            biggest = yield from group.allreduce(_pack(group.rank * 10),
                                                 _maximum)
            shared[f"sum{group.rank}"] = _unpack(total)
            shared[f"max{group.rank}"] = _unpack(biggest)
        return app

    shared = run_group("clan", n, factory)
    for i in range(n):
        assert shared[f"sum{i}"] == n * (n + 1) // 2
        assert shared[f"max{i}"] == (n - 1) * 10


def test_allreduce_rejects_rendezvous_payload():
    def factory(i):
        def app(group, shared):
            if group.rank == 0:
                with pytest.raises(ValueError, match="eager"):
                    yield from group.allreduce(b"x" * 100_000, _add)
                shared["checked"] = True
            return
            yield  # pragma: no cover

        return app

    # only rank 0 raises; give the others an immediate no-op
    names = ["n0", "n1"]
    tb = Testbed("clan", node_names=tuple(names))
    setups = connect_group(tb, names)
    shared = {"tb": tb}

    def runner(i):
        group = yield from setups[i]
        if i == 0:
            with pytest.raises(ValueError, match="eager"):
                yield from group.allreduce(b"x" * 100_000, _add)
            shared["checked"] = True

    procs = [tb.spawn(runner(i)) for i in range(2)]
    tb.run(procs[0])
    assert shared["checked"]


def test_collectives_work_on_every_provider(provider_name):
    def factory(i):
        def app(group, shared):
            yield from group.barrier()
            data = yield from group.bcast(
                b"multi" if group.rank == 0 else None, root=0)
            total = yield from group.allreduce(_pack(group.rank), _add)
            shared[f"r{group.rank}"] = (data, _unpack(total))
        return app

    shared = run_group(provider_name, 3, factory)
    for i in range(3):
        assert shared[f"r{i}"] == (b"multi", 3)


def test_group_validation():
    tb = Testbed("clan")
    with pytest.raises(ValueError):
        CommGroup(5, 3, {})
    with pytest.raises(ValueError):
        CommGroup(0, 1, {})
    with pytest.raises(ValueError):
        CommGroup(0, 3, {1: None})  # missing peer 2


def test_collective_depth_is_logarithmic():
    """Barrier time grows ~log2(n), not linearly."""
    times = {}
    for n in (2, 8):
        def factory(i):
            def app(group, shared):
                tb = shared["tb"]
                # first barrier absorbs connection-setup skew (rank k
                # dialled k peers serially); the second is the measurement
                yield from group.barrier()
                t0 = tb.now
                yield from group.barrier()
                shared.setdefault("times", []).append(tb.now - t0)
            return app

        shared = run_group("clan", n, factory)
        times[n] = max(shared["times"])
    # 8 ranks = 3 rounds vs 1 round: far less than the 7x of a linear
    # fan-in, allowing overhead to make it a bit above 3x
    assert times[8] < times[2] * 5


@pytest.mark.parametrize("n", [3, 5, 6, 7])
def test_allreduce_non_power_of_two_each_rank_counted_once(n):
    """Fold-in/fold-out must mix every contribution in exactly once.

    Each rank contributes 2**rank; the sum equals 2**n - 1 iff no rank
    is dropped or double-counted by the remainder handling.
    """
    def factory(i):
        def app(group, shared):
            total = yield from group.allreduce(_pack(1 << group.rank), _add)
            shared[f"t{group.rank}"] = _unpack(total)
        return app

    shared = run_group("clan", n, factory)
    for i in range(n):
        assert shared[f"t{i}"] == (1 << n) - 1


def test_barrier_under_loss_chaos_cell():
    """Dissemination barrier on a lossy fabric: reliable-delivery VIs
    retransmit the dropped signals, every rank still synchronises, and
    the online invariant checker stays clean."""
    from repro.via.constants import Reliability

    n = 4
    names = [f"n{i}" for i in range(n)]
    tb = Testbed("mvia", node_names=tuple(names), loss_rate=0.05,
                 seed=7, check=True)
    setups = connect_group(tb, names,
                           reliability=Reliability.RELIABLE_DELIVERY)
    shared: dict = {}

    def runner(i):
        group = yield from setups[i]
        yield tb.sim.timeout(50.0 * i)
        shared[f"enter{i}"] = tb.now
        yield from group.barrier()
        shared[f"leave{i}"] = tb.now
        yield from group.barrier()   # a second epoch also survives loss

    procs = [tb.spawn(runner(i), f"rank{i}") for i in range(n)]
    for p in procs:
        tb.run(p)
    tb.run()
    latest_entry = max(shared[f"enter{i}"] for i in range(n))
    for i in range(n):
        assert shared[f"leave{i}"] >= latest_entry
    retx = sum(p.engine.retransmissions for p in tb.providers.values())
    assert retx > 0   # the fabric really did drop barrier traffic
    tb.checker.check_quiesced(tb)
