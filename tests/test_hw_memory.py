"""Unit tests for the virtual-memory model."""

import pytest

from repro.hw.memory import (
    PAGE_SIZE,
    MemoryError_,
    MemorySystem,
    PageTable,
    ProtectionError,
    page_span,
)


def test_page_span_single_page():
    assert list(page_span(0, 1)) == [0]
    assert list(page_span(100, 100)) == [0]


def test_page_span_boundary():
    assert list(page_span(PAGE_SIZE - 1, 2)) == [0, 1]
    assert list(page_span(PAGE_SIZE, PAGE_SIZE)) == [1]


def test_page_span_zero_length_still_touches_a_page():
    assert list(page_span(PAGE_SIZE * 3, 0)) == [3]


def test_page_span_rejects_negative():
    with pytest.raises(ValueError):
        page_span(-1, 10)


def test_alloc_is_page_aligned():
    mem = MemorySystem()
    region = mem.alloc(100)
    assert region.base % PAGE_SIZE == 0
    assert region.length == 100


def test_alloc_rejects_nonpositive():
    mem = MemorySystem()
    with pytest.raises(ValueError):
        mem.alloc(0)


def test_write_read_roundtrip():
    mem = MemorySystem()
    region = mem.alloc(64)
    mem.write(region.base + 8, b"hello")
    assert mem.read(region.base + 8, 5) == b"hello"
    assert mem.read(region.base, 3) == b"\x00\x00\x00"


def test_write_outside_region_rejected():
    mem = MemorySystem()
    region = mem.alloc(16)
    with pytest.raises(ProtectionError):
        mem.write(region.base + 10, b"0123456789")
    with pytest.raises(ProtectionError):
        mem.read(region.base - 1, 1)


def test_unallocated_address_rejected():
    mem = MemorySystem()
    with pytest.raises(ProtectionError):
        mem.region_at(0x5)


def test_pin_maps_pages_and_refcounts():
    mem = MemorySystem()
    region = mem.alloc(3 * PAGE_SIZE)
    pages = mem.pin(region.base, 3 * PAGE_SIZE)
    assert len(pages) == 3
    assert mem.pinned_pages == 3
    again = mem.pin(region.base, PAGE_SIZE)
    assert mem.pinned_pages == 3  # shared page refcounted, not re-pinned
    mem.unpin(again)
    assert mem.pinned_pages == 3
    mem.unpin(pages)
    assert mem.pinned_pages == 0


def test_unpin_not_pinned_rejected():
    mem = MemorySystem()
    with pytest.raises(MemoryError_):
        mem.unpin([42])


def test_pin_budget_enforced():
    mem = MemorySystem(pinnable_pages=2)
    region = mem.alloc(3 * PAGE_SIZE)
    with pytest.raises(MemoryError_):
        mem.pin(region.base, 3 * PAGE_SIZE)
    assert mem.pinned_pages == 0  # nothing partially pinned


def test_pin_outside_region_rejected():
    mem = MemorySystem()
    region = mem.alloc(100)
    with pytest.raises(ProtectionError):
        mem.pin(region.base, PAGE_SIZE * 2)


def test_is_pinned():
    mem = MemorySystem()
    region = mem.alloc(PAGE_SIZE)
    assert not mem.is_pinned(region.base, 10)
    pages = mem.pin(region.base, 10)
    assert mem.is_pinned(region.base, 10)
    mem.unpin(pages)
    assert not mem.is_pinned(region.base, 10)


def test_free_requires_unpinned():
    mem = MemorySystem()
    region = mem.alloc(PAGE_SIZE)
    pages = mem.pin(region.base, 100)
    with pytest.raises(MemoryError_):
        mem.free(region)
    mem.unpin(pages)
    mem.free(region)
    with pytest.raises(MemoryError_):
        mem.free(region)  # double free
    with pytest.raises(ProtectionError):
        mem.read(region.base, 1)


def test_page_table_translate():
    pt = PageTable()
    frame = pt.map_page(7)
    assert pt.translate(7) == frame
    assert pt.map_page(7) == frame  # idempotent
    pt.unmap_page(7)
    with pytest.raises(ProtectionError):
        pt.translate(7)


def test_page_table_frames_never_reused():
    pt = PageTable()
    f1 = pt.map_page(1)
    pt.unmap_page(1)
    f2 = pt.map_page(1)
    assert f2 != f1


def test_distinct_allocations_dont_overlap():
    mem = MemorySystem()
    regions = [mem.alloc(1000) for _ in range(10)]
    spans = sorted((r.base, r.end) for r in regions)
    for (b1, e1), (b2, _e2) in zip(spans, spans[1:]):
        assert e1 <= b2
