"""Unit tests for completion queues."""

import pytest

from repro.sim import Simulator
from repro.via import (
    CompletionStatus,
    Descriptor,
    Reliability,
    VI,
    VipErrorResource,
    VipStateError,
)
from repro.via.cq import CompletionQueue


def make():
    sim = Simulator()
    vi = VI(sim, "n0", Reliability.UNRELIABLE)
    cq = CompletionQueue(sim, depth=4)
    return sim, vi, cq


def test_notify_and_pop_fifo():
    _sim, vi, cq = make()
    d1, d2 = Descriptor.recv([]), Descriptor.recv([])
    cq.notify(vi.recv_q, d1)
    cq.notify(vi.send_q, d2)
    assert cq.try_pop() == (vi.recv_q, d1)
    assert cq.try_pop() == (vi.send_q, d2)
    assert cq.try_pop() is None
    assert cq.total_notifications == 2


def test_depth_overflow():
    _sim, vi, cq = make()
    for _ in range(4):
        cq.notify(vi.recv_q, Descriptor.recv([]))
    with pytest.raises(VipErrorResource, match="overflow"):
        cq.notify(vi.recv_q, Descriptor.recv([]))


def test_bad_depth():
    with pytest.raises(VipErrorResource):
        CompletionQueue(Simulator(), depth=0)


def test_destroy_rules():
    _sim, vi, cq = make()
    cq.attached = 1
    with pytest.raises(VipStateError, match="attached"):
        cq.destroy()
    cq.attached = 0
    cq.notify(vi.recv_q, Descriptor.recv([]))
    with pytest.raises(VipStateError, match="unreaped"):
        cq.destroy()
    cq.try_pop()
    cq.destroy()
    assert cq.destroyed
    with pytest.raises(VipStateError):
        cq.try_pop()
    with pytest.raises(VipStateError):
        cq.destroy()


def test_signal_fires_on_notify():
    sim, vi, cq = make()
    woke = []
    ev = cq.signal.wait()
    ev.callbacks.append(lambda e: woke.append(True))
    cq.notify(vi.recv_q, Descriptor.recv([]))
    sim.run()
    assert woke == [True]


def test_merges_multiple_work_queues():
    """A CQ merges completions from many VIs (the spec's whole point)."""
    sim = Simulator()
    cq = CompletionQueue(sim, depth=64)
    vis = [VI(sim, "n0") for _ in range(3)]
    for i, vi in enumerate(vis):
        d = Descriptor.recv([])
        cq.notify(vi.recv_q, d)
    sources = [cq.try_pop()[0].vi for _ in range(3)]
    assert sources == vis
