"""Unit tests for Resource / Store / Signal."""

import pytest

from repro.sim import Resource, Signal, SimulationError, Simulator, Store


def test_resource_grants_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(n):
        yield from res.acquire(2.0)
        order.append((n, sim.now))

    for n in range(3):
        sim.process(worker(n))
    sim.run()
    assert order == [(0, 2.0), (1, 4.0), (2, 6.0)]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(n):
        yield from res.acquire(2.0)
        done.append((n, sim.now))

    for n in range(4):
        sim.process(worker(n))
    sim.run()
    assert done == [(0, 2.0), (1, 2.0), (2, 4.0), (3, 4.0)]


def test_resource_release_without_request():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req1 = res.request()
    req2 = res.request()
    assert res.in_use == 1 and res.queued == 1
    req2.cancel()
    assert res.queued == 0
    res.release()
    assert res.in_use == 0
    assert req1.triggered


def test_resource_bad_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(3.0)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 3.0)]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer():
        for i in range(3):
            yield store.put(i)
            times.append(sim.now)

    def consumer():
        for _ in range(3):
            yield sim.timeout(2.0)
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # first put immediate; later puts wait for space
    assert times[0] == 0.0
    assert times[1] == 2.0
    assert times[2] == 4.0


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    assert store.try_get() == "x"
    assert len(store) == 0


def test_store_bad_capacity():
    with pytest.raises(ValueError):
        Store(Simulator(), capacity=0)


def test_signal_broadcasts_to_all_waiters():
    sim = Simulator()
    sig = Signal(sim)
    woke = []

    def waiter(n):
        value = yield sig.wait()
        woke.append((n, value))

    for n in range(3):
        sim.process(waiter(n))

    def firer():
        yield sim.timeout(1.0)
        count = sig.fire("go")
        assert count == 3

    sim.process(firer())
    sim.run()
    assert sorted(woke) == [(0, "go"), (1, "go"), (2, "go")]
    assert sig.fire_count == 1


def test_signal_fire_with_no_waiters():
    sim = Simulator()
    sig = Signal(sim)
    assert sig.fire() == 0


def test_signal_waiters_after_fire_need_new_fire():
    sim = Simulator()
    sig = Signal(sim)
    sig.fire()
    woke = []

    def waiter():
        yield sig.wait()
        woke.append(sim.now)

    def firer():
        yield sim.timeout(2.0)
        sig.fire()

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert woke == [2.0]
