"""Mutation smoke tests: every invariant class must actually fire.

A checker that never fails is indistinguishable from no checker.  Each
test seeds one deliberate violation — either end-to-end (mutating live
model state mid-run) or at the hook level with real connected objects —
and asserts the corresponding :class:`ConformanceError`.
"""

import pytest

from repro.check import ConformanceError
from repro.providers import Testbed
from repro.via import Descriptor
from repro.via.constants import CompletionStatus, Reliability, ViState
from repro.via.descriptor import DataSegment

from conftest import connected_endpoints, run_pair, run_proc


def _connected(provider="mvia", reliability=None):
    """Checked testbed with an established connection on each side."""
    tb = Testbed(provider, check=True)
    c_setup, s_setup = connected_endpoints(tb, reliability=reliability)
    got = {}

    def c():
        got["c"] = yield from c_setup()

    def s():
        got["s"] = yield from s_setup()

    run_pair(tb, c(), s())
    return tb, got["c"], got["s"]


def test_fifo_reorder_caught_end_to_end():
    """Seed a self-consistent completion reordering inside the live
    receive queue; the shadow FIFO must still catch it."""
    tb, (hc, vic, rc, mhc), (hs, vis, rs, mhs) = _connected()

    def server_mutated():
        d1 = Descriptor.recv([hs.segment(rs, mhs, 0, 64)])
        d2 = Descriptor.recv([hs.segment(rs, mhs, 64, 64)])
        yield from hs.post_recv(vis, d1)
        yield from hs.post_recv(vis, d2)
        # the seeded bug: swap BOTH queue views so the model stays
        # internally consistent while violating posted order
        q, c = vis.recv_q.posted, vis.recv_q._claimable
        q[0], q[1] = q[1], q[0]
        c[0], c[1] = c[1], c[0]
        yield from hs.recv_wait(vis)

    def client_send():
        d = Descriptor.send([hc.segment(rc, mhc, 0, 64)])
        yield from hc.post_send(vic, d)
        yield from hc.send_wait(vic)

    with pytest.raises(ConformanceError, match="FIFO violation"):
        run_pair(tb, client_send(), server_mutated())


def test_double_completion_fires():
    tb, _, (hs, vis, rs, mhs) = _connected()
    d = Descriptor.recv([hs.segment(rs, mhs, 0, 64)])
    run_proc(tb.sim, hs.post_recv(vis, d))
    d.control.status = CompletionStatus.SUCCESS
    tb.checker.on_complete(vis.recv_q, d, CompletionStatus.SUCCESS)
    with pytest.raises(ConformanceError, match="not posted"):
        tb.checker.on_complete(vis.recv_q, d, CompletionStatus.SUCCESS)


def test_completion_without_status_writeback_fires():
    tb, _, (hs, vis, rs, mhs) = _connected()
    d = Descriptor.recv([hs.segment(rs, mhs, 0, 64)])
    run_proc(tb.sim, hs.post_recv(vis, d))
    # model "completes" the head but forgot the status writeback
    with pytest.raises(ConformanceError, match="PENDING"):
        tb.checker.on_complete(vis.recv_q, d, CompletionStatus.PENDING)


def test_cq_deposit_before_writeback_fires():
    tb, _, (hs, vis, rs, mhs) = _connected()
    pending = Descriptor.recv([hs.segment(rs, mhs, 0, 64)])
    with pytest.raises(ConformanceError, match="precedes"):
        tb.checker.on_cq_deposit(_FakeCq(), vis.recv_q, pending)
    orphan = Descriptor.recv([hs.segment(rs, mhs, 0, 64)])
    orphan.control.status = CompletionStatus.SUCCESS
    with pytest.raises(ConformanceError, match="without a completed"):
        tb.checker.on_cq_deposit(_FakeCq(), vis.recv_q, orphan)


class _FakeCq:
    cq_id = 999


def test_illegal_vi_transition_fires():
    tb, (hc, vic, _rc, _mhc), _ = _connected()
    with pytest.raises(ConformanceError, match="illegal transition"):
        tb.checker.on_vi_transition(vic, ViState.IDLE, ViState.ERROR)


def test_dma_through_deregistered_handle_fires():
    tb, (hc, vic, rc, mhc), _ = _connected()
    d = Descriptor.send([hc.segment(rc, mhc, 0, 64)])
    run_proc(tb.sim, hc.deregister_mem(mhc))
    with pytest.raises(ConformanceError, match="deregistered handle"):
        tb.checker.on_local_dma(tb.provider(tb.node_names[0]), vic, d)


def test_deregister_under_posted_descriptor_fires():
    tb, _, (hs, vis, rs, mhs) = _connected()
    d = Descriptor.recv([hs.segment(rs, mhs, 0, 64)])
    run_proc(tb.sim, hs.post_recv(vis, d))
    with pytest.raises(ConformanceError, match="still references"):
        run_proc(tb.sim, hs.deregister_mem(mhs))


def test_dma_outside_registered_range_fires():
    tb, (hc, vic, rc, mhc), _ = _connected()
    overrun = DataSegment(rc.base + rc.length - 8, 64, mhc)
    beyond = Descriptor.send([overrun])
    with pytest.raises(ConformanceError, match="outside handle"):
        tb.checker.on_local_dma(tb.provider(tb.node_names[0]), vic, beyond)


def test_retransmission_on_unreliable_vi_fires():
    tb, (hc, vic, _rc, _mhc), _ = _connected(
        reliability=Reliability.UNRELIABLE)
    with pytest.raises(ConformanceError, match="UNRELIABLE"):
        tb.checker.on_retransmit(vic)


def test_out_of_order_reliable_delivery_fires():
    tb, _, (hs, vis, _rs, _mhs) = _connected(
        reliability=Reliability.RELIABLE_DELIVERY)
    tb.checker.on_deliver(vis, 0)
    with pytest.raises(ConformanceError, match="out of order"):
        tb.checker.on_deliver(vis, 2)


def test_duplicate_datagram_delivery_fires():
    tb, _, (hs, vis, _rs, _mhs) = _connected(
        reliability=Reliability.UNRELIABLE)
    tb.checker.on_deliver(vis, 0)
    tb.checker.on_deliver(vis, 3)       # gaps are legal datagrams
    with pytest.raises(ConformanceError, match="duplicate delivery"):
        tb.checker.on_deliver(vis, 1)


def test_packet_conservation_audit_fires():
    tb, client, server = _connected()
    hc, vic, rc, mhc = client
    hs, vis, rs, mhs = server

    def c():
        hc.write(rc, b"x" * 32)
        segs = [hc.segment(rc, mhc, 0, 32)]
        yield from hc.post_send(vic, Descriptor.send(segs))
        yield from hc.send_wait(vic)

    def s():
        segs = [hs.segment(rs, mhs, 0, 32)]
        yield from hs.post_recv(vis, Descriptor.recv(segs))
        yield from hs.recv_wait(vis)

    run_pair(tb, c(), s())
    tb.run()                                 # drain to quiesce
    tb.checker.check_quiesced(tb)            # clean audit passes
    channel = tb.fabric.node(tb.node_names[0]).nic.port.out_channel
    channel.sent_packets += 1                # seeded accounting bug
    with pytest.raises(ConformanceError, match="conservation"):
        tb.checker.check_quiesced(tb)
