"""Tests for the concurrent active-VI streams benchmark."""

import pytest

from repro.vibe import concurrent_streams


def test_concurrency_fills_the_pipe():
    """Blocking single streams leave wire idle; parallel streams
    recover it."""
    res = concurrent_streams("clan", stream_counts=(1, 4), messages=16)
    assert res.point(4).bandwidth_mbs > 2 * res.point(1).bandwidth_mbs


def test_aggregate_capped_by_line_rate(provider_name):
    from repro.providers import Testbed

    line = Testbed(provider_name).fabric.network.bandwidth
    res = concurrent_streams(provider_name, stream_counts=(8,), messages=12)
    assert res.point(8).bandwidth_mbs < line


def test_fifo_engines_are_fair(provider_name):
    res = concurrent_streams(provider_name, stream_counts=(4,), messages=12)
    assert res.point(4).extra["jain_fairness"] > 0.97


def test_bvia_aggregate_sags_under_many_active_vis():
    """The per-open-VI dispatch scan is paid per message: past the
    sweet spot, adding streams *reduces* BVIA's aggregate."""
    res = concurrent_streams("bvia", stream_counts=(4, 8), messages=16)
    assert res.point(8).bandwidth_mbs < res.point(4).bandwidth_mbs
    clan = concurrent_streams("clan", stream_counts=(4, 8), messages=16)
    assert clan.point(8).bandwidth_mbs >= clan.point(4).bandwidth_mbs * 0.98
