"""Unit tests for the observability layer (``repro.obs``).

Metric primitives, span recording, phase reconstruction, the Perfetto
exporter, testbed harvesting, and the ``Measurement.get`` /
``BenchResult.point`` contract unification.
"""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.perfetto import chrome_trace, dumps_trace, write_chrome_trace
from repro.obs.spans import PhaseBoundary, Span, SpanRecorder, phase_spans
from repro.sim import Simulator
from repro.sim.trace import Tracer
from repro.vibe.metrics import BenchResult, Measurement, merge_tables

# ---------------------------------------------------------------------------
# metric primitives


def test_counter_rejects_negative_increment():
    c = Counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_extremes():
    g = Gauge("g")
    g.set(3.0)
    g.add(-5.0)
    assert g.snapshot() == {"value": -2.0, "max": 3.0, "min": -2.0}


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", ())
    with pytest.raises(ValueError):
        Histogram("h", (1.0, 1.0))


def test_histogram_merge_rejects_mismatched_bounds():
    a = Histogram("a", (1.0, 2.0))
    b = Histogram("b", (1.0, 4.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_empty_quantile_is_zero():
    assert Histogram("h", (1.0,)).quantile(0.5) == 0.0
    with pytest.raises(ValueError):
        Histogram("h", (1.0,)).quantile(1.5)


def test_registry_kind_conflict():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")
    with pytest.raises(KeyError):
        reg.get("missing")


def test_registry_conveniences_create_on_first_use():
    reg = MetricsRegistry()
    reg.inc("events", 3)
    reg.set_gauge("depth", 7.0)
    reg.observe("bytes", 256, DEFAULT_SIZE_BUCKETS)
    assert "events" in reg and reg.names() == ["bytes", "depth", "events"]
    snap = reg.snapshot()
    assert snap["events"] == {"kind": "counter", "value": 3}
    assert snap["depth"]["value"] == 7.0
    assert snap["bytes"]["count"] == 1


def test_registry_to_json_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a", 2)
        return reg.to_json(meta={"provider": "clan"})

    text = build()
    assert text == build()
    assert text.endswith("\n")
    doc = json.loads(text)
    assert doc["meta"] == {"provider": "clan"}
    assert list(doc["metrics"]) == ["a", "b"]


# ---------------------------------------------------------------------------
# spans


def test_span_rejects_backwards_interval():
    with pytest.raises(ValueError):
        Span("s", 2.0, 1.0)


def test_span_recorder_context_and_begin_end():
    sim = Simulator()
    rec = SpanRecorder(sim)

    def proc():
        with rec.span("outer", node="n"):
            yield sim.timeout(5.0)
            rec.begin("inner", node="n")
            yield sim.timeout(2.0)
            rec.end("inner", node="n", size=4)

    sim.run(sim.process(proc()))
    outer = rec.select("outer")[0]
    inner = rec.select("inner", node="n")[0]
    assert (outer.start, outer.end) == (0.0, 7.0)
    assert (inner.start, inner.end, inner.args) == (5.0, 7.0, {"size": 4})
    assert len(rec) == 2


def test_span_recorder_begin_end_misuse():
    rec = SpanRecorder(Simulator())
    rec.begin("a")
    with pytest.raises(ValueError):
        rec.begin("a")
    with pytest.raises(ValueError):
        rec.end("never-opened")


def test_phase_spans_first_vs_last_and_errors():
    tracer = Tracer()
    for t in (1.0, 10.0):
        tracer.emit(t, "host", "go", "n0")
        tracer.emit(t + 2.0, "nic", "done", "n1")
    boundary = PhaseBoundary("phase", ("host", "go", 0), ("nic", "done", 1))
    first, = phase_spans(tracer, [boundary], nodes=("n0", "n1"),
                         select="first")
    last, = phase_spans(tracer, [boundary], nodes=("n0", "n1"))
    assert (first.start, first.end) == (1.0, 3.0)
    assert (last.start, last.end) == (10.0, 12.0)
    assert first.node == "n0" and first.category == "phase"
    with pytest.raises(ValueError):
        phase_spans(tracer, [boundary], select="median")
    with pytest.raises(RuntimeError):
        phase_spans(tracer, [PhaseBoundary(
            "missing", ("host", "nope", 0), ("nic", "done", 1))])


# ---------------------------------------------------------------------------
# perfetto exporter


def _sample_doc():
    tracer = Tracer()
    tracer.emit(1.0, "host", "post", "node0", desc=1)
    tracer.emit(2.0, "wire", "tx", "node0")
    tracer.emit(3.0, "host", "reap", "node1", obj=object())
    spans = [Span("setup", 0.0, 1.5, node="node0")]
    return chrome_trace(tracer.events, spans, meta={"provider": "x"})


def test_chrome_trace_structure():
    doc = _sample_doc()
    assert doc["displayTimeUnit"] == "ns"
    assert doc["metadata"] == {"provider": "x"}
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    # process_name per node + thread_name per (node, category) track
    assert {m["name"] for m in meta} == {"process_name", "thread_name"}
    # pids by first appearance: node0 -> 1, node1 -> 2
    procs = {m["args"]["name"]: m["pid"] for m in meta
             if m["name"] == "process_name"}
    assert procs == {"node0": 1, "node1": 2}
    instants = [e for e in events if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["post", "tx", "reap"]
    assert all(e["s"] == "t" for e in instants)
    # non-JSON-safe info values are stringified, not dropped
    reap = instants[-1]
    assert isinstance(reap["args"]["obj"], str)
    complete, = [e for e in events if e["ph"] == "X"]
    assert (complete["ts"], complete["dur"]) == (0.0, 1.5)


def test_dumps_trace_accepts_tracer_and_is_deterministic(tmp_path):
    tracer = Tracer()
    tracer.emit(1.0, "host", "post", "node0")
    text = dumps_trace(tracer)
    assert text == dumps_trace(list(tracer.events))
    path = tmp_path / "trace.json"
    write_chrome_trace(path, tracer)
    assert path.read_text() == text
    json.loads(text)


# ---------------------------------------------------------------------------
# Measurement.get / BenchResult.point contract (unified: both raise)


def test_measurement_get_raises_on_unknown_metric():
    m = Measurement(4, latency_us=10.0, extra={"overhead_us": 1.0})
    assert m.get("latency_us") == 10.0
    assert m.get("overhead_us") == 1.0
    assert m.get("bandwidth_mbs") is None      # known field, just unset
    with pytest.raises(KeyError):
        m.get("no_such_metric")
    assert m.get("no_such_metric", None) is None
    assert m.get("no_such_metric", 42) == 42


def test_benchresult_point_raises_like_get():
    r = BenchResult("b", "clan", [Measurement(4, latency_us=1.0)])
    with pytest.raises(KeyError):
        r.point(1024)
    assert r.series("tps") == [(4, None)]
    assert r.meta == {}


def test_merge_tables_with_mismatched_metric_sets():
    """Points missing a metric (or a param) render as '-', never raise."""
    a = BenchResult("b", "mvia", [
        Measurement(4, extra={"overhead_us": 1.0}),
        Measurement(1024, extra={"overhead_us": 2.0}),
    ])
    b = BenchResult("b", "clan", [
        Measurement(4, latency_us=9.0),     # no overhead_us at all
    ])
    table = merge_tables([a, b], "overhead_us")
    lines = table.splitlines()
    assert lines[1].split() == ["param", "mvia", "clan"]
    assert lines[2].split() == ["4", "1.00", "-"]
    assert lines[3].split() == ["1024", "2.00", "-"]


def test_repository_roundtrips_meta(tmp_path):
    from repro.vibe.repository import ResultRepository

    result = BenchResult("b", "clan", [Measurement(4, latency_us=1.0)],
                         params={"sizes": [4]},
                         meta={"provider": "clan", "version": "1.0.0"})
    repo = ResultRepository(tmp_path)
    repo.save("plat", result)
    loaded = repo.load("plat", "b")
    assert loaded.meta == result.meta
    assert loaded.params == result.params


# ---------------------------------------------------------------------------
# harvesting a real (tiny) run


def test_harvest_testbed_publishes_layered_metrics():
    from repro.obs.harvest import harvest_testbed
    from repro.obs.profile import profile_transfer

    prof = profile_transfer("clan", size=64)
    # harvest_testbed is the standalone flavour; the registry embedded in
    # the profile was filled by harvest_into plus live histogram sites
    names = set(prof.registry.names())
    for expected in (
        "sim.events_run", "sim.ctx_switches", "sim.now_us",
        "cpu.node0.client.utime_us", "cpu.node0.client.poll_us",
        "nic.node0.doorbells", "nic.node0.dma.bytes",
        "nic.node1.tlb.hits", "via.node0.send.posted",
        "via.node1.cq.notifications", "wire.switch.forwarded",
        "wire.node0.up.packets", "wire.node1.down.delivered",
    ):
        assert expected in names, expected
    snap = prof.registry.snapshot()
    assert snap["via.node0.send.posted"]["value"] == \
        snap["via.node0.send.completed"]["value"] >= 1
    assert snap["cpu.node0.client.poll_us"]["value"] > 0
    # live histogram sites fire only when sim.metrics is attached
    assert snap["via.node0.msg_sent_bytes"]["count"] == 1
