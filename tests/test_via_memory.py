"""Unit tests for VIA memory-registration semantics."""

import pytest

from repro.hw.memory import MemorySystem, PAGE_SIZE
from repro.via import MemoryRegistry, VipProtectionError, VipStateError


def setup():
    mem = MemorySystem()
    return mem, MemoryRegistry(mem)


def test_register_pins_pages():
    mem, registry = setup()
    region = mem.alloc(3 * PAGE_SIZE)
    mh = registry.register(region.base, region.length, tag=5)
    assert mh.page_count == 3
    assert mem.pinned_pages == 3
    assert registry.lookup(mh.handle_id) is mh


def test_deregister_unpins_and_invalidates():
    mem, registry = setup()
    region = mem.alloc(PAGE_SIZE)
    mh = registry.register(region.base, region.length, tag=5)
    registry.deregister(mh)
    assert mem.pinned_pages == 0
    assert not mh.active
    with pytest.raises(VipProtectionError):
        registry.lookup(mh.handle_id)
    with pytest.raises(VipStateError):
        registry.deregister(mh)


def test_register_requires_positive_length():
    mem, registry = setup()
    region = mem.alloc(64)
    with pytest.raises(VipProtectionError):
        registry.register(region.base, 0, tag=1)


def test_check_local_coverage_and_tags():
    mem, registry = setup()
    region = mem.alloc(1000)
    mh = registry.register(region.base, 500, tag=5)
    registry.check_local(region.base, 500, mh, tag=5)
    registry.check_local(region.base + 100, 50, mh, tag=5)
    with pytest.raises(VipProtectionError, match="tag"):
        registry.check_local(region.base, 10, mh, tag=6)
    with pytest.raises(VipProtectionError, match="outside"):
        registry.check_local(region.base, 501, mh, tag=5)


def test_check_local_rejects_deregistered():
    mem, registry = setup()
    region = mem.alloc(100)
    mh = registry.register(region.base, 100, tag=1)
    registry.deregister(mh)
    with pytest.raises(VipProtectionError):
        registry.check_local(region.base, 10, mh, tag=1)


def test_rdma_target_checks():
    mem, registry = setup()
    region = mem.alloc(1000)
    mh = registry.register(region.base, 1000, tag=1,
                           enable_rdma_write=True, enable_rdma_read=False)
    got = registry.check_rdma_target(region.base, 100, mh.handle_id,
                                     write=True)
    assert got is mh
    with pytest.raises(VipProtectionError, match="read disabled"):
        registry.check_rdma_target(region.base, 100, mh.handle_id,
                                   write=False)
    with pytest.raises(VipProtectionError, match="outside"):
        registry.check_rdma_target(region.base + 990, 100, mh.handle_id,
                                   write=True)
    with pytest.raises(VipProtectionError, match="unknown"):
        registry.check_rdma_target(region.base, 10, 424242, write=True)


def test_overlapping_registrations_share_pin_counts():
    mem, registry = setup()
    region = mem.alloc(2 * PAGE_SIZE)
    a = registry.register(region.base, 2 * PAGE_SIZE, tag=1)
    b = registry.register(region.base, PAGE_SIZE, tag=1)
    assert mem.pinned_pages == 2
    registry.deregister(a)
    assert mem.pinned_pages == 1   # page 0 still held by b
    registry.deregister(b)
    assert mem.pinned_pages == 0


def test_handle_covers():
    mem, registry = setup()
    region = mem.alloc(100)
    mh = registry.register(region.base, 100, tag=1)
    assert mh.covers(region.base, 100)
    assert mh.covers(region.base + 50, 50)
    assert not mh.covers(region.base + 50, 51)
    assert not mh.covers(region.base - 1, 10)
