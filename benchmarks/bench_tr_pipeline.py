"""E13 — §3.2.5: impact of sender pipeline length (TR [6])."""

from repro.vibe import pipeline_bandwidth, render_figure

from conftest import PROVIDERS


def test_pipeline_bandwidth(run_once, record):
    results = run_once(lambda: [pipeline_bandwidth(p, size=4096)
                                for p in PROVIDERS])
    record("tr_pipeline_bandwidth",
           render_figure(results, "bandwidth_mbs",
                         "PLBw: 4 KiB bandwidth vs outstanding sends (MB/s)"))
    by = {r.provider: r for r in results}
    for p in PROVIDERS:
        bws = [pt.bandwidth_mbs for pt in by[p].points]
        # non-decreasing in window size, saturating
        for a, b in zip(bws, bws[1:]):
            assert b >= a - 1e-6
    # reliable delivery (cLAN) needs the pipeline the most: completions
    # cost a NIC round trip, so window=1 serialises it hardest
    clan_gain = by["clan"].point(64).bandwidth_mbs \
        / by["clan"].point(1).bandwidth_mbs
    mvia_gain = by["mvia"].point(64).bandwidth_mbs \
        / by["mvia"].point(1).bandwidth_mbs
    assert clan_gain > mvia_gain
    assert clan_gain > 1.5
