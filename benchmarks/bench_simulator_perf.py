"""S1 — performance of the simulation substrate itself.

Unlike the paper-reproduction benches (deterministic single shots),
these measure the *wall-clock* cost of the discrete-event kernel and
the full VIA stack, with real pytest-benchmark rounds — the numbers
that bound how large an experiment the repo can simulate.
"""

from repro.providers import Testbed
from repro.sim import Resource, Simulator
from repro.via import Descriptor

from conftest import PROVIDERS


def test_kernel_event_throughput(benchmark):
    """Raw timeout events through the heap."""
    N = 20_000

    def run():
        sim = Simulator()
        for i in range(N):
            sim.timeout(float(i % 97))
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result == 96.0


def test_kernel_process_switching(benchmark):
    """Generator processes ping-ponging through events."""
    N = 2_000

    def run():
        sim = Simulator()
        res = Resource(sim, 1)

        def worker():
            for _ in range(5):
                yield from res.acquire(1.0)

        for _ in range(N // 5):
            sim.process(worker())
        sim.run()
        return sim.now

    assert benchmark(run) == float(N)


def test_via_message_rate(benchmark):
    """Full-stack messages simulated per wall-second (cLAN, 4 B)."""
    N = 300

    def run():
        tb = Testbed("clan")
        done = {}

        def client():
            h = tb.open("node0", "c")
            vi = yield from h.create_vi()
            r = h.alloc(64)
            mh = yield from h.register_mem(r)
            yield from h.connect(vi, "node1", 3)
            segs = [h.segment(r, mh, 0, 4)]
            for _ in range(N):
                yield from h.post_send(vi, Descriptor.send(segs))
                yield from h.send_wait(vi)
            done["ok"] = True

        def server():
            h = tb.open("node1", "s")
            vi = yield from h.create_vi()
            r = h.alloc(64)
            mh = yield from h.register_mem(r)
            segs = [h.segment(r, mh, 0, 4)]
            for _ in range(N):
                yield from h.post_recv(vi, Descriptor.recv(segs))
            req = yield from h.connect_wait(3)
            yield from h.accept(req, vi)
            for _ in range(N):
                yield from h.recv_wait(vi)

        cp = tb.spawn(client())
        sp = tb.spawn(server())
        tb.run(cp)
        tb.run(sp)
        return done["ok"]

    assert benchmark(run)


def test_fragmented_transfer_rate(benchmark):
    """A 28 KiB transfer on the 1500 B-MTU fabric (20 fragments)."""
    def run():
        tb = Testbed("mvia")
        out = {}

        def client():
            h = tb.open("node0", "c")
            vi = yield from h.create_vi()
            r = h.alloc(28672)
            mh = yield from h.register_mem(r)
            yield from h.connect(vi, "node1", 3)
            segs = [h.segment(r, mh, 0, 28672)]
            for _ in range(10):
                yield from h.post_send(vi, Descriptor.send(segs))
                yield from h.send_wait(vi)

        def server():
            h = tb.open("node1", "s")
            vi = yield from h.create_vi()
            r = h.alloc(28672)
            mh = yield from h.register_mem(r)
            segs = [h.segment(r, mh, 0, 28672)]
            for _ in range(10):
                yield from h.post_recv(vi, Descriptor.recv(segs))
            req = yield from h.connect_wait(3)
            yield from h.accept(req, vi)
            for _ in range(10):
                yield from h.recv_wait(vi)
            out["t"] = tb.now

        cp = tb.spawn(client())
        sp = tb.spawn(server())
        tb.run(cp)
        tb.run(sp)
        return out["t"]

    assert benchmark(run) > 0
