"""S1 — performance of the simulation substrate itself.

Unlike the paper-reproduction benches (deterministic single shots),
these measure the *wall-clock* cost of the discrete-event kernel and
the full VIA stack, with real pytest-benchmark rounds — the numbers
that bound how large an experiment the repo can simulate.
"""

import gc
import sys

from repro.providers import Testbed
from repro.sim import Resource, Simulator
from repro.via import Descriptor

from conftest import PROVIDERS


def test_kernel_event_throughput(benchmark):
    """Raw timeout events through the heap."""
    N = 20_000

    def run():
        sim = Simulator()
        for i in range(N):
            sim.timeout(float(i % 97))
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result == 96.0


def test_kernel_process_switching(benchmark):
    """Generator processes ping-ponging through events."""
    N = 2_000

    def run():
        sim = Simulator()
        res = Resource(sim, 1)

        def worker():
            for _ in range(5):
                yield from res.acquire(1.0)

        for _ in range(N // 5):
            sim.process(worker())
        sim.run()
        return sim.now

    assert benchmark(run) == float(N)


def test_kernel_allocation_footprint():
    """Guardrail for the kernel fast paths: a scheduled timeout must stay
    within a small per-event block budget (object pools + packed heap
    tuples), and draining must return pooled objects rather than retain
    per-event garbage.  A regression that reintroduces per-event closures,
    dicts, or unpooled Event objects shows up as extra blocks here long
    before it shows up as wall-clock noise.
    """
    # warm the simulator's object pools and CPython's internal caches
    gc.collect()
    sim = Simulator()
    for i in range(2000):
        sim.timeout(float(i % 7))
    sim.run()
    gc.collect()
    gc.disable()
    try:
        base = sys.getallocatedblocks()
        n = 10_000
        for i in range(n):
            sim.timeout(float(i % 97))
        scheduled = sys.getallocatedblocks() - base
        sim.run()
        drained = sys.getallocatedblocks() - base
    finally:
        gc.enable()
    # measured ~4.7 blocks/event (Timeout + callbacks list + heap/bucket
    # tuples); one extra per-event closure or dict would add >= 1-2
    blocks_per_event = scheduled / n
    assert blocks_per_event <= 7.0, (
        f"{blocks_per_event:.2f} allocated blocks per scheduled event "
        f"(budget 7.0) — a kernel fast path has regressed")
    # after the drain only the bounded pools may be left (~2.3k blocks)
    assert drained <= 6000, (
        f"{drained} blocks retained after drain (budget 6000) — "
        f"per-event garbage is being kept alive")


def test_via_message_rate(benchmark):
    """Full-stack messages simulated per wall-second (cLAN, 4 B)."""
    N = 300

    def run():
        tb = Testbed("clan")
        done = {}

        def client():
            h = tb.open("node0", "c")
            vi = yield from h.create_vi()
            r = h.alloc(64)
            mh = yield from h.register_mem(r)
            yield from h.connect(vi, "node1", 3)
            segs = [h.segment(r, mh, 0, 4)]
            for _ in range(N):
                yield from h.post_send(vi, Descriptor.send(segs))
                yield from h.send_wait(vi)
            done["ok"] = True

        def server():
            h = tb.open("node1", "s")
            vi = yield from h.create_vi()
            r = h.alloc(64)
            mh = yield from h.register_mem(r)
            segs = [h.segment(r, mh, 0, 4)]
            for _ in range(N):
                yield from h.post_recv(vi, Descriptor.recv(segs))
            req = yield from h.connect_wait(3)
            yield from h.accept(req, vi)
            for _ in range(N):
                yield from h.recv_wait(vi)

        cp = tb.spawn(client())
        sp = tb.spawn(server())
        tb.run(cp)
        tb.run(sp)
        return done["ok"]

    assert benchmark(run)


def test_fragmented_transfer_rate(benchmark):
    """A 28 KiB transfer on the 1500 B-MTU fabric (20 fragments)."""
    def run():
        tb = Testbed("mvia")
        out = {}

        def client():
            h = tb.open("node0", "c")
            vi = yield from h.create_vi()
            r = h.alloc(28672)
            mh = yield from h.register_mem(r)
            yield from h.connect(vi, "node1", 3)
            segs = [h.segment(r, mh, 0, 28672)]
            for _ in range(10):
                yield from h.post_send(vi, Descriptor.send(segs))
                yield from h.send_wait(vi)

        def server():
            h = tb.open("node1", "s")
            vi = yield from h.create_vi()
            r = h.alloc(28672)
            mh = yield from h.register_mem(r)
            segs = [h.segment(r, mh, 0, 28672)]
            for _ in range(10):
                yield from h.post_recv(vi, Descriptor.recv(segs))
            req = yield from h.connect_wait(3)
            yield from h.accept(req, vi)
            for _ in range(10):
                yield from h.recv_wait(vi)
            out["t"] = tb.now

        cp = tb.spawn(client())
        sp = tb.spawn(server())
        tb.run(cp)
        tb.run(sp)
        return out["t"]

    assert benchmark(run) > 0
