"""E8 — Fig. 6: latency and bandwidth vs number of active VIs."""

from repro.vibe import multivi_bandwidth, multivi_latency, render_figure

from conftest import PROVIDERS


def test_fig6_latency(run_once, record):
    results = run_once(lambda: [multivi_latency(p, size=4)
                                for p in PROVIDERS])
    record("fig6_latency_multivi",
           render_figure(results, "latency_us",
                         "Fig. 6: one-way latency vs #active VIs, 4 B (us)"))
    by = {r.provider: r for r in results}
    # "with increase in the number of VIs, the latency of messages
    # increases significantly" (BVIA firmware polls all VIs)
    bvia = [p.latency_us for p in by["bvia"].points]
    for a, b in zip(bvia, bvia[1:]):
        assert b > a
    assert by["bvia"].point(32).latency_us \
        > by["bvia"].point(1).latency_us * 2
    # "results for M-VIA and cLAN do not show any significant change"
    for p in ("mvia", "clan"):
        lats = [pt.latency_us for pt in by[p].points]
        assert max(lats) - min(lats) < 1.0


def test_fig6_bandwidth(run_once, record):
    results = run_once(lambda: [multivi_bandwidth(p, size=4096,
                                                  vi_counts=(1, 4, 16, 32))
                                for p in PROVIDERS])
    record("fig6_bandwidth_multivi",
           render_figure(results, "bandwidth_mbs",
                         "Fig. 6: bandwidth vs #active VIs, 4 KiB (MB/s)"))
    by = {r.provider: r for r in results}
    # "The impact of number of active VIs on bandwidth is also
    # significant" (BVIA only)
    assert by["bvia"].point(32).bandwidth_mbs \
        < by["bvia"].point(1).bandwidth_mbs * 0.8
    for p in ("mvia", "clan"):
        bws = [pt.bandwidth_mbs for pt in by[p].points]
        assert (max(bws) - min(bws)) / max(bws) < 0.02
