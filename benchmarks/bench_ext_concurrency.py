"""X8 — concurrent active-VI streams (the Fig. 6 study made active).

The paper's multi-VI benchmark measures one connection with idle VIs
open; here k connections stream simultaneously, exposing aggregate
capacity and the per-message cost of the open-VI population.
"""

from repro.vibe import concurrent_streams
from repro.vibe.metrics import merge_tables

from conftest import PROVIDERS

ALL = PROVIDERS + ("iba",)
COUNTS = (1, 2, 4, 8)


def test_concurrent_streams(run_once, record):
    results = run_once(lambda: [concurrent_streams(p, COUNTS, messages=20)
                                for p in ALL])
    record("ext_concurrency",
           merge_tables(results, "bandwidth_mbs",
                        "Aggregate bandwidth (MB/s), k concurrent 4 KiB "
                        "streams (blocking completions)"))
    by = {r.provider: r for r in results}
    for p in ALL:
        # concurrency recovers the blocking-wait idle time
        assert by[p].point(4).bandwidth_mbs > by[p].point(1).bandwidth_mbs
        # fairness holds everywhere (FIFO engines)
        for n in COUNTS:
            assert by[p].point(n).extra["jain_fairness"] > 0.97
    # hardware dispatch keeps scaling; the firmware scan does not
    assert by["bvia"].point(8).bandwidth_mbs \
        < by["bvia"].point(4).bandwidth_mbs
    assert by["clan"].point(8).bandwidth_mbs \
        >= by["clan"].point(4).bandwidth_mbs * 0.98
