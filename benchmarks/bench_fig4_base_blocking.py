"""E5 — Fig. 4: base latency and CPU utilisation with blocking."""

from repro.via.constants import WaitMode
from repro.vibe import base_latency, render_figure

from conftest import PROVIDERS


def test_fig4_blocking(run_once, record):
    def sweep():
        poll = [base_latency(p) for p in PROVIDERS]
        block = [base_latency(p, mode=WaitMode.BLOCK) for p in PROVIDERS]
        return poll, block

    poll, block = run_once(sweep)
    record("fig4_latency_blocking",
           render_figure(block, "latency_us",
                         "Fig. 4: base one-way latency, blocking (us)"))
    record("fig4_cpu_blocking",
           render_figure(block, "cpu_send",
                         "Fig. 4: sender CPU utilisation, blocking"))

    poll_by = {r.provider: r for r in poll}
    block_by = {r.provider: r for r in block}
    for p in PROVIDERS:
        for size in (4, 1024, 28672):
            # "latency results with blocking show a significant increase"
            assert block_by[p].point(size).latency_us \
                > poll_by[p].point(size).latency_us + 5.0
            # blocking frees the CPU
            assert block_by[p].point(size).cpu_send < 0.9
    # "Since M-VIA emulates VIA in the host operating system, it has a
    # higher CPU utilization for small messages"
    assert block_by["mvia"].point(4).cpu_send \
        > max(block_by["bvia"].point(4).cpu_send,
              block_by["clan"].point(4).cpu_send)
