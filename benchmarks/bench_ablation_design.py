"""A1 — design-choice ablation (the paper's ref [5] experiment).

One engine, one knob flipped at a time on the Berkeley VIA baseline:
each column isolates one architectural decision's contribution to the
headline micro-benchmarks.
"""

from repro.providers import get_spec
from repro.providers.costs import DataPath, DispatchKind, TableLocation
from repro.vibe import TransferConfig, run_bandwidth, run_latency

BASE = get_spec("bvia")

VARIANTS = {
    "baseline": BASE,
    "nic_tables": BASE.with_choices(table_location=TableLocation.NIC_MEMORY),
    "direct_dispatch": BASE.with_choices(dispatch=DispatchKind.DIRECT),
    "big_tlb": BASE.with_choices(nic_tlb_entries=1024),
}


def _profile(spec):
    return {
        "lat4": run_latency(spec, TransferConfig(size=4)).latency_us,
        "lat4_32vi": run_latency(
            spec, TransferConfig(size=4, extra_vis=31)).latency_us,
        # pool of 16 x 7-page buffers = 112 pages: overflows the 32-entry
        # baseline cache every lap, but fits a 1024-entry cache after the
        # first lap (iters cover several laps)
        "lat28k_0reuse": run_latency(spec, TransferConfig(
            size=28672, buffer_pool=16, reuse_fraction=0.0, iters=64,
        )).latency_us,
        "bw28k": run_bandwidth(
            spec, TransferConfig(size=28672, count=60)).bandwidth_mbs,
    }


def test_design_ablation(run_once, record):
    profiles = run_once(
        lambda: {name: _profile(spec) for name, spec in VARIANTS.items()}
    )
    cols = ["variant", "lat4", "lat4_32vi", "lat28k_0reuse", "bw28k"]
    rows = [cols]
    for name, prof in profiles.items():
        rows.append([name] + [f"{prof[c]:.1f}" for c in cols[1:]])
    widths = [max(len(r[i]) for r in rows) for i in range(len(cols))]
    text = "\n".join("  ".join(c.rjust(w) for c, w in zip(r, widths))
                     for r in rows)
    record("ablation_design", "Design-choice ablation (BVIA baseline)\n"
           + text)

    base = profiles["baseline"]
    # NIC-resident tables remove the reuse penalty, nothing else
    nic = profiles["nic_tables"]
    assert nic["lat28k_0reuse"] < base["lat28k_0reuse"] - 50
    assert abs(nic["lat4_32vi"] - base["lat4_32vi"]) < 2.0
    # direct dispatch removes the multi-VI penalty, nothing else
    dd = profiles["direct_dispatch"]
    assert dd["lat4_32vi"] < base["lat4_32vi"] - 50
    assert abs(dd["lat28k_0reuse"] - base["lat28k_0reuse"]) < 5.0
    # a big TLB also absorbs the 48-buffer working set
    assert profiles["big_tlb"]["lat28k_0reuse"] < base["lat28k_0reuse"]


def test_staged_vs_zero_copy(run_once, record):
    """Flipping only the data path reproduces the copy penalty."""
    def sweep():
        staged = BASE.with_choices(data_path=DataPath.STAGED)
        return {
            "zero_copy": run_latency(
                BASE, TransferConfig(size=28672)).latency_us,
            "staged": run_latency(
                staged, TransferConfig(size=28672)).latency_us,
        }

    lats = run_once(sweep)
    record("ablation_datapath",
           f"28 KiB one-way latency: zero-copy {lats['zero_copy']:.0f} us, "
           f"staged {lats['staged']:.0f} us")
    # two 28 KiB copies at ~90 MB/s cost ~640 us extra
    assert lats["staged"] > lats["zero_copy"] + 300
