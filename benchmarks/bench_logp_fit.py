"""A2 — LogP sufficiency analysis (the paper's §1 argument).

Fits LogGP to each provider's base curves, then scores its predictions
on the component-level sweeps (buffer reuse, multiple VIs) where a
three-parameter linear model has no mechanism to follow the data.
"""

from repro.models import evaluate_fit, extract
from repro.vibe import multivi_latency, reuse_latency

from conftest import PROVIDERS

SIZES = [4, 256, 1024, 4096, 12288, 28672]


def test_loggp_fit_and_insufficiency(run_once, record):
    def sweep():
        out = {}
        for p in PROVIDERS:
            fit = extract(p, sizes=SIZES)
            out[p] = fit
        return out

    fits = run_once(sweep)
    lines = ["LogGP parameters fitted from VIBe base curves",
             f"{'provider':<10s}{'L+2o (us)':>10s}{'G (us/B)':>10s}"
             f"{'g (us)':>8s}{'rms resid':>10s}"]
    for p, fit in fits.items():
        lines.append(f"{p:<10s}{fit.L + 2 * fit.o:>10.2f}{fit.G:>10.4f}"
                     f"{fit.g:>8.2f}{fit.residual_us:>10.2f}")

    # the base curves ARE nearly linear: good fit expected
    for fit in fits.values():
        assert fit.residual_us < 20.0
        assert fit.G > 0

    # but LogGP cannot see VIA components: the BVIA multi-VI sweep
    # diverges from its single prediction
    mv = multivi_latency("bvia", size=4, vi_counts=(1, 8, 32))
    pred = fits["bvia"].predict_latency(4)
    worst = max(abs(p.latency_us - pred) / p.latency_us for p in mv.points)
    lines.append("")
    lines.append(f"BVIA multi-VI sweep vs LogGP prediction ({pred:.1f} us): "
                 f"worst relative error {worst:.0%}")
    assert worst > 0.5

    # and the buffer-reuse sweep at 0 % reuse sits far above the fit
    ru = reuse_latency("bvia", sizes=[28672], reuse_levels=(0.0,),
                       iters=32)[0]
    ev = evaluate_fit(fits["bvia"], ru)
    lines.append(f"BVIA 0%-reuse 28 KiB vs LogGP: relative error "
                 f"{ev['mean_relative_error']:.0%}")
    assert ev["mean_relative_error"] > 0.03

    record("logp_fit", "\n".join(lines))
