"""E15 — §3.2.5: impact of reliability levels (TR [6])."""

from repro.vibe import (
    loss_goodput,
    reliability_bandwidth,
    reliability_latency,
    render_figure,
)

from conftest import PROVIDERS


def test_reliability_latency(run_once, record):
    results = run_once(lambda: [reliability_latency(p, size=1024)
                                for p in PROVIDERS])
    record("tr_reliability_latency",
           render_figure(results, "latency_us",
                         "RelLat: 1 KiB one-way latency per level (us)"))
    for r in results:
        lats = {p.param: p.latency_us for p in r.points}
        # the ping-pong's receive path dominates: levels stay within a
        # few microseconds of each other (acks are off the critical path)
        spread = max(lats.values()) - min(lats.values())
        assert spread < 5.0


def test_reliability_bandwidth(run_once, record):
    results = run_once(lambda: [reliability_bandwidth(p, size=4096)
                                for p in PROVIDERS])
    record("tr_reliability_bandwidth",
           render_figure(results, "bandwidth_mbs",
                         "RelBw: 4 KiB bandwidth per level (MB/s)"))
    for r in results:
        bws = {p.param: p.bandwidth_mbs for p in r.points}
        # with a deep window, acked completions cost little bandwidth
        assert bws["reliable_delivery"] > 0.85 * bws["unreliable"]


def test_loss_semantics(run_once, record):
    results = run_once(lambda: [loss_goodput(p, count=50, loss_rate=0.03,
                                             seed=7)
                                for p in PROVIDERS])
    text = []
    for r in results:
        text.append(r.table())
    record("tr_loss_goodput", "\n\n".join(text))
    for r in results:
        by = {p.param: p.extra for p in r.points}
        # unreliable loses messages; the reliable levels deliver all
        assert by["unreliable"]["delivered"] < by["unreliable"]["sent"]
        for level in ("reliable_delivery", "reliable_reception"):
            assert by[level]["delivered"] == by[level]["sent"]
            assert by[level]["retransmissions"] > 0
