"""E7 — §4.3.3: impact of completion queues.

LatCQ − Lat per provider: the paper reports a 2-5 µs overhead for
Berkeley VIA and negligible impact for M-VIA and cLAN.
"""

from repro.vibe import cq_bandwidth, cq_overhead
from repro.vibe.metrics import merge_tables

from conftest import PROVIDERS

SIZES = [4, 256, 1024, 4096]


def test_cq_overhead(run_once, record):
    results = run_once(lambda: [cq_overhead(p, SIZES) for p in PROVIDERS])
    record("cq_overhead",
           merge_tables(results, "overhead_us",
                        "LatCQ - Lat: completion-queue overhead (us)"))
    by = {r.provider: r for r in results}
    for size in SIZES:
        assert 2.0 <= by["bvia"].point(size).extra["overhead_us"] <= 5.0
        assert by["mvia"].point(size).extra["overhead_us"] < 1.0
        assert by["clan"].point(size).extra["overhead_us"] < 0.5


def test_cq_bandwidth_unaffected(run_once, record):
    results = run_once(lambda: [cq_bandwidth(p, [4096]) for p in PROVIDERS])
    record("cq_bandwidth",
           merge_tables(results, "bandwidth_mbs",
                        "BwCQ: 4 KiB bandwidth via CQ completions (MB/s)"))
    from repro.vibe import base_bandwidth

    for r in results:
        base = base_bandwidth(r.provider, [4096]).point(4096).bandwidth_mbs
        # CQ notification is per message, off the streaming critical path
        assert r.point(4096).bandwidth_mbs > 0.9 * base
