"""X5 — collective operations over the message layer (paper §5).

Barrier / broadcast / allreduce cost vs group size on every provider —
the collective depth amplifies the small-message latency differences
the base VIBe benchmarks expose.
"""

from repro.vibe import collective_latency
from repro.vibe.metrics import merge_tables

from conftest import PROVIDERS

ALL = PROVIDERS + ("iba",)
SIZES = (2, 4, 8)


def test_collective_latency(run_once, record):
    results = run_once(lambda: [collective_latency(p, SIZES, rounds=5)
                                for p in ALL])
    text = []
    for metric in ("barrier_us", "bcast_us", "allreduce_us"):
        text.append(merge_tables(results, metric,
                                 f"{metric} vs group size"))
    record("ext_collectives", "\n\n".join(text))

    by = {r.provider: r for r in results}
    for p in ALL:
        for metric in ("barrier_us", "bcast_us", "allreduce_us"):
            vals = [pt.extra[metric] for pt in by[p].points]
            # cost grows with group size...
            assert vals[0] < vals[1] < vals[2], (p, metric, vals)
            # ...but logarithmically: 8 ranks is 3 rounds, not 7.
            # BVIA is exempt from the tightest bound: its per-open-VI
            # polling tax grows *linearly* with the group size, which is
            # exactly the scalability warning of Fig. 6.
            if p != "bvia":
                assert vals[2] < vals[0] * 6, (p, metric, vals)

    # provider ordering carries through: the fastest point-to-point
    # stack runs the fastest collectives
    assert by["iba"].point(8).extra["barrier_us"] \
        < by["clan"].point(8).extra["barrier_us"] \
        < by["mvia"].point(8).extra["barrier_us"]


def test_bvia_collectives_pay_the_multivi_tax(run_once, record):
    """n ranks = n-1 open VIs per node: BVIA's firmware scan makes its
    collectives degrade super-logarithmically (the Fig. 6 effect at the
    programming-model level)."""
    def sweep():
        bvia = collective_latency("bvia", (2, 8), rounds=5)
        clan = collective_latency("clan", (2, 8), rounds=5)
        return bvia, clan

    bvia, clan = run_once(sweep)
    record("ext_collectives_bvia_tax",
           f"barrier 2->8 ranks: bvia "
           f"{bvia.point(2).extra['barrier_us']:.1f} -> "
           f"{bvia.point(8).extra['barrier_us']:.1f} us, clan "
           f"{clan.point(2).extra['barrier_us']:.1f} -> "
           f"{clan.point(8).extra['barrier_us']:.1f} us")

    def growth(res):
        return res.point(8).extra["barrier_us"] \
            / res.point(2).extra["barrier_us"]

    assert growth(bvia) > growth(clan)
