"""E1 — Table 1: non-data-transfer micro-benchmarks.

Regenerates the per-operation costs (VI create/destroy, connection
establish/teardown, CQ create/destroy) for all three providers and
asserts the paper's orderings.
"""

from repro.vibe import nondata_costs, render_table1

from conftest import PROVIDERS


def test_table1(run_once, record):
    results = run_once(
        lambda: {p: nondata_costs(p, repeats=5) for p in PROVIDERS}
    )
    record("table1_nondata", render_table1(results))

    def cost(p, op):
        return results[p].point(op).extra["cost_us"]

    # paper Table 1 magnitudes (us): allow 15% slack on the totals that
    # include wire time, exact match on pure host constants
    paper = {
        ("mvia", "create_vi"): 93, ("bvia", "create_vi"): 28,
        ("clan", "create_vi"): 3,
        ("mvia", "establish_connection"): 6465,
        ("bvia", "establish_connection"): 496,
        ("clan", "establish_connection"): 2454,
        ("mvia", "create_cq"): 17, ("bvia", "create_cq"): 206,
        ("clan", "create_cq"): 54,
    }
    for (p, op), expected in paper.items():
        measured = cost(p, op)
        assert abs(measured - expected) / expected < 0.15, (p, op, measured)

    # orderings the paper calls out in §4.2
    assert cost("mvia", "establish_connection") > \
        cost("clan", "establish_connection") > \
        cost("bvia", "establish_connection")
    assert cost("bvia", "create_cq") > cost("clan", "create_cq") > \
        cost("mvia", "create_cq")
    assert cost("clan", "teardown_connection") > \
        cost("bvia", "teardown_connection")
