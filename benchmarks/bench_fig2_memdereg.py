"""E3 — Fig. 2: cost of memory deregistration vs region size."""

from repro.vibe import memreg_sweep, render_memreg

from conftest import PROVIDERS

# Fig. 2's x-axis plus the "up to 32 MB" claim from the text
SIZES = [4, 16, 64, 256, 1024, 4096, 12288, 20480, 28672,
         1 << 20, 32 << 20]


def test_fig2_deregistration(run_once, record):
    results = run_once(lambda: {p: memreg_sweep(p, SIZES) for p in PROVIDERS})
    record("fig2_memdereg", render_memreg(results, "deregister_us"))

    for p in PROVIDERS:
        for point in results[p].points:
            # "much smaller than ... registration and less than 16us for
            # memory region sizes of up to 32 MB"
            assert point.extra["deregister_us"] < 16.0
        small_reg = results[p].point(4096).extra["register_us"]
        small_dereg = results[p].point(4096).extra["deregister_us"]
        assert small_dereg < small_reg
