"""E10 — §3.2.5: impact of multiple data segments (TR [6])."""

from repro.vibe import render_figure, segments_bandwidth, segments_latency

from conftest import PROVIDERS


def test_segments_latency(run_once, record):
    results = run_once(lambda: [segments_latency(p, size=4096)
                                for p in PROVIDERS])
    record("tr_segments_latency",
           render_figure(results, "latency_us",
                         "SegLat: 4 KiB one-way latency vs #segments (us)"))
    for r in results:
        lats = [p.latency_us for p in r.points]
        # per-segment parsing cost: monotone growth
        for a, b in zip(lats, lats[1:]):
            assert b >= a
        assert lats[-1] > lats[0]
    by = {r.provider: r for r in results}
    # the slow LANai firmware pays the most per extra segment
    bvia_delta = by["bvia"].point(16).latency_us - by["bvia"].point(1).latency_us
    clan_delta = by["clan"].point(16).latency_us - by["clan"].point(1).latency_us
    assert bvia_delta > clan_delta


def test_segments_bandwidth(run_once, record):
    results = run_once(lambda: [segments_bandwidth(p, size=4096,
                                                   segment_counts=(1, 8, 16))
                                for p in PROVIDERS])
    record("tr_segments_bandwidth",
           render_figure(results, "bandwidth_mbs",
                         "SegBw: 4 KiB bandwidth vs #segments (MB/s)"))
    for r in results:
        assert r.point(16).bandwidth_mbs <= r.point(1).bandwidth_mbs
