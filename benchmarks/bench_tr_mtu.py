"""E14 — §3.2.5: impact of maximum transfer size / MTU (TR [6])."""

from repro.vibe import mtu_bandwidth, mtu_latency, render_figure

from conftest import PROVIDERS

MTUS = (256, 512, 1500, 4096, 16384)


def test_mtu_bandwidth(run_once, record):
    results = run_once(lambda: [mtu_bandwidth(p, size=16384, mtus=MTUS)
                                for p in PROVIDERS])
    record("tr_mtu_bandwidth",
           render_figure(results, "bandwidth_mbs",
                         "MtsBw: 16 KiB bandwidth vs wire MTU (MB/s)"))
    for r in results:
        # more fragments = more per-fragment overhead: tiny MTUs lose
        assert r.point(256).bandwidth_mbs < r.point(16384).bandwidth_mbs
        bws = [p.bandwidth_mbs for p in r.points]
        # near-monotone growth (a provider already at line rate may
        # wobble within a few percent once overheads are negligible)
        for a, b in zip(bws, bws[1:]):
            assert b >= a * 0.97


def test_mtu_latency(run_once, record):
    results = run_once(lambda: [mtu_latency(p, size=16384, mtus=MTUS)
                                for p in PROVIDERS])
    record("tr_mtu_latency",
           render_figure(results, "latency_us",
                         "MtsLat: 16 KiB one-way latency vs wire MTU (us)"))
    # Latency is U-shaped in the MTU: tiny fragments pay per-fragment
    # engine/framing overhead, while one giant fragment forfeits the
    # DMA/wire pipelining of store-and-forward stages.  The optimum is
    # interior — the fragmentation trade-off the MTS benchmark exists
    # to expose.
    for r in results:
        lats = [p.latency_us for p in r.points]
        best = min(lats)
        assert lats[0] > best          # 256 B MTU: overhead-bound
        assert lats[-1] > best         # 16 KiB MTU: no pipelining
        assert lats.index(best) not in (0, len(lats) - 1)
