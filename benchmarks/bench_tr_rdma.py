"""E12 — §3.2.5: impact of RDMA operations (TR [6]).

RDMA write (with immediate) vs the send/receive model, plus RDMA read
on an RDMA-read-capable provider variant.
"""

from repro.vibe import (
    base_latency,
    rdma_read_latency,
    rdma_write_latency,
    render_figure,
)

from conftest import PROVIDERS

SIZES = [4, 256, 4096, 28672]


def test_rdma_write_vs_send(run_once, record):
    def sweep():
        writes = [rdma_write_latency(p, SIZES) for p in PROVIDERS]
        sends = [base_latency(p, SIZES) for p in PROVIDERS]
        return writes, sends

    writes, sends = run_once(sweep)
    record("tr_rdma_write",
           render_figure(writes, "latency_us",
                         "RdmaLat: RDMA-write ping-pong latency (us)"))
    wby = {r.provider: r for r in writes}
    sby = {r.provider: r for r in sends}
    for p in PROVIDERS:
        for size in SIZES:
            w = wby[p].point(size).latency_us
            s = sby[p].point(size).latency_us
            # RDMA write skips receive-descriptor matching: never slower,
            # and within the same regime as send/recv
            assert w <= s * 1.05, (p, size, w, s)


def test_rdma_read(run_once, record):
    result = run_once(lambda: rdma_read_latency("clan", SIZES))
    record("tr_rdma_read", result.table())
    lats = [p.latency_us for p in result.points]
    assert lats == sorted(lats)
    # a read is a full round trip: slower than a one-way write
    write = rdma_write_latency("clan", [4])
    assert result.point(4).latency_us > write.point(4).latency_us
