"""E2 — Fig. 1: cost of memory registration vs region size."""

from repro.vibe import memreg_sweep, render_memreg

from conftest import PROVIDERS


def test_fig1_registration(run_once, record):
    results = run_once(lambda: {p: memreg_sweep(p) for p in PROVIDERS})
    record("fig1_memreg", render_memreg(results, "register_us"))

    # "memory registration is more expensive in BVIA for messages of up
    # to 20 KB" — and the cost envelope stays near the paper's ~35 us
    for size in (4, 1024, 4096, 12288):
        bvia = results["bvia"].point(size).extra["register_us"]
        assert bvia > results["mvia"].point(size).extra["register_us"]
        assert bvia > results["clan"].point(size).extra["register_us"]
    for p in PROVIDERS:
        top = results[p].point(28672).extra["register_us"]
        assert top < 40.0
