"""Record (or check) the simulation-kernel throughput baseline.

Measures the two kernel-bound workloads from ``bench_simulator_perf.py``
and writes ``BENCH_simkernel.json``::

    python benchmarks/record_baseline.py                 # record
    python benchmarks/record_baseline.py --check PATH    # CI smoke

``--cluster`` switches to the cluster-serving baseline
(``BENCH_cluster.json``): simulated requests pushed through an 8-client
star cluster per wall-second, plus each provider's saturation-knee
offered load from the quick rate grid.  The knees are exact simulation
outputs — byte-deterministic — so ``--check`` requires them to match
the baseline bit-for-bit while throughput gets the usual tolerance.
Each provider's ``slo_knee_rps`` (largest offered load at which every
tenant still meets its SLO, swept with retries and admission control
on) is recorded alongside as a trend line only — ``--check`` prints
it but never gates on it, because it moves whenever overload-policy
defaults are retuned.

Raw events/sec are machine-dependent, so each figure is also stored
*normalized* by a pure-Python calibration loop timed on the same
machine; ``--check`` compares normalized throughput against the
committed baseline and exits non-zero if it drops by more than
``--tolerance`` (default 20 %).  That keeps the CI guardrail meaningful
on runners slower or faster than the machine that recorded the file.

The streaming pair additionally pins the flow-level fast-forward win:
the same fragmented-message stream is timed at packet fidelity and at
``fidelity="auto"``, and ``--check`` fails if the speedup ever falls
below :data:`MIN_STREAM_SPEEDUP` — wall-clock ratios taken in the same
process cancel out machine speed, so the floor is absolute.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.providers import Testbed           # noqa: E402
from repro.sim import Simulator               # noqa: E402
from repro.via import Descriptor              # noqa: E402

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_simkernel.json"
CLUSTER_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_cluster.json"

EVENTS_N = 20_000
MESSAGES_N = 300

#: streaming workload: large fragmented messages, the burst hot path
#: (64 KiB over a 1 KiB MTU = 64 wire packets per message, so the
#: per-message posting overhead amortizes and the burst win dominates)
STREAM_N = 60
STREAM_SIZE = 65_536
STREAM_MTU = 1_024

#: ``--check`` requires the fast-forward streaming speedup to hold this
#: floor (a same-process wall-clock ratio, so machine speed cancels out)
MIN_STREAM_SPEEDUP = 5.0

#: warm-state reuse: restoring a deep-warmed testbed from a state blob
#: must beat re-simulating its warm-up by at least this ratio (also a
#: same-process wall-clock ratio — machine speed cancels)
MIN_WARM_SPEEDUP = 1.5

#: ping-pong iterations baked into the warm state blob; deep enough
#: that the restore win is about skipped *simulation*, not construction
WARM_ITERS = 8

#: one cluster throughput cell: 8 clients x 16 requests at a mid rate
CLUSTER_REQUESTS_N = 128


def _calibrate(repeats: int = 5) -> float:
    """Machine speed score: iterations/sec of a fixed pure-Python loop."""
    n = 200_000
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i & 7
        best = min(best, time.perf_counter() - t0)
    assert acc >= 0
    return n / best


def _events_workload() -> None:
    sim = Simulator()
    for i in range(EVENTS_N):
        sim.timeout(float(i % 97))
    sim.run()
    assert sim.now == 96.0


def _messages_workload() -> None:
    tb = Testbed("clan")

    def client():
        h = tb.open("node0", "c")
        vi = yield from h.create_vi()
        r = h.alloc(64)
        mh = yield from h.register_mem(r)
        yield from h.connect(vi, "node1", 3)
        segs = [h.segment(r, mh, 0, 4)]
        for _ in range(MESSAGES_N):
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "s")
        vi = yield from h.create_vi()
        r = h.alloc(64)
        mh = yield from h.register_mem(r)
        segs = [h.segment(r, mh, 0, 4)]
        for _ in range(MESSAGES_N):
            yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(3)
        yield from h.accept(req, vi)
        for _ in range(MESSAGES_N):
            yield from h.recv_wait(vi)

    cp = tb.spawn(client())
    sp = tb.spawn(server())
    tb.run(cp)
    tb.run(sp)


def _stream_workload(fidelity: str = "packet") -> None:
    """Stream large fragmented messages: the burst-batching hot path.

    64 KiB messages over a 1 KiB-MTU clan fabric fragment into 64 wire
    packets each; with ``fidelity="auto"`` every message collapses into
    one fast-forwarded burst, with ``"packet"`` each packet is its own
    event cascade.  Both fidelities produce bit-identical completion
    times — only the wall-clock differs.
    """
    tb = Testbed("clan", mtu=STREAM_MTU, fidelity=fidelity)

    def client():
        h = tb.open("node0", "c")
        vi = yield from h.create_vi()
        r = h.alloc(STREAM_SIZE)
        mh = yield from h.register_mem(r)
        yield from h.connect(vi, "node1", 5)
        segs = [h.segment(r, mh, 0, STREAM_SIZE)]
        for _ in range(STREAM_N):
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "s")
        vi = yield from h.create_vi()
        r = h.alloc(STREAM_SIZE)
        mh = yield from h.register_mem(r)
        segs = [h.segment(r, mh, 0, STREAM_SIZE)]
        for _ in range(STREAM_N):
            yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(5)
        yield from h.accept(req, vi)
        for _ in range(STREAM_N):
            yield from h.recv_wait(vi)

    cp = tb.spawn(client())
    sp = tb.spawn(server())
    tb.run(cp)
    tb.run(sp)


def _warm_comparison(repeats: int = 10) -> dict:
    """Cold warm-up vs state-blob restore, summed across providers.

    The cold side rebuilds each provider's deep-warmed testbed by
    re-simulating its :data:`WARM_ITERS`-iteration ping-pong; the warm
    side restores the identical endpoint from a state-tier checkpoint.
    Both are timed best-of in the same process, so the ratio is
    machine-independent — ``--check`` holds it to
    :data:`MIN_WARM_SPEEDUP` as an absolute floor.
    """
    from repro import snap
    from repro.check import ALL_PROVIDERS

    def best(fn):
        t_best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            t_best = min(t_best, time.perf_counter() - t0)
        return t_best

    cold_s = warm_s = 0.0
    for provider in ALL_PROVIDERS:
        blob = snap.snapshot_state(
            snap.warmed_testbed(provider, iters=WARM_ITERS))
        cold_s += best(lambda: snap.warmed_testbed(provider,
                                                   iters=WARM_ITERS))
        warm_s += best(lambda: snap.restore_state(blob))
    return {
        "warm_cold_ms": cold_s * 1e3,
        "warm_restore_ms": warm_s * 1e3,
        "warm_speedup": cold_s / warm_s,
        "warm_iters": WARM_ITERS,
    }


def _serve_comparison(repeats: int = 3) -> dict:
    """Control-plane wall-clock: cold submit vs warm pool vs cache hit.

    One in-process ``vibe serve`` instance, one small sweep spec.  The
    cold figure includes worker spawn and testbed construction; the
    warm-pool figure resubmits fresh seeds against the already-armed
    workers; the cache-hit figure resubmits the identical spec and is
    answered from the content-addressed result cache without any
    simulation.  Trend only — never gated: all three move with machine
    load, and the cache-hit win is obvious enough not to need a floor.
    """
    import tempfile

    from repro.serve import ExperimentService, ServiceClient

    def spec(seed):
        return {"kind": "cluster",
                "params": {"nodes": 2, "clients": 2, "requests": 4,
                           "providers": ["mvia"], "rates": [8_000.0]},
                "seed": seed}

    def timed(client, s):
        t0 = time.perf_counter()
        job = client.submit(s)
        client.wait(job["id"], timeout=600, poll=0.02)
        _body, hit = client.result(job["id"])
        return (time.perf_counter() - t0) * 1e3, hit

    with tempfile.TemporaryDirectory() as tmp:
        svc = ExperimentService(port=0, workers=2, cache_dir=tmp)
        svc.start()
        try:
            client = ServiceClient(svc.url, client="bench")
            cold_ms, hit = timed(client, spec(7_000))
            assert not hit, "fresh spec must not be a cache hit"
            warm_ms = min(timed(client, spec(7_001 + i))[0]
                          for i in range(repeats))
            cache_ms = float("inf")
            for _ in range(repeats):
                ms, hit = timed(client, spec(7_000))
                assert hit, "resubmitted spec must be a cache hit"
                cache_ms = min(cache_ms, ms)
        finally:
            svc.stop()
    return {
        "serve_cold_ms": cold_ms,
        "serve_warm_pool_ms": warm_ms,
        "serve_cache_hit_ms": cache_ms,
        "serve_cold_over_cache_hit": cold_ms / cache_ms,
    }


def _rate(fn, n: int, repeats: int) -> float:
    """Best-of-``repeats`` operations/sec for ``fn`` (n ops per call)."""
    fn()  # warm-up: imports, pools, code caches
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return n / best


def measure(repeats: int = 5) -> dict:
    # calibrate on both sides of the workloads and keep the best: a
    # transient load spike during either sample would otherwise skew
    # every normalized figure at once
    calib = _calibrate()
    events = _rate(_events_workload, EVENTS_N, repeats)
    messages = _rate(_messages_workload, MESSAGES_N, repeats)
    stream = _rate(lambda: _stream_workload("packet"), STREAM_N, repeats)
    stream_ff = _rate(lambda: _stream_workload("auto"), STREAM_N, repeats)
    warm = _warm_comparison()
    calib = max(calib, _calibrate())
    return {
        **warm,
        "calibration_ops_per_sec": calib,
        "events_per_sec": events,
        "messages_per_sec": messages,
        "stream_messages_per_sec": stream,
        "stream_messages_per_sec_ff": stream_ff,
        "events_per_sec_normalized": events / calib,
        "messages_per_sec_normalized": messages / calib,
        "stream_messages_per_sec_normalized": stream / calib,
        "stream_messages_per_sec_ff_normalized": stream_ff / calib,
        "stream_ff_speedup": stream_ff / stream,
        "events_n": EVENTS_N,
        "messages_n": MESSAGES_N,
        "stream_n": STREAM_N,
    }


def _shard_comparison(repeats: int = 3) -> dict:
    """Wall-clock of one cluster point at 1, 2 and 3 shards.

    Trend only — never gated: whether partitioning wins depends on the
    core count and on how much synchronization the workload forces
    (every round is a pipe round-trip), so the recorded speedups are a
    dashboard for the sharding overhead, not a floor.  The bytes, by
    contrast, are gated hard: the point must be identical at every
    shard count before any timing is recorded.
    """
    from repro.cluster import ClusterConfig, run_cluster_once
    from repro.shard import run_cluster_once_sharded

    cfg = ClusterConfig(nodes=4, clients=8, requests=16)

    def best(fn):
        fn()  # warm-up
        t_best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            t_best = min(t_best, time.perf_counter() - t0)
        return t_best

    single_pt = run_cluster_once("clan", cfg, 8_000.0)
    single_s = best(lambda: run_cluster_once("clan", cfg, 8_000.0))
    out = {"shard_single_ms": single_s * 1e3}
    for n in (2, 3):
        pt, _ = run_cluster_once_sharded("clan", cfg, 8_000.0, shards=n,
                                         workers="process")
        assert pt == single_pt, f"shards={n} diverged; not recording"
        t = best(lambda: run_cluster_once_sharded(
            "clan", cfg, 8_000.0, shards=n, workers="process")[0])
        out[f"shard_{n}_ms"] = t * 1e3
        out[f"shard_{n}_speedup"] = single_s / t
    return out


def _cluster_workload() -> None:
    from repro.cluster import ClusterConfig, run_cluster_once

    cfg = ClusterConfig(nodes=4, clients=8, requests=16)
    pt = run_cluster_once("clan", cfg, 8_000.0)
    assert pt["completed"] == CLUSTER_REQUESTS_N


def measure_cluster(repeats: int = 3) -> dict:
    from repro.check import ALL_PROVIDERS
    from repro.cluster import QUICK_RATE_GRID, ClusterConfig, run_cluster

    calib = _calibrate()
    requests = _rate(_cluster_workload, CLUSTER_REQUESTS_N, repeats)
    report = run_cluster(ALL_PROVIDERS, ClusterConfig(),
                         rates=QUICK_RATE_GRID)
    assert report.ok, "knee sweep hit violations; baseline not recorded"
    # SLO-capacity trend: the same quick grid re-swept with retries and
    # admission control on, against a slow server (fixed:100 caps one
    # server at 10k rps) so the top rate genuinely overloads.  Trend
    # only — never gated: the slo knee moves whenever overload-policy
    # defaults are retuned, so ``--check`` prints it for the dashboard
    # but does not compare it.
    slo_cfg = ClusterConfig(service="fixed:100", retry="on",
                            server_policy="depth=16,shed=deadline",
                            tenants=2, deadline_us=400_000.0)
    slo_report = run_cluster(ALL_PROVIDERS, slo_cfg, rates=QUICK_RATE_GRID)
    assert slo_report.ok, "slo sweep hit violations; baseline not recorded"
    return {
        "calibration_ops_per_sec": calib,
        "requests_per_wallsec": requests,
        "requests_per_wallsec_normalized": requests / calib,
        "requests_n": CLUSTER_REQUESTS_N,
        "rate_grid": list(QUICK_RATE_GRID),
        "knee_rps": {p: report.results[p]["knee_rps"]
                     for p in ALL_PROVIDERS},
        "peak_goodput_rps": {p: report.results[p]["peak_goodput_rps"]
                             for p in ALL_PROVIDERS},
        "slo_knee_rps": {p: slo_report.results[p]["slo_knee_rps"]
                         for p in ALL_PROVIDERS},
    }


def check_cluster(baseline_path: pathlib.Path, tolerance: float,
                  repeats: int) -> int:
    baseline = json.loads(baseline_path.read_text())
    fresh = measure_cluster(repeats)
    failed = False
    key = "requests_per_wallsec_normalized"
    old, new = baseline[key], fresh[key]
    drop = 1.0 - new / old
    status = "FAIL" if drop > tolerance else "ok"
    failed |= drop > tolerance
    print(f"{status:>4}  {key}: baseline {old:.3f}, "
          f"now {new:.3f} ({-drop:+.1%})")
    # the knees are simulation outputs, not timings: exact match required
    for metric in ("knee_rps", "peak_goodput_rps"):
        for prov, old_v in baseline[metric].items():
            new_v = fresh[metric][prov]
            ok = new_v == old_v
            failed |= not ok
            print(f"{'ok' if ok else 'FAIL':>4}  {metric}[{prov}]: "
                  f"baseline {old_v}, now {new_v}")
    # the slo knee is a trend line, not a gate: it shifts whenever the
    # overload-policy defaults are retuned, so print it and move on
    for prov, old_v in baseline.get("slo_knee_rps", {}).items():
        new_v = fresh["slo_knee_rps"][prov]
        print(f"info  slo_knee_rps[{prov}] (trend only): "
              f"baseline {old_v}, now {new_v}")
    if failed:
        print(f"cluster baseline regressed against {baseline_path}",
              file=sys.stderr)
        return 1
    return 0


def check(baseline_path: pathlib.Path, tolerance: float,
          repeats: int) -> int:
    baseline = json.loads(baseline_path.read_text())
    fresh = measure(repeats)
    failed = False
    for key in ("events_per_sec_normalized", "messages_per_sec_normalized",
                "stream_messages_per_sec_normalized",
                "stream_messages_per_sec_ff_normalized"):
        if key not in baseline:   # older baseline without stream keys
            continue
        old, new = baseline[key], fresh[key]
        drop = 1.0 - new / old
        status = "FAIL" if drop > tolerance else "ok"
        failed |= drop > tolerance
        print(f"{status:>4}  {key}: baseline {old:.3f}, "
              f"now {new:.3f} ({-drop:+.1%})")
    # the fast-forward win is a same-process wall-clock ratio, so it is
    # machine-independent: hold the absolute floor, not a tolerance band
    speedup = fresh["stream_ff_speedup"]
    ok = speedup >= MIN_STREAM_SPEEDUP
    failed |= not ok
    print(f"{'ok' if ok else 'FAIL':>4}  stream_ff_speedup: "
          f"{speedup:.1f}x (floor {MIN_STREAM_SPEEDUP:.0f}x)")
    # warm-state reuse is the same kind of in-process ratio: hold the floor
    warm = fresh["warm_speedup"]
    ok = warm >= MIN_WARM_SPEEDUP
    failed |= not ok
    print(f"{'ok' if ok else 'FAIL':>4}  warm_speedup: "
          f"{warm:.1f}x (floor {MIN_WARM_SPEEDUP:.1f}x)")
    if failed:
        print(f"kernel throughput dropped >"
              f"{tolerance:.0%} below {baseline_path}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                    help="baseline file to write (record mode)")
    ap.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                    help="compare against BASELINE instead of recording")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed normalized-throughput drop (default 0.20)")
    ap.add_argument("--repeats", type=int, default=5,
                    help="timing repeats, best-of (default 5)")
    ap.add_argument("--cluster", action="store_true",
                    help="record/check the cluster-serving baseline "
                         "(BENCH_cluster.json) instead of the kernel one")
    ap.add_argument("--shard", action="store_true",
                    help="measure only the shard-scaling wall-clock "
                         "(1/2/3 shards, byte-equality asserted first) "
                         "and merge its keys into the cluster baseline; "
                         "trend only, never gated")
    ap.add_argument("--warm", action="store_true",
                    help="measure only the warm-state reuse comparison "
                         "(cold warm-up vs checkpoint restore) and merge "
                         "its keys into the existing kernel baseline")
    ap.add_argument("--serve", action="store_true",
                    help="measure only the control-plane comparison "
                         "(cold submit vs warm pool vs cache hit through "
                         "`vibe serve`) and merge its keys into the "
                         "kernel baseline; trend only, never gated")
    args = ap.parse_args(argv)

    if args.cluster and args.out == DEFAULT_OUT:
        args.out = CLUSTER_OUT
    if args.check:
        if args.cluster:
            return check_cluster(args.check, args.tolerance, args.repeats)
        return check(args.check, args.tolerance, args.repeats)

    if args.shard:
        if args.out == DEFAULT_OUT:
            args.out = CLUSTER_OUT
        shard = _shard_comparison(args.repeats)
        merged = json.loads(args.out.read_text()) if args.out.exists() else {}
        merged.update(shard)
        args.out.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"updated {args.out}")
        for k, v in shard.items():
            print(f"  {k}: {v:,.3f}" if isinstance(v, float)
                  else f"  {k}: {v}")
        return 0

    if args.serve:
        serve = _serve_comparison(args.repeats)
        merged = json.loads(args.out.read_text()) if args.out.exists() else {}
        merged.update(serve)
        args.out.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"updated {args.out}")
        for k, v in serve.items():
            print(f"  {k}: {v:,.3f}" if isinstance(v, float)
                  else f"  {k}: {v}")
        return 0

    if args.warm:
        warm = _warm_comparison()
        merged = json.loads(args.out.read_text()) if args.out.exists() else {}
        merged.update(warm)
        args.out.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"updated {args.out}")
        for k, v in warm.items():
            print(f"  {k}: {v:,.3f}" if isinstance(v, float)
                  else f"  {k}: {v}")
        floor_ok = warm["warm_speedup"] >= MIN_WARM_SPEEDUP
        print(f"  floor {MIN_WARM_SPEEDUP:.1f}x: "
              f"{'ok' if floor_ok else 'FAIL'}")
        return 0 if floor_ok else 1

    result = measure_cluster(args.repeats) if args.cluster \
        else measure(args.repeats)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    for k, v in result.items():
        print(f"  {k}: {v:,.3f}" if isinstance(v, float) else f"  {k}: {v}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
