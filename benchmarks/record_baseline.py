"""Record (or check) the simulation-kernel throughput baseline.

Measures the two kernel-bound workloads from ``bench_simulator_perf.py``
and writes ``BENCH_simkernel.json``::

    python benchmarks/record_baseline.py                 # record
    python benchmarks/record_baseline.py --check PATH    # CI smoke

Raw events/sec are machine-dependent, so each figure is also stored
*normalized* by a pure-Python calibration loop timed on the same
machine; ``--check`` compares normalized throughput against the
committed baseline and exits non-zero if it drops by more than
``--tolerance`` (default 30 %).  That keeps the CI guardrail meaningful
on runners slower or faster than the machine that recorded the file.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.providers import Testbed           # noqa: E402
from repro.sim import Simulator               # noqa: E402
from repro.via import Descriptor              # noqa: E402

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_simkernel.json"

EVENTS_N = 20_000
MESSAGES_N = 300


def _calibrate(repeats: int = 5) -> float:
    """Machine speed score: iterations/sec of a fixed pure-Python loop."""
    n = 200_000
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i & 7
        best = min(best, time.perf_counter() - t0)
    assert acc >= 0
    return n / best


def _events_workload() -> None:
    sim = Simulator()
    for i in range(EVENTS_N):
        sim.timeout(float(i % 97))
    sim.run()
    assert sim.now == 96.0


def _messages_workload() -> None:
    tb = Testbed("clan")

    def client():
        h = tb.open("node0", "c")
        vi = yield from h.create_vi()
        r = h.alloc(64)
        mh = yield from h.register_mem(r)
        yield from h.connect(vi, "node1", 3)
        segs = [h.segment(r, mh, 0, 4)]
        for _ in range(MESSAGES_N):
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "s")
        vi = yield from h.create_vi()
        r = h.alloc(64)
        mh = yield from h.register_mem(r)
        segs = [h.segment(r, mh, 0, 4)]
        for _ in range(MESSAGES_N):
            yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(3)
        yield from h.accept(req, vi)
        for _ in range(MESSAGES_N):
            yield from h.recv_wait(vi)

    cp = tb.spawn(client())
    sp = tb.spawn(server())
    tb.run(cp)
    tb.run(sp)


def _rate(fn, n: int, repeats: int) -> float:
    """Best-of-``repeats`` operations/sec for ``fn`` (n ops per call)."""
    fn()  # warm-up: imports, pools, code caches
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return n / best


def measure(repeats: int = 5) -> dict:
    calib = _calibrate()
    events = _rate(_events_workload, EVENTS_N, repeats)
    messages = _rate(_messages_workload, MESSAGES_N, repeats)
    return {
        "calibration_ops_per_sec": calib,
        "events_per_sec": events,
        "messages_per_sec": messages,
        "events_per_sec_normalized": events / calib,
        "messages_per_sec_normalized": messages / calib,
        "events_n": EVENTS_N,
        "messages_n": MESSAGES_N,
    }


def check(baseline_path: pathlib.Path, tolerance: float,
          repeats: int) -> int:
    baseline = json.loads(baseline_path.read_text())
    fresh = measure(repeats)
    failed = False
    for key in ("events_per_sec_normalized", "messages_per_sec_normalized"):
        old, new = baseline[key], fresh[key]
        drop = 1.0 - new / old
        status = "FAIL" if drop > tolerance else "ok"
        failed |= drop > tolerance
        print(f"{status:>4}  {key}: baseline {old:.3f}, "
              f"now {new:.3f} ({-drop:+.1%})")
    if failed:
        print(f"kernel throughput dropped >"
              f"{tolerance:.0%} below {baseline_path}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                    help="baseline file to write (record mode)")
    ap.add_argument("--check", type=pathlib.Path, metavar="BASELINE",
                    help="compare against BASELINE instead of recording")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed normalized-throughput drop (default 0.30)")
    ap.add_argument("--repeats", type=int, default=5,
                    help="timing repeats, best-of (default 5)")
    args = ap.parse_args(argv)

    if args.check:
        return check(args.check, args.tolerance, args.repeats)

    result = measure(args.repeats)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    for k, v in result.items():
        print(f"  {k}: {v:,.3f}" if isinstance(v, float) else f"  {k}: {v}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
