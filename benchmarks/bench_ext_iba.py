"""X3 — the InfiniBand preview (paper §5: "a similar micro-benchmark
suite for the upcoming InfiniBand Architecture").

Runs the unmodified VIBe suite against the IBA-style provider and
compares it with the best VIA stack (cLAN).
"""

from repro.vibe import (
    base_bandwidth,
    base_latency,
    client_server,
    nondata_costs,
    render_figure,
    render_table1,
)

PAIR = ("clan", "iba")


def test_iba_nondata(run_once, record):
    results = run_once(lambda: {p: nondata_costs(p, repeats=3)
                                for p in PAIR})
    record("ext_iba_table1", render_table1(results))
    # faster silicon across the board
    for op in ("create_vi", "establish_connection", "create_cq"):
        assert results["iba"].point(op).extra["cost_us"] \
            < results["clan"].point(op).extra["cost_us"]


def test_iba_base_transfer(run_once, record):
    def sweep():
        lat = [base_latency(p) for p in PAIR]
        bw = [base_bandwidth(p) for p in PAIR]
        return lat, bw

    lat, bw = run_once(sweep)
    record("ext_iba_latency",
           render_figure(lat, "latency_us",
                         "cLAN vs IBA: one-way latency (us)"))
    record("ext_iba_bandwidth",
           render_figure(bw, "bandwidth_mbs",
                         "cLAN vs IBA: bandwidth (MB/s)"))
    lby = {r.provider: r for r in lat}
    bby = {r.provider: r for r in bw}
    for size in (4, 1024, 28672):
        assert lby["iba"].point(size).latency_us \
            < lby["clan"].point(size).latency_us
    # the HCA is PCI-bound, not link-bound: big but capped gain
    assert 110 < bby["iba"].point(28672).bandwidth_mbs < 132


def test_iba_client_server(run_once, record):
    results = run_once(lambda: [client_server(p, 16, [16, 1024, 12288],
                                              transactions=16)
                                for p in PAIR])
    record("ext_iba_clientserver",
           render_figure(results, "tps",
                         "cLAN vs IBA: transactions/s, request 16 B"))
    by = {r.provider: r for r in results}
    for reply in (16, 1024):
        assert by["iba"].point(reply).tps > by["clan"].point(reply).tps
