"""A3 — host-speed ablation: what faster hosts do to each design.

The paper's testbed is fixed (450 MHz Pentium II); history wasn't.
Scaling every host/firmware cost (``CostModel.scaled``) and the memcpy
rate shows why the design verdicts of 2001 shifted: software VIA's
copy penalty melts as hosts speed up, while zero-copy stacks are stuck
behind their wire and I/O bus.
"""

from dataclasses import replace

from repro.providers import get_spec
from repro.vibe import TransferConfig, run_latency
from repro.vibe.metrics import BenchResult, Measurement


def _speed_variant(name: str, factor: float):
    """A provider with hosts `1/factor`x faster (costs scaled by factor)."""
    spec = get_spec(name)
    spec = replace(spec, costs=spec.costs.scaled(factor),
                   host=replace(spec.host,
                                mem_copy_bw=spec.host.mem_copy_bw / factor))
    return spec


def test_host_speed_ablation(run_once, record):
    factors = (1.0, 0.5, 0.25)   # 1x, 2x, 4x faster hosts

    def sweep():
        out = {}
        for provider in ("mvia", "clan"):
            points = []
            for f in factors:
                spec = _speed_variant(provider, f)
                lat4 = run_latency(spec, TransferConfig(size=4)).latency_us
                lat28k = run_latency(spec,
                                     TransferConfig(size=28672)).latency_us
                points.append(Measurement(param=f"{1 / f:g}x", extra={
                    "lat4_us": lat4, "lat28k_us": lat28k,
                }))
            out[provider] = BenchResult("host_speed", provider, points)
        return out

    results = run_once(sweep)
    text = []
    for provider, res in results.items():
        text.append(res.table())
    record("ablation_host_speed", "\n\n".join(text))

    mvia = {p.param: p.extra for p in results["mvia"].points}
    clan = {p.param: p.extra for p in results["clan"].points}
    # software VIA gains hugely from faster hosts at large sizes
    # (its costs are host costs)...
    mvia_gain = mvia["1x"]["lat28k_us"] / mvia["4x"]["lat28k_us"]
    assert mvia_gain > 1.8
    # ...while the hardware stack barely moves (it is wire/DMA bound)
    clan_gain = clan["1x"]["lat28k_us"] / clan["4x"]["lat28k_us"]
    assert clan_gain < 1.1
    assert mvia_gain > 3 * clan_gain / 2
    # at 4x hosts, software VIA's 28 KiB latency approaches hardware's
    assert mvia["4x"]["lat28k_us"] < 1.3 * clan["4x"]["lat28k_us"]
