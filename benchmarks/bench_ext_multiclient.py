"""X2 — multi-client server scalability (CQ + multi-VI combined).

One server node, N client nodes, every receive completion merged
through a single CQ — the deployment pattern the paper's §3.2.3/§3.2.4
micro-benchmarks exist to predict.
"""

from repro.providers import get_spec
from repro.providers.costs import DispatchKind
from repro.vibe import multiclient_throughput, render_figure

from conftest import PROVIDERS

COUNTS = (1, 2, 4, 8)


def test_multiclient_scalability(run_once, record):
    results = run_once(lambda: [multiclient_throughput(p, COUNTS,
                                                       transactions=8)
                                for p in PROVIDERS])
    record("ext_multiclient",
           render_figure(results, "tps",
                         "Aggregate transactions/s vs #client nodes "
                         "(request 16 B, reply 1 KiB)"))
    by = {r.provider: r for r in results}
    for p in PROVIDERS:
        # more clients never reduce aggregate throughput below 1 client...
        assert by[p].point(8).tps > by[p].point(1).tps * 0.8
        # ...but per-client throughput always falls (single server)
        assert by[p].point(8).extra["tps_per_client"] \
            < by[p].point(1).extra["tps_per_client"]
    # cLAN serves the most in every configuration
    for n in COUNTS:
        assert by["clan"].point(n).tps >= by["bvia"].point(n).tps


def test_polled_dispatch_tax_at_scale(run_once, record):
    def sweep():
        polled = multiclient_throughput("bvia", (8,), transactions=8)
        direct = multiclient_throughput(
            get_spec("bvia").with_choices(dispatch=DispatchKind.DIRECT),
            (8,), transactions=8)
        return polled, direct

    polled, direct = run_once(sweep)
    record("ext_multiclient_dispatch",
           f"BVIA 8-client aggregate tps: polled dispatch "
           f"{polled.point(8).tps:.0f}, direct dispatch "
           f"{direct.point(8).tps:.0f}")
    assert direct.point(8).tps > polled.point(8).tps * 1.1
