"""X1 — programming-model benchmarks (paper §5 future work).

Message-passing (MPI-style), get/put and DSM micro-benchmarks over the
repro.layers implementations — the suites the paper planned to add.
"""

from repro.vibe import (
    dsm_fault_latency,
    eager_threshold_sweep,
    getput_latency,
    msg_layer_bandwidth,
    msg_layer_latency,
    render_figure,
)
from repro.vibe.metrics import merge_tables

from conftest import PROVIDERS

ALL = PROVIDERS + ("iba",)
SIZES = [16, 256, 1024, 4096, 16384]


def test_msg_layer_latency(run_once, record):
    results = run_once(lambda: [msg_layer_latency(p, SIZES, iters=10)
                                for p in ALL])
    record("ext_msg_latency",
           render_figure(results, "latency_us",
                         "MsgLat: message-layer one-way latency (us)"))
    by = {r.provider: r for r in results}
    # the raw-VIA ordering survives the layer
    for size in (16, 1024):
        assert by["clan"].point(size).latency_us \
            < by["mvia"].point(size).latency_us
        assert by["iba"].point(size).latency_us \
            < by["clan"].point(size).latency_us


def test_msg_layer_bandwidth(run_once, record):
    def sweep():
        sync = [msg_layer_bandwidth(p, [1024, 4096], count=40) for p in ALL]
        pipelined = [msg_layer_bandwidth(p, [1024, 4096], count=40,
                                         nonblocking=True) for p in ALL]
        return sync, pipelined

    sync, pipelined = run_once(sweep)
    record("ext_msg_bandwidth",
           render_figure(sync + pipelined, "bandwidth_mbs",
                         "MsgBw: message-layer bandwidth (MB/s), "
                         "synchronous send vs pipelined isend"))
    # Synchronous sends cap streaming at one message per round trip;
    # isend (a send-pipeline at the layer, cf. E13) recovers most of it.
    sync_by = {r.provider: r for r in sync}
    pipe_by = {r.provider.removesuffix("+isend"): r for r in pipelined}
    for p in ALL:
        assert pipe_by[p].point(4096).bandwidth_mbs \
            > sync_by[p].point(4096).bandwidth_mbs * 1.3


def test_eager_threshold(run_once, record):
    results = run_once(lambda: [eager_threshold_sweep(p, size=8192,
                                                      iters=10)
                                for p in ("bvia", "clan")])
    record("ext_eager_threshold",
           merge_tables(results, "latency_us",
                        "Eager-threshold sweep: 8 KiB message latency (us) "
                        "as the threshold crosses the size"))
    # on BVIA, whose registration is expensive (Fig. 1), eager wins at
    # 8 KiB; the rendezvous handshake + RDMA only pays off above that
    for r in results:
        eager = [p for p in r.points if p.extra["protocol"] == "eager"]
        rdv = [p for p in r.points if p.extra["protocol"] == "rendezvous"]
        assert eager and rdv


def test_getput(run_once, record):
    results = run_once(lambda: [getput_latency(p, sizes=[256, 4096],
                                               iters=8)
                                for p in ("bvia", "clan", "iba")])
    record("ext_getput",
           merge_tables(results, "get_over_put",
                        "Get/Put: emulated-get penalty (get/put latency "
                        "ratio; <1 means one-sided RDMA read)"))
    by = {r.provider: r for r in results}
    # Emulated gets pay a request/reply round trip.  On unreliable BVIA
    # a put completes locally, so the ratio is large; on
    # reliable-delivery cLAN the put already waits for an ack (its own
    # round trip), so the ratio shrinks toward 1 — but never below it.
    assert by["bvia"].point(4096).extra["get_over_put"] > 1.5
    assert by["clan"].point(4096).extra["get_over_put"] > 1.0
    # IBA's true one-sided RDMA read beats even the put
    assert by["iba"].point(4096).extra["get_over_put"] < 1.0


def test_dsm_faults(run_once, record):
    results = run_once(lambda: [dsm_fault_latency(p, page_sizes=(1024, 4096,
                                                                 16384),
                                                  faults=6)
                                for p in ALL])
    record("ext_dsm_faults",
           merge_tables(results, "read_miss_us",
                        "DSM read-miss (page fetch) latency vs page size "
                        "(us)"))
    by = {r.provider: r for r in results}
    for p in ALL:
        pts = by[p].points
        # fault cost grows with the page size
        assert pts[-1].extra["read_miss_us"] > pts[0].extra["read_miss_us"]
    # the provider latency profile orders the DSM fault costs
    assert by["iba"].point(4096).extra["read_miss_us"] \
        < by["clan"].point(4096).extra["read_miss_us"] \
        < by["mvia"].point(4096).extra["read_miss_us"]
