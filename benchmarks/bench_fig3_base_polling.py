"""E4 — Fig. 3: base latency and bandwidth with polling."""

from repro.vibe import base_bandwidth, base_latency, render_figure

from conftest import PROVIDERS


def test_fig3_latency(run_once, record):
    results = run_once(lambda: [base_latency(p) for p in PROVIDERS])
    record("fig3_latency_polling",
           render_figure(results, "latency_us",
                         "Fig. 3: base one-way latency, polling (us)"))
    by = {r.provider: r for r in results}
    # "cLAN provides the lowest latency"
    for size in (4, 256, 1024, 4096):
        assert by["clan"].point(size).latency_us \
            < min(by["mvia"].point(size).latency_us,
                  by["bvia"].point(size).latency_us)
    # "M-VIA has a lower latency for short messages. BVIA outperforms
    # M-VIA for longer messages"
    assert by["mvia"].point(4).latency_us < by["bvia"].point(4).latency_us
    assert by["bvia"].point(28672).latency_us \
        < by["mvia"].point(28672).latency_us


def test_fig3_bandwidth(run_once, record):
    results = run_once(lambda: [base_bandwidth(p) for p in PROVIDERS])
    record("fig3_bandwidth_polling",
           render_figure(results, "bandwidth_mbs",
                         "Fig. 3: base streaming bandwidth, polling (MB/s)"))
    by = {r.provider: r for r in results}
    # "superiority of cLAN ... for a large range of message sizes.
    # However, for large messages, BVIA outperforms both"
    for size in (256, 1024, 4096):
        assert by["clan"].point(size).bandwidth_mbs \
            > max(by["mvia"].point(size).bandwidth_mbs,
                  by["bvia"].point(size).bandwidth_mbs)
    for size in (20480, 28672):
        assert by["bvia"].point(size).bandwidth_mbs \
            > max(by["clan"].point(size).bandwidth_mbs,
                  by["mvia"].point(size).bandwidth_mbs)


def test_fig3_cpu_is_100_percent_polling(run_once, record):
    results = run_once(lambda: [base_latency(p, [4, 4096]) for p in PROVIDERS])
    # "CPU utilization results show a 100% utilization when polling is
    # used and are not shown" — we record them anyway
    record("fig3_cpu_polling",
           render_figure(results, "cpu_send",
                         "Base sender CPU utilisation, polling (fraction)"))
    for r in results:
        for p in r.points:
            assert abs(p.cpu_send - 1.0) < 1e-6
