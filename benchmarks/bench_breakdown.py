"""X4 — per-component latency breakdown (paper §3's "pinpoint the
bottlenecks" use of the suite).

Decomposes a traced 1 KiB and 16 KiB transfer into architectural
phases for every provider and asserts the component attribution that
explains Figs. 3–6.
"""

from repro.models import latency_breakdown, render_breakdowns

from conftest import PROVIDERS

ALL = PROVIDERS + ("iba",)


def test_breakdown_small(run_once, record):
    bds = run_once(lambda: [latency_breakdown(p, 1024) for p in ALL])
    record("breakdown_1k", render_breakdowns(bds))
    by = {b.provider: b for b in bds}
    # M-VIA's costs live on the host (staging copies + kernel receive)
    host_share = (by["mvia"].phases["staging"]
                  + by["mvia"].phases["rx_kernel"]) / by["mvia"].total
    assert host_share > 0.3
    # BVIA's live on the NIC engine
    nic_share = (by["bvia"].phases["dispatch"]
                 + by["bvia"].phases["tx_dma"]
                 + by["bvia"].phases["rx_processing"]) / by["bvia"].total
    assert nic_share > 0.5
    # cLAN/IBA are wire/DMA bound — protocol overhead is small
    for p in ("clan", "iba"):
        proto = (by[p].phases["post"] + by[p].phases["dispatch"]
                 + by[p].phases["translation"] + by[p].phases["reap"])
        assert proto < 0.25 * by[p].total


def test_breakdown_large(run_once, record):
    bds = run_once(lambda: [latency_breakdown(p, 16384) for p in ALL])
    record("breakdown_16k", render_breakdowns(bds))
    for b in bds:
        # at 16 KiB data movement dominates every stack
        movement = (b.phases["staging"] + b.phases["tx_dma"]
                    + b.phases["wire"] + b.phases["rx_processing"]
                    + b.phases["rx_kernel"])
        assert movement > 0.8 * b.total
        # and the telescoping invariant holds
        assert abs(sum(b.phases.values()) - b.total) < 1e-6
