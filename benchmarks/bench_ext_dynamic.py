"""X6 — dynamic-runtime behaviour (paper §3.1's scalability motivation).

Connection churn rates and open-loop tail latencies: the operational
costs Table 1 prices per call, measured as sustained system behaviour.
"""

from repro.vibe import connection_churn, tail_latency_under_load
from repro.vibe.metrics import BenchResult, merge_tables

from conftest import PROVIDERS

ALL = PROVIDERS + ("iba",)


def test_connection_churn(run_once, record):
    points = run_once(lambda: [connection_churn(p, cycles=8) for p in ALL])
    result = BenchResult("connection_churn", "all", points)
    record("ext_churn", result.table())
    rates = {p.param: p.extra["cycles_per_s"] for p in points}
    # Table 1 inverted: cheap connections win the lifecycle race
    assert rates["bvia"] > rates["clan"] > rates["mvia"]
    assert rates["iba"] > rates["clan"]
    # and the absolute rates are Table-1-sized: ~150/s for M-VIA's
    # 6.5 ms handshake, >1000/s for BVIA's 0.5 ms one
    assert 100 < rates["mvia"] < 200
    assert rates["bvia"] > 1000


def test_tail_latency_under_load(run_once, record):
    results = run_once(lambda: [
        tail_latency_under_load(p, loads=(0.3, 0.7, 0.95), requests=100)
        for p in ("mvia", "clan", "iba")
    ])
    text = [merge_tables(results, "p99_us",
                         "p99 sojourn time (us) vs offered load"),
            merge_tables(results, "p50_us",
                         "p50 sojourn time (us) vs offered load")]
    record("ext_tail_latency", "\n\n".join(text))
    for r in results:
        # higher load never improves the tail
        p99s = [p.extra["p99_us"] for p in r.points]
        assert p99s[0] <= p99s[-1]
    by = {r.provider: r for r in results}
    # the queueing tail is visible on the fast stacks at 0.95 load
    for p in ("clan", "iba"):
        pt = by[p].point(0.95)
        assert pt.extra["p99_us"] > 1.5 * pt.extra["p50_us"]
