"""X7 — sockets-over-VIA throughput (the paper's ref [17] model).

Byte-stream throughput vs chunk size on every provider: the per-chunk
overhead / rendezvous-cliff trade-off a high-performance sockets layer
tunes with VIBe's numbers.
"""

from repro.vibe import stream_throughput
from repro.vibe.metrics import merge_tables

from conftest import PROVIDERS

ALL = PROVIDERS + ("iba",)


def test_stream_throughput(run_once, record):
    results = run_once(lambda: [stream_throughput(p, total_bytes=150_000)
                                for p in ALL])
    record("ext_stream",
           merge_tables(results, "bandwidth_mbs",
                        "Sockets-layer throughput (MB/s) vs chunk size "
                        "(eager threshold 4096)"))
    by = {r.provider: r for r in results}
    for p in ALL:
        res = by[p]
        # per-chunk overhead: 512 B chunks lose to 4 KiB chunks
        assert res.point(512).bandwidth_mbs < res.point(4096).bandwidth_mbs
        # the rendezvous cliff: chunks beyond the eager threshold lose
        # their pipelining and fall hard
        assert res.point(16384).bandwidth_mbs \
            < res.point(4096).bandwidth_mbs
    # ordering: the fast stacks stream faster at the sweet spot
    assert by["iba"].point(4096).bandwidth_mbs \
        > by["clan"].point(4096).bandwidth_mbs \
        > by["mvia"].point(4096).bandwidth_mbs
