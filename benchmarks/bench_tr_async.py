"""E11 — §3.2.5: impact of asynchronous message handling (TR [6]).

Measures delivery latency when the receive descriptor is posted late,
exposing the unexpected-message policy of each stack.
"""

from repro.vibe import async_latency
from repro.vibe.metrics import merge_tables

from conftest import PROVIDERS

DELAYS = (0.0, 25.0, 100.0, 400.0)


def test_async_delivery(run_once, record):
    results = run_once(lambda: [async_latency(p, delays=DELAYS)
                                for p in PROVIDERS])
    lines = [merge_tables(results, "latency_us",
                          "AsyLat: delivery latency vs recv-post delay (us; "
                          "'-' = message lost)")]
    record("tr_async_latency", "\n".join(lines))
    by = {r.provider: r for r in results}

    # M-VIA kernel-buffers: always delivered; latency tracks the delay
    for d in DELAYS:
        assert by["mvia"].point(d).extra["delivered"]
    assert by["mvia"].point(400.0).latency_us > 400.0

    # BVIA drops once the message truly beats the descriptor
    assert not by["bvia"].point(400.0).extra["delivered"]

    # cLAN NAK/retry: delivered, at a retry-backoff premium
    late = by["clan"].point(400.0)
    assert late.extra["delivered"]
    assert late.extra["retransmissions"] >= 1
    assert late.latency_us > 400.0
