"""Benchmark-suite plumbing.

Every bench function regenerates one of the paper's tables/figures:
it runs the full simulated sweep under pytest-benchmark (timing the
reproduction itself), asserts the paper's qualitative shape, and writes
the series to ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can be
cross-checked against fresh numbers.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

PROVIDERS = ("mvia", "bvia", "clan")


@pytest.fixture
def record():
    """Write a rendered table to benchmarks/out/<name>.txt (and echo)."""

    def _record(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run a sweep exactly once under the benchmark timer.

    The interesting cost is the simulation itself; repeated rounds
    would re-measure identical deterministic work.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
