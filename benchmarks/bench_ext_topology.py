"""X9 — placement on a two-tier fabric (the §3.1 scalability question
at cluster scale).

One leaf/spine cluster, two placements of the same 4-client workload:
clients co-located with the server's leaf vs clients across the spine.
The shared inter-switch link prices placement — the operational
consequence of the latencies VIBe measures.
"""

from repro.providers import Testbed
from repro.via import Descriptor
from repro.vibe.metrics import BenchResult, Measurement


def _workload(tb, client_nodes, server_node, transactions=10,
              reply_size=4096):
    done = {}

    def server():
        h = tb.open(server_node, "server")
        sessions = []
        for i, _c in enumerate(client_nodes):
            vi = yield from h.create_vi()
            req_buf = h.alloc(64)
            rep_buf = h.alloc(reply_size)
            req_mh = yield from h.register_mem(req_buf)
            rep_mh = yield from h.register_mem(rep_buf)
            req_segs = [h.segment(req_buf, req_mh, 0, 16)]
            rep_segs = [h.segment(rep_buf, rep_mh, 0, reply_size)]
            for _ in range(transactions):
                yield from h.post_recv(vi, Descriptor.recv(req_segs))
            req = yield from h.connect_wait(800 + i)
            yield from h.accept(req, vi)
            sessions.append((vi, rep_segs))

        def serve(vi, rep_segs):
            for _ in range(transactions):
                yield from h.recv_wait(vi)
                yield from h.post_send(vi, Descriptor.send(rep_segs))
                yield from h.send_wait(vi)

        procs = [tb.spawn(serve(vi, segs), "serve") for vi, segs in sessions]
        for p in procs:
            yield p
        done["t"] = tb.now

    def client(node, i):
        h = tb.open(node, f"client{i}")
        vi = yield from h.create_vi()
        req_buf = h.alloc(64)
        rep_buf = h.alloc(reply_size)
        req_mh = yield from h.register_mem(req_buf)
        rep_mh = yield from h.register_mem(rep_buf)
        req_segs = [h.segment(req_buf, req_mh, 0, 16)]
        rep_segs = [h.segment(rep_buf, rep_mh, 0, reply_size)]
        yield from h.connect(vi, server_node, 800 + i)
        for _ in range(transactions):
            yield from h.post_recv(vi, Descriptor.recv(rep_segs))
            yield from h.post_send(vi, Descriptor.send(req_segs))
            yield from h.send_wait(vi)
            yield from h.recv_wait(vi)

    procs = [tb.spawn(server(), "server")]
    for i, node in enumerate(client_nodes):
        procs.append(tb.spawn(client(node, i), f"client{i}"))
    for p in procs:
        tb.run(p)
    total = len(client_nodes) * transactions
    return total / (done["t"] / 1e6)


GROUPS = (("srv", "c0", "c1", "c2", "c3"),
          ("d0", "d1", "d2", "d3", "spare"))


def test_placement_prices_the_spine(run_once, record):
    def sweep():
        local_tb = Testbed("clan", leaf_groups=GROUPS)
        local = _workload(local_tb, ["c0", "c1", "c2", "c3"], "srv")
        remote_tb = Testbed("clan", leaf_groups=GROUPS)
        remote = _workload(remote_tb, ["d0", "d1", "d2", "d3"], "srv")
        return local, remote

    local, remote = run_once(sweep)
    result = BenchResult("topology_placement", "clan", [
        Measurement(param="same-leaf", tps=local),
        Measurement(param="cross-spine", tps=remote),
    ])
    record("ext_topology", result.table())
    # crossing the spine costs real throughput (two extra serialisations
    # per direction on the shared inter-switch links)
    assert remote < local * 0.85
    assert local > 0 and remote > 0
