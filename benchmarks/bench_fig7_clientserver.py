"""E9 — Fig. 7: client/server transaction benchmark, request sizes
16 B and 256 B, reply size swept."""

from repro.vibe import client_server, render_figure

from conftest import PROVIDERS


def test_fig7_request16(run_once, record):
    results = run_once(lambda: [client_server(p, 16, transactions=20)
                                for p in PROVIDERS])
    record("fig7_clientserver_req16",
           render_figure(results, "tps",
                         "Fig. 7: client/server, request=16 B "
                         "(transactions/s)"))
    by = {r.provider: r for r in results}
    # "cLAN implementation outperforms BVIA and M-VIA"
    for reply in (16, 1024, 4096):
        assert by["clan"].point(reply).tps \
            > max(by["mvia"].point(reply).tps, by["bvia"].point(reply).tps)
    # cLAN small-reply rate is in the paper's ~50-60k band
    assert 40_000 < by["clan"].point(16).tps < 70_000
    # "M-VIA outperforms BVIA for short ... but is outperformed by BVIA
    # for mid-size messages"
    assert by["mvia"].point(16).tps > by["bvia"].point(16).tps
    assert by["bvia"].point(4096).tps > by["mvia"].point(4096).tps


def test_fig7_request256(run_once, record):
    results = run_once(lambda: [client_server(p, 256, transactions=20)
                                for p in PROVIDERS])
    record("fig7_clientserver_req256",
           render_figure(results, "tps",
                         "Fig. 7: client/server, request=256 B "
                         "(transactions/s)"))
    by = {r.provider: r for r in results}
    for reply in (16, 1024):
        assert by["clan"].point(reply).tps \
            > max(by["mvia"].point(reply).tps, by["bvia"].point(reply).tps)


def test_fig7_bigger_requests_cost_tps(run_once, record):
    def sweep():
        return {req: client_server("clan", req, [1024], transactions=16)
                for req in (16, 256)}

    results = run_once(sweep)
    assert results[256].point(1024).tps < results[16].point(1024).tps
