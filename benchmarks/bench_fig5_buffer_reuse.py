"""E6 — Fig. 5: latency and bandwidth vs send/receive buffer reuse
(Berkeley VIA, with M-VIA / cLAN as flat controls)."""

from repro.vibe import render_figure, reuse_bandwidth, reuse_latency


def test_fig5_latency(run_once, record):
    results = run_once(lambda: reuse_latency("bvia", iters=40))
    record("fig5_latency_reuse",
           render_figure(results, "latency_us",
                         "Fig. 5: BVIA one-way latency vs buffer reuse (us)"))
    by = {r.params["reuse"]: r for r in results}
    for size in (4, 4096, 28672):
        lats = [by[f].point(size).latency_us for f in (1.0, 0.75, 0.5, 0.25, 0.0)]
        # monotone degradation as reuse drops
        for a, b in zip(lats, lats[1:]):
            assert b >= a - 1e-9
        assert lats[-1] > lats[0]
    # "more severe for large messages"
    delta_small = by[0.0].point(4).latency_us - by[1.0].point(4).latency_us
    delta_big = by[0.0].point(28672).latency_us \
        - by[1.0].point(28672).latency_us
    assert delta_big > 2 * delta_small


def test_fig5_bandwidth(run_once, record):
    results = run_once(
        lambda: reuse_bandwidth("bvia", reuse_levels=(1.0, 0.5, 0.0),
                                count=100)
    )
    record("fig5_bandwidth_reuse",
           render_figure(results, "bandwidth_mbs",
                         "Fig. 5: BVIA bandwidth vs buffer reuse (MB/s)"))
    by = {r.params["reuse"]: r for r in results}
    # "the percentage of buffer reuse also has a significant effect on
    # the bandwidth"
    for size in (4096, 28672):
        assert by[0.0].point(size).bandwidth_mbs \
            < by[1.0].point(size).bandwidth_mbs


def test_fig5_controls_flat(run_once, record):
    def sweep():
        return {p: reuse_latency(p, sizes=[4096, 28672],
                                 reuse_levels=(1.0, 0.0), iters=32)
                for p in ("mvia", "clan")}

    controls = run_once(sweep)
    for p, results in controls.items():
        l100 = {pt.param: pt.latency_us for pt in results[0].points}
        l0 = {pt.param: pt.latency_us for pt in results[1].points}
        for size in (4096, 28672):
            # "results for M-VIA and cLAN do not change significantly"
            assert abs(l0[size] - l100[size]) < 1.0, (p, size)
