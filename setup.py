from setuptools import setup

# Metadata lives in pyproject.toml; this shim exists so legacy editable
# installs work on toolchains without the `wheel` package.
setup()
