"""Cluster topologies: how N nodes and their switches are wired.

A :class:`Topology` is a pure description — node names split into
server and client roles plus the switch layout — that
:func:`build_testbed` turns into a live
:class:`~repro.providers.registry.Testbed`:

* ``star``: every node on one switch (the flat :class:`Fabric`).
  Contention appears at the server's switch output port.
* ``dumbbell``: servers on one leaf switch, clients on the other,
  joined through the spine by line-rate inter-switch links — the
  classic shared-bottleneck shape.
* ``fattree``: a two-level leaf/spine fabric with nodes spread
  round-robin over several leaves and full-bisection uplinks
  (``nodes_per_leaf`` x line rate), so only the node ports contend.

Store-and-forward fabrics with more than two nodes can tail-drop at a
contended output port, so :func:`build_testbed` relies on the
:class:`Testbed` default that arms the providers' loss-recovery
machinery for such topologies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..providers.registry import Testbed, get_spec

__all__ = ["Topology", "TOPOLOGY_KINDS", "make_topology", "build_testbed",
           "shard_groups"]

TOPOLOGY_KINDS = ("star", "dumbbell", "fattree")

#: leaves in a fat-tree: enough to spread load, few enough that small
#: clusters keep >= 2 nodes per leaf
_FATTREE_LEAVES = 4


@dataclass(frozen=True)
class Topology:
    """An N-node cluster layout (pure data, picklable)."""

    kind: str
    servers: tuple[str, ...]
    clients: tuple[str, ...]
    #: one tuple of node names per leaf switch; None = flat single switch
    leaf_groups: tuple[tuple[str, ...], ...] | None = None
    #: leaf<->spine capacity as a multiple of the line rate; None = 1x
    uplink_factor: float | None = None

    @property
    def nodes(self) -> tuple[str, ...]:
        return self.servers + self.clients

    @property
    def n_nodes(self) -> int:
        return len(self.servers) + len(self.clients)


def make_topology(kind: str, nodes: int, servers: int = 1) -> Topology:
    """Build the named topology over ``nodes`` total nodes.

    The first ``servers`` nodes are servers (``s0``, ``s1``, ...), the
    rest are client nodes (``c0``, ``c1``, ...).
    """
    if kind not in TOPOLOGY_KINDS:
        raise ValueError(
            f"unknown topology {kind!r}; known: {TOPOLOGY_KINDS}")
    if servers < 1:
        raise ValueError("need at least one server node")
    if nodes < servers + 1:
        raise ValueError(
            f"need at least {servers + 1} nodes for {servers} server(s) "
            "plus one client node")
    server_names = tuple(f"s{i}" for i in range(servers))
    client_names = tuple(f"c{i}" for i in range(nodes - servers))

    if kind == "star":
        return Topology(kind, server_names, client_names)

    if kind == "dumbbell":
        # servers on one leaf, clients on the other; the line-rate
        # inter-switch path is the shared bottleneck
        return Topology(kind, server_names, client_names,
                        leaf_groups=(server_names, client_names),
                        uplink_factor=1.0)

    # fattree: round-robin all nodes over the leaves, full bisection
    leaves = min(_FATTREE_LEAVES, nodes // 2)
    if leaves < 2:
        leaves = 2
    groups: list[list[str]] = [[] for _ in range(leaves)]
    for i, name in enumerate(server_names + client_names):
        groups[i % leaves].append(name)
    per_leaf = max(len(g) for g in groups)
    return Topology(kind, server_names, client_names,
                    leaf_groups=tuple(tuple(g) for g in groups),
                    uplink_factor=float(per_leaf))


def shard_groups(topo: Topology,
                 shards: int) -> tuple[tuple[str, ...], ...]:
    """Deterministic node-to-shard assignment (``repro.shard``).

    A pure function of the topology and the shard count — no RNG, no
    hashing — so every worker (and a re-run on another machine) derives
    the identical partition:

    * flat (star): node ``i`` in ``topo.nodes`` order goes to shard
      ``i % shards`` — round-robin, every cut is a node uplink.
    * tiered (dumbbell/fattree): leaf ``li`` goes to shard
      ``li % shards``, keeping each leaf switch whole so intra-leaf
      traffic never crosses a cut and the only boundary channels are
      leaf<->spine uplinks.

    Some groups may be empty (more shards than leaves); an empty shard
    simply idles at every horizon.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    groups: list[list[str]] = [[] for _ in range(shards)]
    if topo.leaf_groups is None:
        for i, name in enumerate(topo.nodes):
            groups[i % shards].append(name)
    else:
        for li, leaf in enumerate(topo.leaf_groups):
            groups[li % shards].extend(leaf)
    return tuple(tuple(g) for g in groups)


def build_testbed(provider: str, topo: Topology, seed: int = 0,
                  check: bool = False, faults=None,
                  fidelity: str = "packet") -> Testbed:
    """Stand up a live testbed wired as ``topo``.

    Uses the warm-start-aware :meth:`Testbed.create`, so campaign cells
    sharing a topology restore one construction checkpoint instead of
    re-wiring the fabric per cell when warm start is enabled.
    """
    if topo.leaf_groups is None:
        return Testbed.create(provider, node_names=topo.nodes, seed=seed,
                              check=check, faults=faults, fidelity=fidelity)
    spec = get_spec(provider)
    uplink_bw = spec.network.bandwidth * (topo.uplink_factor or 1.0)
    return Testbed.create(provider, seed=seed, leaf_groups=topo.leaf_groups,
                          uplink_bandwidth=uplink_bw, check=check,
                          faults=faults, fidelity=fidelity)
