"""Capacity sweeps: drive a cluster across offered loads, find the knee.

One *point* is a full simulation: a topology stood up fresh, servers
and clients spawned, a fixed number of requests pushed through at one
offered load, and the latency distribution plus goodput extracted.
A *sweep* runs one point per (provider, rate) cell, fanned out through
the suite's parallel executor — every point is an independent
simulation with a :func:`~repro.vibe.executor.task_seed`-derived seed,
so the report is byte-identical for any ``--jobs`` value.

The saturation knee is the largest offered load a provider still
*delivers*: the last point whose goodput stays within
``_KNEE_EFFICIENCY`` of the offered rate.  Beyond it goodput plateaus
while open-loop latency grows without bound — the curve the ROADMAP's
"heavy traffic" question needs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

from ..obs.metrics import Histogram
from ..vibe.executor import parallel_map, task_seed
from .policy import DEFAULT_DEADLINE_US, RetryPolicy, ServerPolicy
from .server import ClusterServer, make_service
from .topology import build_testbed, make_topology
from .workload import LATENCY_BUCKETS, ClusterClient, StartGate

__all__ = ["ClusterConfig", "ClusterReport", "RATE_GRID",
           "QUICK_RATE_GRID", "find_knee", "slo_knee", "run_cluster",
           "run_cluster_once", "cell_key", "load_cell", "store_cell",
           "resolve_rates", "sweep_cells", "assemble_report"]

#: default total offered loads (requests/s) for a capacity sweep —
#: geometric, wide enough to cross every provider's knee
RATE_GRID = (2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0)
QUICK_RATE_GRID = (2_000.0, 8_000.0, 32_000.0)

#: a point is "delivering" while goodput >= this fraction of offered
_KNEE_EFFICIENCY = 0.9


@dataclass(frozen=True)
class ClusterConfig:
    """Everything one cluster run needs besides provider and rate."""

    topology: str = "star"
    nodes: int = 4
    servers: int = 1
    clients: int = 8          # client processes, round-robin over nodes
    requests: int = 16        # per client
    req_size: int = 128
    resp_size: int = 1024
    window: int = 4
    arrival: str = "poisson"
    burst: int = 8
    service: str = "fixed:20"
    mode: str = "open"        # "open" (rate-driven) | "closed"
    think_us: float = 0.0
    seed: int = 0
    deadline_us: float = DEFAULT_DEADLINE_US
    fidelity: str = "packet"  # "packet" | "auto" | "flow"
    # -- overload resilience (PR 9) ----------------------------------
    retry: str = "off"        # RetryPolicy spec: "off" | "on" | "k=v,..."
    server_policy: str = "none"   # ServerPolicy spec: "none" | "k=v,..."
    tenants: int = 1          # clients round-robin over tenants
    slo_p99_us: float = 10_000.0  # per-tenant p99 latency target
    slo_goodput: float = 0.9      # per-tenant goodput floor (fraction)


def _build_actors(cfg: ClusterConfig, topo, tb,
                  rate_rps: float | None, hists, gate_for,
                  offsets_for=None):
    """Construct every server and client object, identically for any
    caller.

    Shared by :func:`run_cluster_once` and the sharded host
    (:mod:`repro.shard.sync`): a shard's replica construction must be
    argument-for-argument identical to the single-heap one for the
    partitioned run to stay byte-identical.  ``gate_for(cid)`` supplies
    each client's gate handle; ``hists`` is one latency sink per tenant
    (client ``i`` observes into ``hists[i % tenants]``).
    ``offsets_for(cid)`` may supply a crafted arrival schedule (the
    overload chaos cells).  Nothing here touches the simulator — only
    spawning does.
    """
    service = make_service(cfg.service)
    retry = RetryPolicy.parse(cfg.retry)
    policy = ServerPolicy.parse(cfg.server_policy)
    nten = max(1, cfg.tenants)
    open_loop = cfg.mode == "open" and rate_rps is not None
    interval_us = (cfg.clients * 1e6 / rate_rps) if open_loop else None
    per_server = [0] * cfg.servers
    for i in range(cfg.clients):
        per_server[i % cfg.servers] += 1
    servers = [
        ClusterServer(
            tb, topo.servers[s], per_server[s],
            per_server[s] * cfg.requests,
            discriminator=4000 + s,
            window=cfg.window, service=service,
            req_size=cfg.req_size, resp_size=cfg.resp_size,
            seed=task_seed(cfg.seed, "server", s),
            deadline_us=cfg.deadline_us,
            policy=policy, deadline_aware=retry is not None,
        )
        for s in range(cfg.servers)
    ]
    clients = [
        ClusterClient(
            tb, topo.clients[i % len(topo.clients)], i,
            topo.servers[i % cfg.servers],
            n_requests=cfg.requests, interval_us=interval_us,
            arrival=cfg.arrival, burst=cfg.burst,
            req_size=cfg.req_size, resp_size=cfg.resp_size,
            window=cfg.window, think_us=cfg.think_us,
            discriminator=4000 + (i % cfg.servers),
            seed=task_seed(cfg.seed, "client", i),
            hist=hists[i % nten], deadline_us=cfg.deadline_us,
            gate=gate_for(i), retry=retry, tenant=i % nten,
            offsets=offsets_for(i) if offsets_for is not None else None,
        )
        for i in range(cfg.clients)
    ]
    return servers, clients


def _tenant_rollup(cfg: ClusterConfig, clients, hists) -> list[dict]:
    """Per-tenant raw aggregates from a finished single-heap run —
    the same shape the sharded merge assembles from shard partials."""
    out = []
    for t in range(max(1, cfg.tenants)):
        tcl = [c for c in clients if c.tenant == t]
        out.append({
            "hist": hists[t],
            "completed": sum(c.stats["completed"] for c in tcl),
            "failed": sum(c.stats["failed"] for c in tcl),
            "retried": sum(c.stats["retried"] for c in tcl),
            "abandoned": sum(c.stats["abandoned"] for c in tcl),
            "deadline_exceeded": sum(c.stats["deadline_exceeded"]
                                     for c in tcl),
            "shed_naks": sum(c.stats["shed_naks"] for c in tcl),
            "expected": sum(c.n_requests for c in tcl),
            "finishes": [x for c in tcl for x in c.finish_times],
            "sched": [x for c in tcl for x in c.schedule],
        })
    return out


def _server_rollup(servers) -> dict:
    """Summed server-side stats (order-insensitive)."""
    keys = ("served", "errors", "shed_queue", "shed_deadline",
            "naks_sent", "conns_rejected")
    return {k: sum(s.stats[k] for s in servers) for k in keys}


def _window_rate(count: int, stamps: list) -> float:
    """Events per second over the interior [first, last] stamp window."""
    span = (max(stamps) - min(stamps)) if len(stamps) > 1 else 0.0
    return (count - 1) * 1e6 / span if span > 0 else 0.0


def _tenant_point(cfg: ClusterConfig, open_loop: bool, ten: dict) -> dict:
    """One tenant's slice of a point, with its SLO verdict."""
    hist = ten["hist"]
    goodput = _window_rate(ten["completed"], ten["finishes"])
    realized = _window_rate(len(ten["sched"]), ten["sched"])
    p99 = hist.quantile(0.99)
    expected = ten["expected"]
    p99_ok = (cfg.slo_p99_us <= 0
              or (hist.count > 0 and p99 <= cfg.slo_p99_us))
    if open_loop and realized > 0:
        goodput_ok = goodput >= cfg.slo_goodput * realized
    else:
        goodput_ok = ten["completed"] >= cfg.slo_goodput * expected
    ok = (p99_ok and goodput_ok) if expected else True
    return {
        "completed": ten["completed"],
        "failed": ten["failed"],
        "retried": ten["retried"],
        "abandoned": ten["abandoned"],
        "deadline_exceeded": ten["deadline_exceeded"],
        "shed_naks": ten["shed_naks"],
        "expected": expected,
        "goodput_rps": round(goodput, 3),
        "realized_rps": round(realized, 3) if open_loop else None,
        "p50_us": round(hist.quantile(0.50), 3),
        "p99_us": round(p99, 3),
        "mean_us": round(hist.total / hist.count, 3) if hist.count else 0.0,
        "slo": {
            "p99_target_us": cfg.slo_p99_us,
            "goodput_floor": cfg.slo_goodput,
            "p99_ok": p99_ok,
            "goodput_ok": goodput_ok,
            "ok": ok,
        },
    }


def _assemble_point(provider: str, cfg: ClusterConfig,
                    rate_rps: float | None, *, tenants, server_stats,
                    ports, retransmissions, recoveries,
                    violations) -> dict:
    """Fold raw run aggregates into the canonical point dict.

    ``tenants`` is a list of per-tenant aggregate dicts (see
    :func:`_tenant_rollup`); every input is order-insensitive (sums,
    min/max, finished histograms), so the single-heap run and the
    sharded merge produce byte-identical points from equal aggregates.
    """
    open_loop = cfg.mode == "open" and rate_rps is not None
    hist = tenants[0]["hist"]
    for ten in tenants[1:]:
        hist = hist.merge(ten["hist"])
    completed = sum(t["completed"] for t in tenants)
    finishes = [x for t in tenants for x in t["finishes"]]
    sched = [x for t in tenants for x in t["sched"]]
    # goodput over the aggregate completion window (first to last
    # response anywhere in the cluster): interior by construction, so
    # the warmup ramp and one slow client's tail don't bias the rate
    elapsed = (max(finishes) - min(finishes)) if len(finishes) > 1 else 0.0
    goodput = (completed - 1) * 1e6 / elapsed if elapsed > 0 else 0.0
    # the nominal rate overstates what the sampled Poisson schedules
    # actually offered over the measured window; the knee compares
    # goodput against this realized rate instead
    realized = _window_rate(len(sched), sched)
    tenant_points = [_tenant_point(cfg, open_loop, t) for t in tenants]
    return {
        "provider": provider,
        "offered_rps": round(rate_rps, 3) if open_loop else None,
        "realized_rps": round(realized, 3) if open_loop else None,
        "goodput_rps": round(goodput, 3),
        "p50_us": round(hist.quantile(0.50), 3),
        "p99_us": round(hist.quantile(0.99), 3),
        "p999_us": round(hist.quantile(0.999), 3),
        "mean_us": round(hist.total / hist.count, 3) if hist.count else 0.0,
        "completed": completed,
        "failed": sum(t["failed"] for t in tenants),
        "served": server_stats["served"],
        "elapsed_us": round(elapsed, 3),
        "port_drops": ports["drops"],
        "port_contended": ports["contended"],
        "port_backpressured": ports["backpressured"],
        "retransmissions": retransmissions,
        "recoveries": recoveries,
        "violations": violations,
        # -- overload accounting -------------------------------------
        "retried": sum(t["retried"] for t in tenants),
        "abandoned": sum(t["abandoned"] for t in tenants),
        "deadline_exceeded": sum(t["deadline_exceeded"] for t in tenants),
        "shed_queue": server_stats["shed_queue"],
        "shed_deadline": server_stats["shed_deadline"],
        "naks_sent": server_stats["naks_sent"],
        "conns_rejected": server_stats["conns_rejected"],
        "slo_ok": all(t["slo"]["ok"] for t in tenant_points),
        "tenants": tenant_points,
    }


def run_cluster_once(provider: str, cfg: ClusterConfig,
                     rate_rps: float | None = None,
                     check: bool = False, fault_plan=None,
                     harvest=None) -> dict:
    """Run one cluster simulation; returns a deterministic point dict.

    ``rate_rps`` is the *total* offered load across all clients (open
    loop); ``None`` or ``mode="closed"`` runs closed-loop.  Passing a
    :class:`~repro.obs.metrics.MetricsRegistry` as ``harvest`` fills it
    from the finished testbed (the sharded equivalence suite compares
    it against the merged per-shard harvest).
    """
    topo = make_topology(cfg.topology, cfg.nodes, cfg.servers)
    tb = build_testbed(provider, topo, seed=cfg.seed, check=check,
                       faults=fault_plan, fidelity=cfg.fidelity)
    hists = [Histogram("latency_us", LATENCY_BUCKETS)
             for _ in range(max(1, cfg.tenants))]
    # clients only: servers serve reactively and never join the gate
    gate = StartGate(tb.sim, cfg.clients)
    servers, clients = _build_actors(cfg, topo, tb, rate_rps, hists,
                                     lambda cid: gate)

    procs = [tb.spawn(s.body(), f"server-{i}") for i, s in enumerate(servers)]
    procs += [tb.spawn(c.body(), f"client-{c.cid}") for c in clients]
    violations: list[str] = []
    try:
        for proc in procs:
            tb.run(proc)
        tb.run()  # drain stray timers (RTO etc.)
        if check:
            tb.checker.check_quiesced(tb)
    except Exception as exc:  # conformance violation or crash
        violations.append(f"{type(exc).__name__}: {exc}")

    if harvest is not None:
        from ..obs.harvest import harvest_into

        harvest_into(harvest, tb)
    providers = list(tb.providers.values())
    return _assemble_point(
        provider, cfg, rate_rps,
        tenants=_tenant_rollup(cfg, clients, hists),
        server_stats=_server_rollup(servers),
        ports=_port_stats(tb),
        retransmissions=sum(p.engine.retransmissions for p in providers),
        recoveries=sum(p.recoveries for p in providers),
        violations=violations,
    )


def _port_stats(tb) -> dict:
    """Sum output-port counters over whatever fabric the testbed has."""
    totals = {"drops": 0, "contended": 0, "backpressured": 0}
    switch = getattr(tb.fabric, "switch", None)
    ports = list(switch._ports.values()) if switch is not None else []
    for leaf in getattr(tb.fabric, "leaves", ()):
        ports.extend(leaf.local_ports.values())
    for port in ports:
        totals["drops"] += port.drops
        totals["contended"] += port.contended
        totals["backpressured"] += port.backpressured
    return totals


def find_knee(points: list[dict]) -> dict:
    """The saturation knee of one provider's sweep.

    Returns ``{"knee_rps": ..., "peak_goodput_rps": ...}``: the largest
    offered load still delivered at >= ``_KNEE_EFFICIENCY`` efficiency,
    and the best goodput seen anywhere (the plateau height).
    """
    peak = max((p["goodput_rps"] for p in points), default=0.0)
    knee = 0.0
    for p in sorted(points, key=lambda p: p["offered_rps"] or 0.0):
        target = p.get("realized_rps") or p["offered_rps"]
        if target and p["goodput_rps"] >= _KNEE_EFFICIENCY * target:
            knee = p["offered_rps"]
    return {"knee_rps": knee, "peak_goodput_rps": peak}


def slo_knee(points: list[dict]) -> dict:
    """SLO-capacity planning: the largest offered load at which *every*
    tenant still meets its SLO verdict (p99 target + goodput floor) —
    usually left of the raw saturation knee, because tail latency
    degrades before aggregate goodput does."""
    knee = 0.0
    for p in sorted(points, key=lambda p: p["offered_rps"] or 0.0):
        if p["offered_rps"] and p.get("slo_ok"):
            knee = p["offered_rps"]
    return {"slo_knee_rps": knee}


def _point_worker(provider: str, cfg: ClusterConfig,
                  rate: float | None, check: bool,
                  shards: int = 1, shard_workers: str = "process") -> tuple:
    # each cell gets its own derived seed so points are independent
    # draws, yet reproducible for any execution order
    cell_cfg = replace(cfg, seed=task_seed(cfg.seed, provider, rate))
    if shards > 1:
        from ..shard import run_cluster_once_sharded

        return run_cluster_once_sharded(provider, cell_cfg, rate,
                                        shards=shards,
                                        workers=shard_workers, check=check)
    return run_cluster_once(provider, cell_cfg, rate, check=check), None


@dataclass
class ClusterReport:
    """A full capacity sweep: per-provider curves plus their knees."""

    config: dict
    providers: tuple
    rates: tuple
    results: dict = field(default_factory=dict)  # provider -> curve dict
    #: per-cell shard sync stats when the sweep ran sharded; excluded
    #: from to_json so a sharded report stays byte-identical to the
    #: single-heap one
    shard_stats: dict | None = None

    @property
    def ok(self) -> bool:
        return bool(self.results) and not any(
            pt["violations"]
            for curve in self.results.values() for pt in curve["points"])

    def summary(self) -> str:
        cfg = self.config
        lines = [
            f"cluster: {cfg['topology']} x{cfg['nodes']} nodes, "
            f"{cfg['clients']} clients x {cfg['requests']} reqs, "
            f"req {cfg['req_size']} B -> resp {cfg['resp_size']} B, "
            f"service {cfg['service']}",
        ]
        overload = (cfg.get("retry", "off") != "off"
                    or cfg.get("server_policy", "none") != "none")
        tenants = cfg.get("tenants", 1)
        for prov in self.providers:
            curve = self.results[prov]
            knee_line = (f"  {prov}: knee {curve['knee_rps']:.0f} rps, "
                         f"peak goodput {curve['peak_goodput_rps']:.0f} rps")
            if overload or tenants > 1:
                knee_line += f", slo knee {curve['slo_knee_rps']:.0f} rps"
            lines.append(knee_line)
            header = (f"    {'offered':>9} {'goodput':>9} {'p50_us':>9} "
                      f"{'p99_us':>10} {'p999_us':>10} {'drops':>6} "
                      f"{'retx':>5}")
            if overload:
                header += f" {'retry':>6} {'shed':>6} {'ddl':>5}"
            lines.append(header)
            for pt in curve["points"]:
                offered = (f"{pt['offered_rps']:.0f}"
                           if pt["offered_rps"] else "closed")
                line = (
                    f"    {offered:>9} {pt['goodput_rps']:>9.0f} "
                    f"{pt['p50_us']:>9.1f} {pt['p99_us']:>10.1f} "
                    f"{pt['p999_us']:>10.1f} {pt['port_drops']:>6} "
                    f"{pt['retransmissions']:>5}")
                if overload:
                    shed = pt["shed_queue"] + pt["shed_deadline"]
                    line += (f" {pt['retried']:>6} {shed:>6} "
                             f"{pt['deadline_exceeded']:>5}")
                lines.append(line)
                if tenants > 1:
                    verdicts = []
                    for t, tp in enumerate(pt["tenants"]):
                        slo = tp["slo"]
                        if slo["ok"]:
                            verdicts.append(f"t{t} ok")
                        else:
                            why = []
                            if not slo["p99_ok"]:
                                why.append("p99")
                            if not slo["goodput_ok"]:
                                why.append("goodput")
                            verdicts.append(f"t{t} FAIL({','.join(why)})")
                    lines.append("      slo: " + ", ".join(verdicts))
        for prov in self.providers:
            for pt in self.results[prov]["points"]:
                for v in pt["violations"]:
                    lines.append(f"  {prov}: {v}")
        if self.shard_stats:
            for cell, stats in sorted(self.shard_stats.items()):
                lines.append(
                    f"  shards[{cell}]: {stats['shards']} shards, "
                    f"{stats['msgs_exchanged']} msgs, "
                    f"{stats['sync_stalls']} stalls, "
                    f"{stats['horizon_advances']} advances")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "config": self.config,
                "providers": list(self.providers),
                "rates": list(self.rates),
                "ok": self.ok,
                "results": self.results,
            },
            indent=2,
            sort_keys=True,
        )


def cell_key(provider: str, cfg: ClusterConfig, rate: float | None,
             check: bool) -> str:
    """Content-address one sweep cell: the *single* cell identity.

    A pure function of (code version, provider, config, rate, check) —
    identical across processes, resumed campaigns, and the experiment
    service (:mod:`repro.serve`), changed by any input that could
    change the point's bytes.  Campaign checkpoints
    (``--checkpoint-dir``) and the service's content-addressed result
    cache both persist cells as ``cell-<key>.json`` through
    :func:`load_cell`/:func:`store_cell`, so a cell computed by either
    consumer is a cache hit for the other.
    """
    from ..snap import snapshot_key

    canon = repr((provider, sorted(asdict(cfg).items()), rate, check))
    return snapshot_key(canon, cfg.seed)


def load_cell(checkpoint_dir: str, key: str) -> dict | None:
    """Read one checkpointed cell point, or None if absent/torn."""
    import os

    path = os.path.join(checkpoint_dir, f"cell-{key}.json")
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)["point"]
    except (OSError, ValueError, KeyError):
        return None


def store_cell(checkpoint_dir: str, key: str, point: dict) -> None:
    """Atomically persist one finished cell point under its key."""
    import os

    os.makedirs(checkpoint_dir, exist_ok=True)
    path = os.path.join(checkpoint_dir, f"cell-{key}.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump({"key": key, "point": point}, fh, sort_keys=True)
    os.replace(tmp, path)  # atomic: a killed campaign leaves no torn cells


def run_cluster(providers: tuple, cfg: ClusterConfig,
                rates: tuple | None = None, jobs: int = 1,
                check: bool = False, warm_start: bool = False,
                checkpoint_dir: str | None = None, shards: int = 1,
                shard_workers: str = "process") -> ClusterReport:
    """Sweep every (provider, rate) cell; never raises, inspect ``ok``.

    ``warm_start`` restores each cell's testbed from a shared
    construction checkpoint (every cell takes the snapshot path, so the
    report is byte-identical to a cold sweep at any ``jobs``).

    ``checkpoint_dir`` makes the campaign resumable: each finished cell
    is written to ``cell-<content-hash>.json`` keyed by (code version,
    provider, config, rate), and a re-run with the same directory skips
    cells already on disk — an interrupted campaign continues where it
    stopped and still emits the byte-identical final report.

    ``shards > 1`` partitions each cell's simulation across shard
    hosts (:mod:`repro.shard`); the report stays byte-identical to
    ``shards=1`` for any shard count, and the cell checkpoint keys are
    deliberately shard-count-independent for the same reason.
    """
    if shards > 1 and warm_start:
        raise ValueError("warm_start is not supported with shards > 1 "
                         "(a restored construction checkpoint would "
                         "clobber the per-shard replicas)")
    rates = resolve_rates(cfg, rates)
    cells = [(p, cfg, r, check, shards, shard_workers)
             for p, cfg, r, check in sweep_cells(providers, cfg, rates,
                                                 check)]
    done: dict[int, tuple] = {}
    todo = []
    if checkpoint_dir is not None:
        for i, cell in enumerate(cells):
            point = load_cell(checkpoint_dir, cell_key(*cell[:4]))
            if point is not None:
                done[i] = (point, None)
            else:
                todo.append((i, cell))
    else:
        todo = list(enumerate(cells))

    if todo:
        from ..vibe.executor import _enable_warm_start

        init = _enable_warm_start if warm_start else None
        try:
            fresh = parallel_map(_point_worker, [c for _, c in todo], jobs,
                                 initializer=init)
        finally:
            if warm_start:
                from ..snap import warmcache

                warmcache.enable_warm_start(False)
                warmcache.clear_pool()
        for (i, cell), result in zip(todo, fresh):
            done[i] = result
            if checkpoint_dir is not None:
                store_cell(checkpoint_dir, cell_key(*cell[:4]), result[0])

    points = [done[i][0] for i in range(len(cells))]
    report = assemble_report(providers, cfg, rates, points)
    if shards > 1:
        report.shard_stats = {}
        for i, cell in enumerate(cells):
            stats = done[i][1]
            if stats is None:
                continue  # cell restored from a (shard-agnostic) checkpoint
            rate_label = "closed" if cell[2] is None else f"{cell[2]:g}"
            report.shard_stats[f"{cell[0]}@{rate_label}"] = stats
    return report


def resolve_rates(cfg: ClusterConfig, rates: tuple | None) -> tuple:
    """Normalise a sweep's rate grid exactly as :func:`run_cluster` does:
    closed-loop runs collapse to one rate-less cell, open-loop sweeps
    default to :data:`RATE_GRID`."""
    if cfg.mode == "closed":
        return (None,)
    if rates is None:
        return RATE_GRID
    return tuple(rates)


def sweep_cells(providers: tuple, cfg: ClusterConfig, rates: tuple,
                check: bool = False) -> list[tuple]:
    """The sweep's ``(provider, cfg, rate, check)`` cells in canonical
    order — the order :func:`assemble_report` expects points back in."""
    return [(p, cfg, r, check) for p in providers for r in rates]


def assemble_report(providers: tuple, cfg: ClusterConfig, rates: tuple,
                    points: list[dict]) -> ClusterReport:
    """Fold finished points (in :func:`sweep_cells` order) into a
    :class:`ClusterReport`.

    Shared by :func:`run_cluster` and the experiment service
    (:mod:`repro.serve`): because assembly is a pure function of the
    points, a served sweep's ``to_json`` is byte-identical to the
    direct CLI's for the same cells, however they were scheduled or
    cached.
    """
    report = ClusterReport(config=asdict(cfg), providers=tuple(providers),
                           rates=tuple(r for r in rates if r is not None))
    for i, prov in enumerate(providers):
        curve_pts = points[i * len(rates):(i + 1) * len(rates)]
        curve = {"points": curve_pts}
        curve.update(find_knee(curve_pts))
        curve.update(slo_knee(curve_pts))
        report.results[prov] = curve
    return report
