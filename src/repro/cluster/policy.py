"""Overload policies: client retries and server admission control.

Production serving stacks survive saturation because both sides of the
connection give ground deliberately: clients retry NAK'd or erred
requests with capped exponential backoff (never hot-looping a melting
server), and servers bound their pending work, shedding the overflow
*explicitly* so clients back off instead of hanging.  This module holds
the two policy records and the tiny wire conventions they share.

Everything is deterministic: backoff jitter draws from the client's own
seeded RNG stream, shedding is a pure function of queue state, and the
NAK markers are static bytes — so a cluster report with retries and
shedding enabled is byte-identical for any ``--jobs`` and any
``--shards N``.

Wire conventions (only active when a :class:`RetryPolicy` is set):

* requests carry the issuing request's *absolute deadline* (simulated
  microseconds, 8-byte big-endian integer) in their first bytes, so a
  server can shed work that is already dead on arrival;
* responses carry a one-byte marker: ``RESP_OK`` for a served request,
  ``RESP_SHED`` when admission control dropped it (retryable), and
  ``RESP_EXPIRED`` when its propagated deadline had already passed
  (never retried — the client counts it ``deadline_exceeded`` exactly
  once).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "ServerPolicy", "DEFAULT_DEADLINE_US",
           "DEADLINE_HDR", "NAK_BYTES", "RESP_OK", "RESP_SHED",
           "RESP_EXPIRED"]

#: the one cluster-wide run deadline default (single source of truth;
#: clients and servers take theirs from :class:`ClusterConfig`)
DEFAULT_DEADLINE_US = 30_000_000.0

#: request header: the absolute per-request deadline, us as uint64
DEADLINE_HDR = 8
#: a NAK response is this long on the wire (marker + padding): exactly
#: the minimum response slot, so it always fits the client's posted
#: receive, and small, so shedding is cheap for server and fabric
NAK_BYTES = 8

RESP_OK = 0
RESP_SHED = 1
RESP_EXPIRED = 2


def _parse_kv(spec: str, what: str) -> dict[str, str]:
    out: dict[str, str] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"bad {what} spec {spec!r}: "
                             f"{part!r} is not key=value")
        out[key.strip()] = value.strip()
    return out


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry discipline for NAK'd and erred requests.

    ``backoff_us(attempt, rng)`` is capped exponential with
    symmetric jitter drawn from the caller's seeded stream: attempt 0
    waits ~``base_us``, each further attempt doubles, never exceeding
    ``cap_us``.  ``max_retries`` is the per-request budget; a request
    that exhausts it is counted ``abandoned``.  ``timeout_us`` is the
    per-request deadline measured from the *scheduled* arrival — it is
    propagated to the server in the request header and a response (or
    retry slot) past it counts ``deadline_exceeded``.
    """

    max_retries: int = 3
    base_us: float = 200.0
    cap_us: float = 5_000.0
    jitter: float = 0.5
    timeout_us: float = 50_000.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("retry budget must be >= 0")
        if self.base_us <= 0 or self.cap_us <= 0:
            raise ValueError("backoff times must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.timeout_us <= 0:
            raise ValueError("per-request timeout must be positive")

    def backoff_us(self, attempt: int, rng) -> float:
        """Deterministic wait before retry number ``attempt`` (0-based)."""
        raw = min(self.cap_us, self.base_us * (2.0 ** attempt))
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    @classmethod
    def parse(cls, spec: str) -> "RetryPolicy | None":
        """Parse the CLI spec: ``off`` | ``on`` | ``budget=3,base=200,
        cap=5000,jitter=0.5,timeout=50000`` (any subset of keys)."""
        spec = spec.strip()
        if spec in ("", "off", "none"):
            return None
        if spec == "on":
            return cls()
        kv = _parse_kv(spec, "retry")
        known = {"budget": "max_retries", "base": "base_us",
                 "cap": "cap_us", "jitter": "jitter",
                 "timeout": "timeout_us"}
        kwargs: dict = {}
        for key, value in kv.items():
            if key not in known:
                raise ValueError(f"unknown retry key {key!r}; "
                                 f"known: {sorted(known)}")
            field = known[key]
            kwargs[field] = int(value) if field == "max_retries" \
                else float(value)
        return cls(**kwargs)


@dataclass(frozen=True)
class ServerPolicy:
    """Server-side admission control and load shedding.

    ``queue_depth`` bounds the pending-work queue the dispatch loop
    drains; overflow is shed deterministically.  ``shed_mode`` picks
    what goes first: ``tail`` drops the newest arrivals (classic
    tail-drop), ``deadline`` first NAKs requests whose propagated
    deadline has already passed, then tail-drops any remaining
    overflow.  Independently of depth, a ``deadline``-mode server sheds
    dead-on-arrival requests before charging service time for them.
    ``max_conns`` caps accepted connections; dials past the cap are
    rejected so clients back off instead of parking forever.
    """

    queue_depth: int | None = None
    shed_mode: str = "tail"
    max_conns: int | None = None

    def __post_init__(self) -> None:
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        if self.shed_mode not in ("tail", "deadline"):
            raise ValueError(f"unknown shed mode {self.shed_mode!r}; "
                             "known: tail, deadline")
        if self.max_conns is not None and self.max_conns < 1:
            raise ValueError("connection cap must be >= 1")

    @classmethod
    def parse(cls, spec: str) -> "ServerPolicy | None":
        """Parse the CLI spec: ``none`` | ``depth=64,shed=deadline,
        conns=16`` (any subset of keys)."""
        spec = spec.strip()
        if spec in ("", "off", "none"):
            return None
        kv = _parse_kv(spec, "server-policy")
        kwargs: dict = {}
        for key, value in kv.items():
            if key == "depth":
                kwargs["queue_depth"] = int(value)
            elif key == "shed":
                kwargs["shed_mode"] = value
            elif key == "conns":
                kwargs["max_conns"] = int(value)
            else:
                raise ValueError(f"unknown server-policy key {key!r}; "
                                 "known: depth, shed, conns")
        return cls(**kwargs)
