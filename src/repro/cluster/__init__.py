"""Cluster-scale serving on the simulated VIA stack.

The paper's Category-3 benchmarks stop at one server and one client on
a two-node testbed.  This package grows the same sim/hw/via/providers
stack into an N-node serving cluster:

* :mod:`~repro.cluster.topology` — star, dumbbell and two-level
  fat-tree fabrics with contention-aware output ports,
* :mod:`~repro.cluster.workload` — seeded open-loop (Poisson /
  deterministic / burst) and closed-loop request generators,
* :mod:`~repro.cluster.server` — a CQ-dispatch server event loop
  multiplexing one VI per client with pluggable service-time models,
* :mod:`~repro.cluster.runner` — capacity sweeps that find each
  provider's saturation knee (``vibe cluster``),
* :mod:`~repro.cluster.policy` — client retry and server admission
  policies for the overload-resilience layer (deadline propagation,
  load shedding, per-tenant SLO verdicts).
"""

from .policy import RetryPolicy, ServerPolicy
from .runner import (
    QUICK_RATE_GRID,
    RATE_GRID,
    ClusterConfig,
    ClusterReport,
    assemble_report,
    cell_key,
    find_knee,
    load_cell,
    resolve_rates,
    run_cluster,
    run_cluster_once,
    slo_knee,
    store_cell,
    sweep_cells,
)
from .server import ClusterServer, make_service
from .topology import Topology, build_testbed, make_topology
from .workload import ClusterClient, StartGate, arrival_offsets

__all__ = [
    "QUICK_RATE_GRID",
    "RATE_GRID",
    "ClusterConfig",
    "ClusterReport",
    "ClusterClient",
    "ClusterServer",
    "RetryPolicy",
    "ServerPolicy",
    "StartGate",
    "Topology",
    "arrival_offsets",
    "assemble_report",
    "build_testbed",
    "cell_key",
    "find_knee",
    "load_cell",
    "make_service",
    "make_topology",
    "resolve_rates",
    "run_cluster",
    "run_cluster_once",
    "slo_knee",
    "store_cell",
    "sweep_cells",
]
