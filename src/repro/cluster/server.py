"""The cluster server: one CQ-dispatch event loop, many VIs.

The paper's multi-VI benchmarks (Fig. 6) measure how per-VI cost grows
with endpoint count on an otherwise idle node.  :class:`ClusterServer`
is that experiment under load: one VI per connected client, all
completions funnelled into a single recv CQ, one event loop draining it
— the canonical VIA serving architecture.  Request handling charges a
pluggable service time on the host CPU (the application work), then
posts the response on the same VI.

Service-time models are seeded callables so every run is deterministic;
:func:`make_service` parses the CLI spec format (``fixed:20``,
``exp:50``, ``bytes:0.02``).

With a :class:`~repro.cluster.policy.ServerPolicy` attached the server
runs *admission control*: completions drain into a bounded pending
queue, overflow (and, in ``deadline`` mode, dead-on-arrival work) is
marked shed and answered with a static NAK payload instead of service.
Marked entries keep their place in the queue and are NAK'd when they
reach the head, so every VI still sees exactly one response per request
*in request order* — the client's FIFO matching never skews.  A
``max_conns`` cap rejects surplus dials outright.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable

from ..via.constants import CompletionStatus, Reliability, WaitMode
from ..via.descriptor import Descriptor
from ..via.errors import VipError, VipTimeout
from .policy import (DEADLINE_HDR, DEFAULT_DEADLINE_US, NAK_BYTES,
                     RESP_EXPIRED, RESP_SHED, ServerPolicy)

__all__ = ["ClusterServer", "make_service"]

#: how often the dispatch loop wakes to re-check its deadline when idle
_IDLE_POLL_US = 5_000.0

ServiceModel = Callable[[random.Random, int], float]


def make_service(spec: str) -> ServiceModel:
    """Parse a service-time spec into a ``(rng, request_size) -> us`` model.

    * ``fixed:T``  — constant ``T`` us per request
    * ``exp:M``    — exponential with mean ``M`` us (seeded, deterministic)
    * ``bytes:C``  — ``C`` us per request byte (size-proportional work)
    * ``none``     — zero service time (pure VIPL overhead)
    """
    kind, _, arg = spec.partition(":")
    if kind == "none":
        return lambda rng, size: 0.0
    try:
        value = float(arg)
    except ValueError:
        raise ValueError(f"bad service spec {spec!r}: {arg!r} is not a "
                         "number") from None
    if value < 0:
        raise ValueError(f"bad service spec {spec!r}: negative time")
    if kind == "fixed":
        return lambda rng, size: value
    if kind == "exp":
        return lambda rng, size: rng.expovariate(1.0 / value) if value else 0.0
    if kind == "bytes":
        return lambda rng, size: value * size
    raise ValueError(f"unknown service model {kind!r}; "
                     "expected fixed:T, exp:M, bytes:C or none")


class ClusterServer:
    """A request/response server multiplexing one VI per client.

    Spawn :meth:`body` as a simulation process.  The server accepts
    ``n_clients`` connections on ``discriminator``, pre-posts ``window``
    receives per VI, then dispatches from one shared recv CQ until it
    has served ``total_requests`` requests or the deadline passes —
    whichever comes first, so a partitioned client can never wedge it.

    ``deadline_aware`` says clients prepend their absolute request
    deadline (``DEADLINE_HDR`` bytes, big-endian us) to every payload;
    ``policy`` switches the dispatch loop to the admission-controlled
    variant.
    """

    def __init__(
        self,
        tb,
        node: str,
        n_clients: int,
        total_requests: int,
        *,
        discriminator: int = 4000,
        window: int = 4,
        service: ServiceModel | None = None,
        req_size: int = 128,
        resp_size: int = 1024,
        reliability: Reliability = Reliability.RELIABLE_DELIVERY,
        wait_mode: WaitMode = WaitMode.BLOCK,
        seed: int = 0,
        deadline_us: float | None = None,
        policy: ServerPolicy | None = None,
        deadline_aware: bool = False,
    ) -> None:
        self.tb = tb
        self.node = node
        self.n_clients = n_clients
        self.total_requests = total_requests
        self.discriminator = discriminator
        self.window = window
        self.service = service or make_service("none")
        self.req_size = req_size
        self.resp_size = resp_size
        self.reliability = reliability
        self.wait_mode = wait_mode
        self.rng = random.Random(seed)
        self.deadline_us = (DEFAULT_DEADLINE_US if deadline_us is None
                            else deadline_us)
        self.policy = policy
        self.deadline_aware = deadline_aware
        self.stats = {"accepted": 0, "served": 0, "errors": 0,
                      "shed_queue": 0, "shed_deadline": 0, "naks_sent": 0,
                      "conns_rejected": 0}
        #: absolute completion timestamps, for served-during-outage checks
        self.served_at: list[float] = []

    def _accept_one(self, h, req, state):
        """Bind one conn request to a fresh VI with pre-posted recvs.

        A client that gave up on a parked dial and redialled re-binds
        to a fresh VI (its abandoned one just goes quiet), so a slow
        connection storm can never starve the later arrivals.
        """
        recv_cq, send_cq, slot, slots_by_wq, peers = state
        vi = yield from h.create_vi(self.reliability,
                                    send_cq=send_cq, recv_cq=recv_cq)
        buf = h.alloc(self.window * slot)
        mh = yield from h.register_mem(buf)
        slots: deque[int] = deque()
        for w in range(self.window):
            yield from h.post_recv(
                vi, Descriptor.recv([h.segment(buf, mh, w * slot, slot)]))
            slots.append(w * slot)
        slots_by_wq[vi.recv_q] = (vi, buf, mh, slots)
        yield from h.accept(req, vi)
        self.stats["accepted"] += 1
        peers[(req.client_node, req.client_vi_id)] = vi

    def _conn_cap(self) -> int:
        if self.policy is not None and self.policy.max_conns is not None:
            return min(self.n_clients, self.policy.max_conns)
        return self.n_clients

    def body(self):
        tb = self.tb
        h = tb.open(self.node, "server")
        depth = max(64, self.n_clients * self.window * 2)
        recv_cq = yield from h.create_cq(depth=depth)
        send_cq = yield from h.create_cq(depth=depth)
        slot = max(self.req_size, 8)
        resp_slot = max(self.resp_size, 8)
        resp_buf = h.alloc(resp_slot)
        resp_mh = yield from h.register_mem(resp_buf)
        deadline = tb.now + self.deadline_us

        # fast path: accept until every distinct client endpoint (up to
        # the connection cap) has a binding, or the deadline says some
        # never will
        cap = self._conn_cap()
        slots_by_wq: dict = {}
        peers: dict = {}
        state = (recv_cq, send_cq, slot, slots_by_wq, peers)
        while len(peers) < cap and tb.now < deadline:
            try:
                req = yield from h.connect_wait(
                    self.discriminator, timeout=deadline - tb.now)
            except VipTimeout:
                break
            yield from self._accept_one(h, req, state)

        if self.policy is not None:
            yield from self._dispatch_admission(h, state, resp_buf,
                                                resp_mh, deadline)
        else:
            yield from self._dispatch(h, state, resp_buf, resp_mh, deadline)

        # drain whatever send completions are still in flight
        while True:
            done = yield from h.cq_done(send_cq)
            if done is None:
                break

    # -- legacy dispatch (no policy): byte-identical defaults ------------

    def _dispatch(self, h, state, resp_buf, resp_mh, deadline):
        # the server never joins the start gate — it serves reactively,
        # and keeps accepting parked redials between completions so a
        # client whose earlier dial went stale while we were busy still
        # gets connected (no accept, no traffic)
        tb = self.tb
        recv_cq, send_cq, slot, slots_by_wq, peers = state
        connmgr = tb.providers[self.node].connmgr
        while (self.stats["served"] < self.total_requests
               and tb.now < deadline):
            while connmgr.pending_count(self.discriminator):
                req = yield from h.connect_wait(self.discriminator,
                                                timeout=0.0)
                yield from self._accept_one(h, req, state)
            budget = min(_IDLE_POLL_US, deadline - tb.now)
            try:
                wq, desc = yield from h.cq_wait(
                    recv_cq, mode=self.wait_mode, timeout=budget)
            except VipTimeout:
                continue
            vi, buf, mh, slots = slots_by_wq[wq]
            off = slots.popleft()
            if desc.status is not CompletionStatus.SUCCESS:
                self.stats["errors"] += 1
                continue
            service_us = self.service(self.rng, desc.control.length)
            if service_us > 0.0:
                yield from h.actor.busy(service_us, "user")
            try:
                yield from h.post_send(
                    vi, Descriptor.send(
                        [h.segment(resp_buf, resp_mh, 0, self.resp_size)]))
                yield from h.post_recv(
                    vi, Descriptor.recv([h.segment(buf, mh, off, slot)]))
                slots.append(off)
            except VipError:
                # the client's VI died (e.g. its link is down and the
                # response RTO exhausted); keep serving everyone else
                self.stats["errors"] += 1
                continue
            self.stats["served"] += 1
            self.served_at.append(tb.now)
            while True:  # reap acked responses without blocking
                done = yield from h.cq_done(send_cq)
                if done is None:
                    break

    # -- admission-controlled dispatch (policy attached) -----------------

    def _admit(self, h, item, slots_by_wq, pending) -> int:
        """Move one recv completion into the pending queue; returns how
        many live (un-shed) entries that added."""
        wq, desc = item
        vi, buf, mh, slots = slots_by_wq[wq]
        off = slots.popleft()
        if desc.status is not CompletionStatus.SUCCESS:
            self.stats["errors"] += 1
            return 0
        hdr = None
        if self.deadline_aware:
            hdr = int.from_bytes(h.read(buf, DEADLINE_HDR, offset=off),
                                 "big")
        # entry: [wq, desc, slot offset, deadline header, shed marker]
        pending.append([wq, desc, off, hdr, None])
        return 1

    def _nak(self, h, entry, slots_by_wq, naks):
        """Answer one shed entry with its static NAK payload and repost
        the freed receive."""
        wq, desc, off, hdr, shed = entry
        vi, buf, mh, slots = slots_by_wq[wq]
        slot = max(self.req_size, 8)
        nak_buf, nak_mh = naks[shed]
        try:
            yield from h.post_send(vi, Descriptor.send(
                [h.segment(nak_buf, nak_mh, 0, NAK_BYTES)]))
            yield from h.post_recv(
                vi, Descriptor.recv([h.segment(buf, mh, off, slot)]))
            slots.append(off)
        except VipError:
            self.stats["errors"] += 1
            return
        self.stats["naks_sent"] += 1
        key = "shed_deadline" if shed == "deadline" else "shed_queue"
        self.stats[key] += 1

    def _dispatch_admission(self, h, state, resp_buf, resp_mh, deadline):
        tb = self.tb
        recv_cq, send_cq, slot, slots_by_wq, peers = state
        pol = self.policy
        cap = self._conn_cap()
        connmgr = tb.providers[self.node].connmgr
        # static NAK payloads, written once: response sends gather their
        # bytes at engine time, so per-response buffers must never change
        naks = {}
        for shed, marker in (("queue", RESP_SHED), ("deadline",
                                                    RESP_EXPIRED)):
            nbuf = h.alloc(NAK_BYTES)
            nmh = yield from h.register_mem(nbuf)
            h.write(nbuf, bytes([marker]))
            naks[shed] = (nbuf, nmh)
        pending: deque = deque()
        live = 0
        deadline_shed = self.deadline_aware and pol.shed_mode == "deadline"

        def clients_done() -> bool:
            # a retrying client can be re-served the same request, so a
            # served-count exit would fire early and strand the rest of
            # its schedule.  The only trustworthy end-of-traffic signal
            # is teardown: every expected endpoint connected and has
            # since disconnected.  Clients that keep failures never
            # disconnect, so an overloaded cell serves to its deadline.
            return (len(peers) >= cap
                    and all(not vi.is_connected for vi in peers.values()))

        while not clients_done() and tb.now < deadline:
            while connmgr.pending_count(self.discriminator):
                req = yield from h.connect_wait(self.discriminator,
                                                timeout=0.0)
                known = (req.client_node, req.client_vi_id) in peers
                if not known and len(peers) >= cap:
                    yield from h.reject(req)
                    self.stats["conns_rejected"] += 1
                else:
                    yield from self._accept_one(h, req, state)
            if not pending:
                budget = min(_IDLE_POLL_US, deadline - tb.now)
                try:
                    item = yield from h.cq_wait(
                        recv_cq, mode=self.wait_mode, timeout=budget)
                except VipTimeout:
                    continue
                live += self._admit(h, item, slots_by_wq, pending)
            while True:  # drain the whole CQ into the pending queue
                item = yield from h.cq_done(recv_cq)
                if item is None:
                    break
                live += self._admit(h, item, slots_by_wq, pending)
            # shed: deadline mode first marks dead-on-arrival work
            # anywhere in the queue, then both modes mark overflow from
            # the tail.  Marked entries stay queued and are NAK'd when
            # they reach the head, preserving per-VI response order.
            if deadline_shed:
                for e in pending:
                    if e[4] is None and e[3] is not None and tb.now >= e[3]:
                        e[4] = "deadline"
                        live -= 1
            if pol.queue_depth is not None and live > pol.queue_depth:
                for e in reversed(pending):
                    if live <= pol.queue_depth:
                        break
                    if e[4] is None:
                        e[4] = "queue"
                        live -= 1
            if not pending:
                continue
            e = pending.popleft()
            if e[4] is None:
                live -= 1
                # head may have died between admission and service
                if deadline_shed and e[3] is not None and tb.now >= e[3]:
                    e[4] = "deadline"
            if e[4] is not None:
                yield from self._nak(h, e, slots_by_wq, naks)
            else:
                wq, desc, off, hdr, _shed = e
                vi, buf, mh, slots = slots_by_wq[wq]
                service_us = self.service(self.rng, desc.control.length)
                if service_us > 0.0:
                    yield from h.actor.busy(service_us, "user")
                try:
                    yield from h.post_send(vi, Descriptor.send([h.segment(
                        resp_buf, resp_mh, 0, self.resp_size)]))
                    yield from h.post_recv(vi, Descriptor.recv(
                        [h.segment(buf, mh, off, slot)]))
                    slots.append(off)
                except VipError:
                    self.stats["errors"] += 1
                    continue
                self.stats["served"] += 1
                self.served_at.append(tb.now)
            while True:  # reap acked responses without blocking
                done = yield from h.cq_done(send_cq)
                if done is None:
                    break

        # flush: NAK everything still queued or sitting in the CQ, so a
        # client draining a late attempt gets its answer instead of
        # waiting out its full deadline on a request nobody will serve
        while True:
            item = yield from h.cq_done(recv_cq)
            if item is None:
                break
            live += self._admit(h, item, slots_by_wq, pending)
        while pending:
            e = pending.popleft()
            if e[4] is None:
                e[4] = "queue"
            yield from self._nak(h, e, slots_by_wq, naks)
