"""Traffic generators: seeded open-loop and closed-loop clients.

An *open-loop* client draws a request arrival schedule up front
(Poisson, deterministic, or bursty — all from a per-client seeded RNG)
and issues requests at those instants regardless of how fast responses
come back, bounded only by its descriptor window: exactly the
load-generator discipline that exposes a saturation knee, because
offered load does not throttle itself when the server slows down.
Per-request latency is measured from the *scheduled* arrival to the
response, so client-side queueing behind a full window counts — the
standard open-loop correction for coordinated omission.

A *closed-loop* client (``interval_us=None``) issues one request at a
time with optional think time: offered load adapts to service speed,
which is what capacity calibration and the chaos cells want.
"""

from __future__ import annotations

import random

from ..sim import Signal
from ..via.constants import CompletionStatus, Reliability, WaitMode
from ..via.descriptor import Descriptor
from ..via.errors import VipConnectionError, VipError, VipTimeout

__all__ = ["ClusterClient", "StartGate", "arrival_offsets",
           "LATENCY_BUCKETS"]

#: request-latency histogram bounds: 1 us .. ~33 s, x1.5 geometric —
#: fine enough that p50/p99/p999 interpolation is meaningful both at
#: light load (tens of us) and deep in overload (seconds)
LATENCY_BUCKETS = tuple(1.0 * 1.5 ** i for i in range(43))

ARRIVALS = ("poisson", "uniform", "burst")


def arrival_offsets(kind: str, n: int, interval_us: float,
                    rng: random.Random, burst: int = 8) -> list[float]:
    """Cumulative arrival offsets (us from the start gate) for ``n``
    requests at a mean rate of one per ``interval_us``."""
    if kind not in ARRIVALS:
        raise ValueError(f"unknown arrival process {kind!r}; "
                         f"known: {ARRIVALS}")
    if interval_us <= 0:
        raise ValueError("interval must be positive")
    if kind == "uniform":
        return [i * interval_us for i in range(n)]
    if kind == "poisson":
        offsets = []
        t = 0.0
        for _ in range(n):
            t += rng.expovariate(1.0 / interval_us)
            offsets.append(t)
        return offsets
    # burst: groups of `burst` arrive together, groups spaced so the
    # mean rate still matches interval_us
    offsets = []
    for i in range(n):
        offsets.append((i // burst) * burst * interval_us)
    return offsets


class StartGate:
    """Barrier separating the connection phase from the measured run.

    Every participant calls ``yield from gate.arrive()`` once its setup
    is done; the last arrival releases everyone and stamps :attr:`t0`,
    the common schedule origin.
    """

    def __init__(self, sim, expected: int) -> None:
        self.sim = sim
        self.expected = expected
        self.ready = 0
        self.t0: float | None = None
        self._signal = Signal(sim)

    def arrive(self):
        self.ready += 1
        if self.ready >= self.expected:
            self.t0 = self.sim.now
            self._signal.fire()
            return
        yield self._signal.wait()

    def released(self):
        """Wait (as a process fragment) until the gate has fired —
        e.g. to arm mid-campaign fault plans relative to :attr:`t0`."""
        if self.t0 is None:
            yield self._signal.wait()

    def abandon(self) -> None:
        """A participant gives up before reaching the gate (e.g. its
        connection never came up): shrink the quorum so the rest of the
        cluster still starts instead of waiting forever."""
        self.expected -= 1
        if self.ready >= self.expected and self.t0 is None:
            self.t0 = self.sim.now
            self._signal.fire()


class ClusterClient:
    """One request/response traffic source (spawn :meth:`body`)."""

    def __init__(
        self,
        tb,
        node: str,
        cid: int,
        server: str,
        *,
        n_requests: int,
        interval_us: float | None = None,
        arrival: str = "poisson",
        burst: int = 8,
        req_size: int = 128,
        resp_size: int = 1024,
        window: int = 4,
        think_us: float = 0.0,
        discriminator: int = 4000,
        reliability: Reliability = Reliability.RELIABLE_DELIVERY,
        wait_mode: WaitMode = WaitMode.BLOCK,
        seed: int = 0,
        hist=None,
        deadline_us: float = 30_000_000.0,
        gate: StartGate | None = None,
    ) -> None:
        self.tb = tb
        self.node = node
        self.cid = cid
        self.server = server
        self.n_requests = n_requests
        self.interval_us = interval_us
        self.arrival = arrival
        self.burst = burst
        self.req_size = req_size
        self.resp_size = resp_size
        self.window = max(1, window)
        self.think_us = think_us
        self.discriminator = discriminator
        self.reliability = reliability
        self.wait_mode = wait_mode
        self.rng = random.Random(seed)
        self.hist = hist
        self.deadline_us = deadline_us
        self.gate = gate
        self.stats = {"sent": 0, "completed": 0, "failed": 0,
                      "connected": False, "done_at": 0.0}
        #: absolute completion timestamps (for served-during-outage checks)
        self.finish_times: list[float] = []
        #: absolute scheduled arrival instants (open loop only) — the
        #: runner computes the *realized* offered rate from these
        self.schedule: list[float] = []

    # -- helpers ---------------------------------------------------------
    def _record(self, latency_us: float) -> None:
        self.stats["completed"] += 1
        self.finish_times.append(self.tb.now)
        if self.hist is not None:
            self.hist.observe(latency_us)

    def _drain_sends(self, h, vi):
        while True:
            done = yield from h.send_done(vi)
            if done is None:
                break

    def body(self):
        tb = self.tb
        h = tb.open(self.node, f"cli{self.cid}")
        vi = yield from h.create_vi(self.reliability)
        resp_slot = max(self.resp_size, 8)
        buf = h.alloc(self.window * resp_slot + max(self.req_size, 8))
        mh = yield from h.register_mem(buf)
        req_off = self.window * resp_slot
        deadline = tb.now + self.deadline_us

        posted = 0
        for w in range(self.window):
            yield from h.post_recv(vi, Descriptor.recv(
                [h.segment(buf, mh, w * resp_slot, resp_slot)]))
            posted += 1
        slots = list(range(self.window))

        while True:  # dial until accepted; handshake loss redials
            try:
                yield from h.connect(vi, self.server, self.discriminator,
                                     timeout=deadline - tb.now)
                break
            except VipTimeout:
                self.stats["failed"] = self.n_requests
                if self.gate is not None:
                    self.gate.abandon()
                return
            except VipConnectionError:
                if tb.now >= deadline:
                    self.stats["failed"] = self.n_requests
                    if self.gate is not None:
                        self.gate.abandon()
                    return
        self.stats["connected"] = True

        if self.gate is not None:
            yield from self.gate.arrive()

        try:
            if self.interval_us is None:
                yield from self._run_closed(h, vi, buf, mh, req_off,
                                            resp_slot, slots, deadline)
            else:
                yield from self._run_open(h, vi, buf, mh, req_off,
                                          resp_slot, slots, deadline)
        except VipError:
            pass  # a dead VI ends this client's run; stats already tell
        self.stats["failed"] = self.n_requests - self.stats["completed"]
        self.stats["done_at"] = tb.now
        yield from self._drain_sends(h, vi)
        if self.stats["failed"] == 0 and vi.is_connected:
            yield from h.disconnect(vi)

    def _req_desc(self, h, buf, mh, req_off):
        return Descriptor.send([h.segment(buf, mh, req_off, self.req_size)])

    def _consume(self, h, vi, buf, mh, resp_slot, slots, issue_time,
                 deadline):
        """Process fragment: wait one response, record its latency."""
        budget = deadline - self.tb.now
        if budget <= 0:
            raise VipTimeout("client deadline exceeded")
        desc = yield from h.recv_wait(vi, mode=self.wait_mode,
                                      timeout=budget)
        s = slots.pop(0)
        if desc.status is CompletionStatus.SUCCESS:
            self._record(self.tb.now - issue_time)
        else:
            self.stats["failed"] += 1
        yield from h.post_recv(vi, Descriptor.recv(
            [h.segment(buf, mh, s * resp_slot, resp_slot)]))
        slots.append(s)

    def _run_closed(self, h, vi, buf, mh, req_off, resp_slot, slots,
                    deadline):
        tb = self.tb
        for _ in range(self.n_requests):
            if tb.now >= deadline:
                break
            issued = tb.now
            yield from h.post_send(vi, self._req_desc(h, buf, mh, req_off))
            self.stats["sent"] += 1
            yield from self._drain_sends(h, vi)
            try:
                yield from self._consume(h, vi, buf, mh, resp_slot, slots,
                                         issued, deadline)
            except VipTimeout:
                break
            if self.think_us > 0.0:
                yield tb.sim.timeout(self.think_us)

    def _run_open(self, h, vi, buf, mh, req_off, resp_slot, slots,
                  deadline):
        tb = self.tb
        t0 = self.gate.t0 if self.gate is not None else tb.now
        issue_at = [t0 + off for off in arrival_offsets(
            self.arrival, self.n_requests, self.interval_us, self.rng,
            self.burst)]
        self.schedule = issue_at
        sent = recvd = 0
        while recvd < self.n_requests and tb.now < deadline:
            while (sent < self.n_requests and sent - recvd < self.window
                   and tb.now >= issue_at[sent]):
                yield from h.post_send(vi,
                                       self._req_desc(h, buf, mh, req_off))
                self.stats["sent"] += 1
                sent += 1
                yield from self._drain_sends(h, vi)
            window_open = (sent < self.n_requests
                           and sent - recvd < self.window)
            if window_open and tb.now < issue_at[sent]:
                # idle until the next scheduled arrival, but consume any
                # response that lands first so receives repost promptly
                budget = issue_at[sent] - tb.now
                try:
                    desc = yield from h.recv_wait(vi, mode=self.wait_mode,
                                                  timeout=budget)
                except VipTimeout:
                    continue
                s = slots.pop(0)
                if desc.status is CompletionStatus.SUCCESS:
                    self._record(tb.now - issue_at[recvd])
                else:
                    self.stats["failed"] += 1
                recvd += 1
                yield from h.post_recv(vi, Descriptor.recv(
                    [h.segment(buf, mh, s * resp_slot, resp_slot)]))
                slots.append(s)
            elif not window_open or sent >= self.n_requests:
                try:
                    yield from self._consume(h, vi, buf, mh, resp_slot,
                                             slots, issue_at[recvd],
                                             deadline)
                except VipTimeout:
                    break
                recvd += 1
