"""Traffic generators: seeded open-loop and closed-loop clients.

An *open-loop* client draws a request arrival schedule up front
(Poisson, deterministic, or bursty — all from a per-client seeded RNG)
and issues requests at those instants regardless of how fast responses
come back, bounded only by its descriptor window: exactly the
load-generator discipline that exposes a saturation knee, because
offered load does not throttle itself when the server slows down.
Per-request latency is measured from the *scheduled* arrival to the
response, so client-side queueing behind a full window counts — the
standard open-loop correction for coordinated omission.

A *closed-loop* client (``interval_us=None``) issues one request at a
time with optional think time: offered load adapts to service speed,
which is what capacity calibration and the chaos cells want.

With a :class:`~repro.cluster.policy.RetryPolicy` attached the client
runs the *overload engine* instead: every request carries its absolute
deadline in the payload header, NAK'd (shed) and erred attempts are
retried with capped exponential backoff from the client's own seeded
stream, attempts that outlive their per-attempt hedge are abandoned in
place (their late response is discarded, never mis-matched), and each
request resolves exactly once as ``completed``, ``abandoned`` (retry
budget exhausted) or ``deadline_exceeded``.
"""

from __future__ import annotations

import heapq
import random
from collections import deque

from ..sim import Signal
from ..via.constants import CompletionStatus, Reliability, WaitMode
from ..via.descriptor import Descriptor
from ..via.errors import VipConnectionError, VipError, VipTimeout
from .policy import (DEADLINE_HDR, DEFAULT_DEADLINE_US, RESP_EXPIRED,
                     RESP_OK, RESP_SHED, RetryPolicy)

__all__ = ["ClusterClient", "StartGate", "arrival_offsets",
           "LATENCY_BUCKETS"]

#: request-latency histogram bounds: 1 us .. ~33 s, x1.5 geometric —
#: fine enough that p50/p99/p999 interpolation is meaningful both at
#: light load (tens of us) and deep in overload (seconds)
LATENCY_BUCKETS = tuple(1.0 * 1.5 ** i for i in range(43))

ARRIVALS = ("poisson", "uniform", "burst")

_U64_MAX = (1 << 64) - 1
_INF = float("inf")


def arrival_offsets(kind: str, n: int, interval_us: float,
                    rng: random.Random, burst: int = 8) -> list[float]:
    """Cumulative arrival offsets (us from the start gate) for ``n``
    requests at a mean rate of one per ``interval_us``."""
    if kind not in ARRIVALS:
        raise ValueError(f"unknown arrival process {kind!r}; "
                         f"known: {ARRIVALS}")
    if interval_us <= 0:
        raise ValueError("interval must be positive")
    if kind == "uniform":
        return [i * interval_us for i in range(n)]
    if kind == "poisson":
        offsets = []
        t = 0.0
        for _ in range(n):
            t += rng.expovariate(1.0 / interval_us)
            offsets.append(t)
        return offsets
    # burst: groups of `burst` arrive together, groups spaced so the
    # mean rate still matches interval_us
    offsets = []
    for i in range(n):
        offsets.append((i // burst) * burst * interval_us)
    return offsets


class StartGate:
    """Barrier separating the connection phase from the measured run.

    Every participant calls ``yield from gate.arrive()`` once its setup
    is done; the last arrival releases everyone and stamps :attr:`t0`,
    the common schedule origin.
    """

    def __init__(self, sim, expected: int) -> None:
        self.sim = sim
        self.expected = expected
        self.ready = 0
        self.t0: float | None = None
        self._signal = Signal(sim)

    def arrive(self):
        self.ready += 1
        if self.ready >= self.expected:
            self.t0 = self.sim.now
            self._signal.fire()
            return
        yield self._signal.wait()

    def released(self):
        """Wait (as a process fragment) until the gate has fired —
        e.g. to arm mid-campaign fault plans relative to :attr:`t0`."""
        if self.t0 is None:
            yield self._signal.wait()

    def abandon(self) -> None:
        """A participant gives up before reaching the gate (e.g. its
        connection never came up): shrink the quorum so the rest of the
        cluster still starts instead of waiting forever."""
        self.expected -= 1
        if self.ready >= self.expected and self.t0 is None:
            self.t0 = self.sim.now
            self._signal.fire()


class _Request:
    """One logical request: survives across attempts until resolved."""

    __slots__ = ("sched", "deadline", "attempts")

    def __init__(self, sched: float, deadline: float) -> None:
        self.sched = sched
        self.deadline = deadline
        self.attempts = 0


class _Attempt:
    """One wire attempt of a request, FIFO-matched to its response.

    A *zombie* attempt's request has already been resolved or requeued
    (it timed out at the head of the line); its response still arrives
    in FIFO position and must be consumed and discarded, or every later
    response would be matched one slot off.
    """

    __slots__ = ("rec", "slot", "issued_at", "zombie")

    def __init__(self, rec: _Request, slot: int, issued_at: float) -> None:
        self.rec = rec
        self.slot = slot
        self.issued_at = issued_at
        self.zombie = False


class ClusterClient:
    """One request/response traffic source (spawn :meth:`body`)."""

    def __init__(
        self,
        tb,
        node: str,
        cid: int,
        server: str,
        *,
        n_requests: int,
        interval_us: float | None = None,
        arrival: str = "poisson",
        burst: int = 8,
        req_size: int = 128,
        resp_size: int = 1024,
        window: int = 4,
        think_us: float = 0.0,
        discriminator: int = 4000,
        reliability: Reliability = Reliability.RELIABLE_DELIVERY,
        wait_mode: WaitMode = WaitMode.BLOCK,
        seed: int = 0,
        hist=None,
        deadline_us: float | None = None,
        gate: StartGate | None = None,
        retry: RetryPolicy | None = None,
        tenant: int = 0,
        offsets: list[float] | None = None,
    ) -> None:
        self.tb = tb
        self.node = node
        self.cid = cid
        self.server = server
        self.n_requests = n_requests
        self.interval_us = interval_us
        self.arrival = arrival
        self.burst = burst
        self.req_size = req_size
        self.resp_size = resp_size
        self.window = max(1, window)
        self.think_us = think_us
        self.discriminator = discriminator
        self.reliability = reliability
        self.wait_mode = wait_mode
        self.rng = random.Random(seed)
        self.hist = hist
        # single source of truth for the default lives on ClusterConfig /
        # policy.DEFAULT_DEADLINE_US; None means "take the default"
        self.deadline_us = (DEFAULT_DEADLINE_US if deadline_us is None
                            else deadline_us)
        self.gate = gate
        self.retry = retry
        self.tenant = tenant
        #: pre-gate arrival offsets overriding the drawn schedule (the
        #: overload chaos cells craft multi-phase spikes with this)
        self.offsets = offsets
        if offsets is not None and len(offsets) != n_requests:
            raise ValueError(f"offsets carries {len(offsets)} arrivals "
                             f"for {n_requests} requests")
        if retry is not None and req_size < DEADLINE_HDR:
            raise ValueError(
                f"retry needs req_size >= {DEADLINE_HDR} bytes for the "
                f"deadline header (got {req_size})")
        # backoff jitter draws from its own derived stream so enabling
        # retries never perturbs the arrival schedule draws
        self.retry_rng = random.Random((seed ^ 0x5DEECE66D) & _U64_MAX)
        self.stats = {"sent": 0, "completed": 0, "failed": 0,
                      "connected": False, "done_at": 0.0,
                      "retried": 0, "abandoned": 0, "deadline_exceeded": 0,
                      "shed_naks": 0, "redials": 0}
        #: absolute completion timestamps (for served-during-outage checks)
        self.finish_times: list[float] = []
        #: absolute scheduled arrival instants (open loop only) — the
        #: runner computes the *realized* offered rate from these
        self.schedule: list[float] = []

    # -- helpers ---------------------------------------------------------
    def _record(self, latency_us: float) -> None:
        self.stats["completed"] += 1
        self.finish_times.append(self.tb.now)
        if self.hist is not None:
            self.hist.observe(latency_us)

    def _drain_sends(self, h, vi):
        while True:
            done = yield from h.send_done(vi)
            if done is None:
                break

    def _offsets(self) -> list[float]:
        if self.offsets is not None:
            return list(self.offsets)
        return arrival_offsets(self.arrival, self.n_requests,
                               self.interval_us, self.rng, self.burst)

    def body(self):
        tb = self.tb
        h = tb.open(self.node, f"cli{self.cid}")
        vi = yield from h.create_vi(self.reliability)
        resp_slot = max(self.resp_size, 8)
        req_slot = max(self.req_size, 8)
        if self.retry is not None:
            # one request region per window slot: an attempt's payload
            # (its deadline header) must stay untouched until the send
            # engine gathers it, so in-flight attempts can never share
            buf = h.alloc(self.window * resp_slot + self.window * req_slot)
        else:
            buf = h.alloc(self.window * resp_slot + req_slot)
        mh = yield from h.register_mem(buf)
        req_off = self.window * resp_slot
        deadline = tb.now + self.deadline_us

        posted = 0
        for w in range(self.window):
            yield from h.post_recv(vi, Descriptor.recv(
                [h.segment(buf, mh, w * resp_slot, resp_slot)]))
            posted += 1
        slots = deque(range(self.window))

        if not (yield from self._dial(h, vi, deadline)):
            return
        self.stats["connected"] = True

        if self.gate is not None:
            yield from self.gate.arrive()

        try:
            if self.retry is not None:
                yield from self._run_retry(h, vi, buf, mh, req_off,
                                           req_slot, resp_slot, slots,
                                           deadline)
            elif self.interval_us is None:
                yield from self._run_closed(h, vi, buf, mh, req_off,
                                            resp_slot, slots, deadline)
            else:
                yield from self._run_open(h, vi, buf, mh, req_off,
                                          resp_slot, slots, deadline)
        except VipError:
            pass  # a dead VI ends this client's run; stats already tell
        self.stats["failed"] = self.n_requests - self.stats["completed"]
        self.stats["done_at"] = tb.now
        yield from self._drain_sends(h, vi)
        if self.stats["failed"] == 0 and vi.is_connected:
            yield from h.disconnect(vi)

    def _dial(self, h, vi, deadline):
        """Dial until accepted; returns False when this client gives up.

        Without a retry policy a handshake loss redials immediately
        (the provider's own conn-retransmission backoff paces it); with
        one, a rejection or exhausted handshake backs off from the
        retry stream and gives up once the budget is spent — a server
        at its connection cap sees dials taper instead of a storm.
        """
        tb = self.tb
        redials = 0
        while True:
            try:
                yield from h.connect(vi, self.server, self.discriminator,
                                     timeout=deadline - tb.now)
                return True
            except VipTimeout:
                break
            except VipConnectionError:
                if tb.now >= deadline:
                    break
                if self.retry is None:
                    continue
                self.stats["redials"] += 1
                redials += 1
                if redials > self.retry.max_retries:
                    break
                wait = min(self.retry.backoff_us(redials - 1, self.retry_rng),
                           deadline - tb.now)
                if wait > 0:
                    yield tb.sim.timeout(wait)
        self.stats["failed"] = self.n_requests
        if self.gate is not None:
            self.gate.abandon()
        return False

    def _req_desc(self, h, buf, mh, req_off):
        return Descriptor.send([h.segment(buf, mh, req_off, self.req_size)])

    # -- legacy paths (no retry policy): byte-identical defaults ---------

    def _consume(self, h, vi, buf, mh, resp_slot, slots, issue_time,
                 deadline):
        """Process fragment: wait one response, record its latency."""
        budget = deadline - self.tb.now
        if budget <= 0:
            raise VipTimeout("client deadline exceeded")
        desc = yield from h.recv_wait(vi, mode=self.wait_mode,
                                      timeout=budget)
        s = slots.popleft()
        if desc.status is CompletionStatus.SUCCESS:
            self._record(self.tb.now - issue_time)
        else:
            self.stats["failed"] += 1
        yield from h.post_recv(vi, Descriptor.recv(
            [h.segment(buf, mh, s * resp_slot, resp_slot)]))
        slots.append(s)

    def _run_closed(self, h, vi, buf, mh, req_off, resp_slot, slots,
                    deadline):
        tb = self.tb
        for _ in range(self.n_requests):
            if tb.now >= deadline:
                break
            issued = tb.now
            yield from h.post_send(vi, self._req_desc(h, buf, mh, req_off))
            self.stats["sent"] += 1
            yield from self._drain_sends(h, vi)
            try:
                yield from self._consume(h, vi, buf, mh, resp_slot, slots,
                                         issued, deadline)
            except VipTimeout:
                break
            if self.think_us > 0.0:
                yield tb.sim.timeout(self.think_us)

    def _run_open(self, h, vi, buf, mh, req_off, resp_slot, slots,
                  deadline):
        tb = self.tb
        t0 = self.gate.t0 if self.gate is not None else tb.now
        issue_at = [t0 + off for off in self._offsets()]
        self.schedule = issue_at
        sent = recvd = 0
        while recvd < self.n_requests and tb.now < deadline:
            while (sent < self.n_requests and sent - recvd < self.window
                   and tb.now >= issue_at[sent]):
                yield from h.post_send(vi,
                                       self._req_desc(h, buf, mh, req_off))
                self.stats["sent"] += 1
                sent += 1
                yield from self._drain_sends(h, vi)
            window_open = (sent < self.n_requests
                           and sent - recvd < self.window)
            if window_open and tb.now < issue_at[sent]:
                # idle until the next scheduled arrival, but consume any
                # response that lands first so receives repost promptly
                budget = issue_at[sent] - tb.now
                try:
                    desc = yield from h.recv_wait(vi, mode=self.wait_mode,
                                                  timeout=budget)
                except VipTimeout:
                    continue
                s = slots.popleft()
                if desc.status is CompletionStatus.SUCCESS:
                    self._record(tb.now - issue_at[recvd])
                else:
                    self.stats["failed"] += 1
                recvd += 1
                yield from h.post_recv(vi, Descriptor.recv(
                    [h.segment(buf, mh, s * resp_slot, resp_slot)]))
                slots.append(s)
            elif not window_open or sent >= self.n_requests:
                try:
                    yield from self._consume(h, vi, buf, mh, resp_slot,
                                             slots, issue_at[recvd],
                                             deadline)
                except VipTimeout:
                    break
                recvd += 1

    # -- the overload engine (retry policy attached) ---------------------

    def _run_retry(self, h, vi, buf, mh, req_off, req_slot, resp_slot,
                   recv_slots, deadline):
        """Open- or closed-loop issue loop with retries and deadlines.

        Requests live in three places: un-issued (the schedule), backing
        off (``retryq``, a deterministic (ready, order) heap) and in
        flight (``inflight``, FIFO by response order).  Per-VI reliable
        delivery keeps responses in attempt order, so FIFO matching
        stays exact even with zombies — a hedged-out attempt's late
        response is consumed in position and discarded.
        """
        tb = self.tb
        policy = self.retry
        closed = self.interval_us is None
        n = self.n_requests
        if closed:
            issue_at: list[float] = []
        else:
            t0 = self.gate.t0 if self.gate is not None else tb.now
            issue_at = [t0 + off for off in self._offsets()]
            self.schedule = issue_at
        # per-attempt hedge: split the request deadline evenly over the
        # attempt budget so a stuck attempt leaves room to retry
        hedge_us = policy.timeout_us / (policy.max_retries + 1)
        inflight: deque[_Attempt] = deque()
        free_slots = deque(range(self.window))
        retryq: list = []
        order = 0
        resolved = 0
        live = 0          # issued-but-unresolved requests (closed gating)
        next_new = 0
        closed_ready = tb.now
        stats = self.stats

        def _resolve(rec, outcome, latency=None):
            nonlocal resolved, live, closed_ready
            resolved += 1
            live -= 1
            closed_ready = tb.now + self.think_us
            if outcome is None:
                self._record(latency)
            else:
                stats[outcome] += 1

        def _retry_or_fail(rec):
            nonlocal order
            if tb.now >= rec.deadline:
                _resolve(rec, "deadline_exceeded")
            elif rec.attempts > policy.max_retries:
                _resolve(rec, "abandoned")
            else:
                stats["retried"] += 1
                ready = tb.now + policy.backoff_us(rec.attempts - 1,
                                                   self.retry_rng)
                heapq.heappush(retryq, (ready, order, rec))
                order += 1

        def _next_new():
            if next_new >= n:
                return _INF
            if closed:
                return closed_ready if live == 0 else _INF
            return issue_at[next_new]

        while resolved < n and tb.now < deadline:
            # expire or hedge every overdue in-flight attempt — not just
            # the head: an attempt stuck behind a zombie head (whose
            # response may never come) must still resolve by deadline
            for att in inflight:
                if att.zombie:
                    continue
                if tb.now >= att.rec.deadline:
                    att.zombie = True
                    _resolve(att.rec, "deadline_exceeded")
                elif (tb.now >= att.issued_at + hedge_us
                      and att.rec.attempts <= policy.max_retries):
                    att.zombie = True
                    _retry_or_fail(att.rec)
            # a request can die while it waits for a window slot — backed
            # off in the retry queue, or scheduled but never issued.  Expire
            # those here, not in the issue loop, so a window wedged full of
            # zombie attempts (their responses lost with a dead server)
            # still resolves every request by its deadline
            if retryq and any(it[2].deadline <= tb.now for it in retryq):
                alive = []
                for item in retryq:
                    if item[2].deadline <= tb.now:
                        _resolve(item[2], "deadline_exceeded")
                    else:
                        alive.append(item)
                retryq[:] = alive
                heapq.heapify(retryq)
            while (not closed and next_new < n
                   and issue_at[next_new] + policy.timeout_us <= tb.now):
                rec = _Request(issue_at[next_new],
                               issue_at[next_new] + policy.timeout_us)
                next_new += 1
                live += 1
                _resolve(rec, "deadline_exceeded")
            # issue everything due while the window has room
            while len(inflight) < self.window:
                t_retry = retryq[0][0] if retryq else _INF
                t_new = _next_new()
                if min(t_retry, t_new) > tb.now:
                    break
                if t_retry <= t_new:
                    _, _, rec = heapq.heappop(retryq)
                else:
                    sched = tb.now if closed else issue_at[next_new]
                    rec = _Request(sched, sched + policy.timeout_us)
                    next_new += 1
                    live += 1
                if tb.now >= rec.deadline:  # dead before it could be sent
                    _resolve(rec, "deadline_exceeded")
                    continue
                slot = free_slots.popleft()
                hdr = min(int(rec.deadline), _U64_MAX)
                h.write(buf, hdr.to_bytes(DEADLINE_HDR, "big"),
                        offset=req_off + slot * req_slot)
                yield from h.post_send(vi, Descriptor.send([h.segment(
                    buf, mh, req_off + slot * req_slot, self.req_size)]))
                rec.attempts += 1
                stats["sent"] += 1
                inflight.append(_Attempt(rec, slot, tb.now))
                yield from self._drain_sends(h, vi)
            if resolved >= n:
                break
            # wait for a response, the next due source, or the earliest
            # attempt hedge/deadline — whichever comes first
            t_src = _INF
            if len(inflight) < self.window:
                t_src = min(retryq[0][0] if retryq else _INF, _next_new())
            head_ev = _INF
            for att in inflight:
                if att.zombie:
                    continue
                ev = att.rec.deadline
                if att.rec.attempts <= policy.max_retries:
                    ev = min(ev, att.issued_at + hedge_us)
                head_ev = min(head_ev, ev)
            # deadlines of requests parked outside the window, so the
            # expiry sweep above always runs in time
            t_die = min((it[2].deadline for it in retryq), default=_INF)
            if not closed and next_new < n:
                t_die = min(t_die, issue_at[next_new] + policy.timeout_us)
            wake = min(t_src, head_ev, t_die, deadline)
            if not inflight:
                if wake == _INF:
                    break  # nothing in flight and nothing scheduled
                if wake > tb.now:
                    yield tb.sim.timeout(wake - tb.now)
                continue
            budget = wake - tb.now
            if budget <= 0:
                continue  # something is due right now; re-run the loop
            try:
                desc = yield from h.recv_wait(vi, mode=self.wait_mode,
                                              timeout=budget)
            except VipTimeout:
                continue
            att = inflight.popleft()
            s = recv_slots.popleft()
            marker = RESP_OK
            if desc.status is CompletionStatus.SUCCESS:
                marker = h.read(buf, 1, offset=s * resp_slot)[0]
            yield from h.post_recv(vi, Descriptor.recv(
                [h.segment(buf, mh, s * resp_slot, resp_slot)]))
            recv_slots.append(s)
            free_slots.append(att.slot)
            if att.zombie:
                continue  # already resolved or requeued; discard
            rec = att.rec
            if desc.status is not CompletionStatus.SUCCESS:
                _retry_or_fail(rec)
            elif marker == RESP_SHED:
                stats["shed_naks"] += 1
                _retry_or_fail(rec)
            elif marker == RESP_EXPIRED:
                _resolve(rec, "deadline_exceeded")
            elif tb.now > rec.deadline:
                _resolve(rec, "deadline_exceeded")
            else:
                _resolve(rec, None, tb.now - rec.sched)

        # consume outstanding zombie responses so a fully-successful
        # client can disconnect cleanly (the server NAK-flushes its
        # queue on exit, so these arrive promptly or not at all)
        while (inflight and stats["completed"] == n and tb.now < deadline):
            try:
                yield from h.recv_wait(vi, mode=self.wait_mode,
                                       timeout=deadline - tb.now)
            except VipTimeout:
                break
            att = inflight.popleft()
            s = recv_slots.popleft()
            yield from h.post_recv(vi, Descriptor.recv(
                [h.segment(buf, mh, s * resp_slot, resp_slot)]))
            recv_slots.append(s)
            free_slots.append(att.slot)
