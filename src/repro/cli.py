"""Command-line entry point: ``vibe <command>``.

Regenerates the paper's tables and figures as text on stdout::

    vibe table1                      # non-data-transfer costs
    vibe figure 1                    # memory registration sweep
    vibe figure 3 --sizes 4,1024     # base latency/bandwidth, polling
    vibe run base_latency --provider clan
    vibe list                        # all suite benchmark names
"""

from __future__ import annotations

import argparse
import sys

from .vibe import (
    SUITE,
    ascii_plot,
    base_bandwidth,
    base_latency,
    client_server,
    memreg_sweep,
    multivi_bandwidth,
    multivi_latency,
    nondata_costs,
    render_figure,
    render_memreg,
    render_table1,
    reuse_bandwidth,
    reuse_latency,
    run_benchmark,
)
from .via.constants import WaitMode
from .vibe.executor import parallel_map

PROVIDERS = ("mvia", "bvia", "clan")


def _sizes(arg: str | None) -> list[int] | None:
    if not arg:
        return None
    return [int(x) for x in arg.split(",")]


def _render(args, results, metric, title):
    if getattr(args, "plot", False):
        return ascii_plot(results, metric, title)
    return render_figure(results, metric, title)


def cmd_table1(args) -> None:
    results = dict(zip(args.providers, parallel_map(
        nondata_costs, [(p,) for p in args.providers], args.jobs)))
    print(render_table1(results))


def cmd_figure(args) -> None:
    sizes = _sizes(args.sizes)
    jobs = args.jobs
    n = args.number
    if n in (1, 2):
        results = dict(zip(args.providers, parallel_map(
            memreg_sweep, [(p, sizes) for p in args.providers], jobs)))
        metric = "register_us" if n == 1 else "deregister_us"
        print(render_memreg(results, metric))
    elif n == 3:
        lat = parallel_map(base_latency,
                           [(p, sizes) for p in args.providers], jobs)
        print(_render(args, lat, "latency_us",
                      "Fig. 3: base latency, polling (us)"))
        print()
        bw = parallel_map(base_bandwidth,
                          [(p, sizes) for p in args.providers], jobs)
        print(_render(args, bw, "bandwidth_mbs",
                      "Fig. 3: base bandwidth, polling (MB/s)"))
    elif n == 4:
        lat = parallel_map(
            base_latency,
            [(p, sizes, WaitMode.BLOCK) for p in args.providers], jobs)
        print(render_figure(lat, "latency_us",
                            "Fig. 4: base latency, blocking (us)"))
        print()
        print(render_figure(lat, "cpu_send",
                            "Fig. 4: sender CPU utilisation, blocking"))
    elif n == 5:
        lat = reuse_latency("bvia", sizes, jobs=jobs)
        print(render_figure(lat, "latency_us",
                            "Fig. 5: BVIA latency vs buffer reuse (us)"))
        print()
        bw = reuse_bandwidth("bvia", sizes, jobs=jobs)
        print(render_figure(bw, "bandwidth_mbs",
                            "Fig. 5: BVIA bandwidth vs buffer reuse (MB/s)"))
    elif n == 6:
        lat = parallel_map(multivi_latency,
                           [(p,) for p in args.providers], jobs)
        print(render_figure(lat, "latency_us",
                            "Fig. 6: latency vs #VIs, 4 B messages (us)"))
        print()
        bw = parallel_map(multivi_bandwidth,
                          [(p,) for p in args.providers], jobs)
        print(render_figure(bw, "bandwidth_mbs",
                            "Fig. 6: bandwidth vs #VIs, 4 KiB messages"))
    elif n == 7:
        for req in (16, 256):
            res = parallel_map(client_server,
                               [(p, req, sizes) for p in args.providers],
                               jobs)
            print(render_figure(
                res, "tps",
                f"Fig. 7: client/server, request={req} B (transactions/s)"))
            print()
    else:
        sys.exit(f"no figure {n}; the paper has figures 1-7")


def cmd_run(args) -> None:
    provider = args.provider
    if args.provider_spec:
        from .providers.custom import load_spec

        provider = load_spec(args.provider_spec)
    kwargs = {}
    if args.fidelity != "packet":
        # only non-default fidelity is forwarded, so default runs keep
        # their exact result metadata (fidelity never reaches params)
        kwargs["fidelity"] = args.fidelity
    if args.warm_start:
        # every testbed the benchmark builds restores from a shared
        # construction checkpoint; results are byte-identical to cold
        from .snap import clear_pool, enable_warm_start

        enable_warm_start(True)
    try:
        result = run_benchmark(args.benchmark, provider, jobs=args.jobs,
                               **kwargs)
    finally:
        if args.warm_start:
            enable_warm_start(False)
            clear_pool()
    if isinstance(result, list):
        for r in result:
            print(r.table())
            print()
    else:
        print(result.table())
    if args.json_out:
        from .vibe.metrics import results_to_json

        with open(args.json_out, "w") as fh:
            fh.write(results_to_json(result))
        print(f"results written to {args.json_out}")


def cmd_list(_args) -> None:
    for name in SUITE:
        print(name)


def cmd_breakdown(args) -> None:
    from .models.breakdown import latency_breakdown, render_breakdowns

    if args.compare:
        bds = [latency_breakdown(p, args.size) for p in args.providers]
        print(render_breakdowns(bds))
    else:
        bd = latency_breakdown(args.provider, args.size)
        print(bd.table())
        print(f"\nbottleneck: {bd.bottleneck()}")


def cmd_trace(args) -> None:
    from .models.breakdown import latency_breakdown
    from .providers import Testbed
    from .sim.trace import Tracer
    from .via import Descriptor

    tb = Testbed(args.provider)
    tb.sim.tracer = Tracer()
    out = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        region = h.alloc(max(args.size, 4))
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, "node1", 3)
        segs = [h.segment(region, mh, 0, args.size)]
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        region = h.alloc(max(args.size, 4))
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, args.size)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(3)
        yield from h.accept(req, vi)
        yield from h.recv_wait(vi)

    cproc = tb.spawn(client())
    sproc = tb.spawn(server())
    tb.run(cproc)
    tb.run(sproc)
    print(tb.sim.tracer.timeline())
    if args.trace_out:
        from .obs.perfetto import dumps_trace

        with open(args.trace_out, "w") as fh:
            fh.write(dumps_trace(tb.sim.tracer))
        print(f"chrome trace written to {args.trace_out}")


def cmd_profile(args) -> None:
    from .obs.profile import (
        combined_metrics_json,
        combined_trace_json,
        profile_transfer,
    )
    from .via.constants import Reliability

    reliability = None
    if args.reliability:
        reliability = Reliability(args.reliability)
    elif args.loss_rate:
        # an unreliable lossy ping-pong may never finish; default to the
        # level whose retransmission machinery the flag exists to show
        reliability = Reliability.RELIABLE_DELIVERY
    profiles = parallel_map(
        profile_transfer,
        [(p, args.size, args.seed, args.loss_rate, reliability,
          args.fidelity)
         for p in args.providers], args.jobs)
    for i, p in enumerate(profiles):
        if i:
            print()
        print(p.summary())
    if args.trace_out:
        with open(args.trace_out, "w") as fh:
            fh.write(combined_trace_json(profiles))
        print(f"\nchrome trace written to {args.trace_out}"
              " (load in ui.perfetto.dev or chrome://tracing)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(combined_metrics_json(profiles))
        print(f"metrics snapshot written to {args.metrics_out}")


def cmd_check(args) -> None:
    from .check import ALL_PROVIDERS, run_conformance

    providers = tuple(args.providers)
    if providers == PROVIDERS:
        # conformance should cover every stack unless explicitly narrowed
        providers = ALL_PROVIDERS
    report = run_conformance(providers, seed=args.seed,
                             logp=not args.no_logp)
    print(report.summary())
    if not report.ok:
        sys.exit(1)


def _chaos_scenarios(args) -> tuple | None:
    """--scenario values, comma-separable and repeatable."""
    if not args.scenario:
        return None
    return tuple(name for spec in args.scenario
                 for name in spec.split(",") if name)


def cmd_chaos(args) -> None:
    from .faults import run_chaos

    providers = tuple(args.providers)
    if providers == PROVIDERS:
        # chaos should batter every stack unless explicitly narrowed
        providers = None  # run_chaos defaults to ALL_PROVIDERS
    if args.rewind:
        _chaos_rewind(providers, args)
        return
    report = run_chaos(providers=providers,
                       scenarios=_chaos_scenarios(args),
                       seed=args.seed, quick=args.quick)
    print(report.summary())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(report.to_json())
        print(f"chaos report written to {args.json_out}")
    if not report.ok:
        sys.exit(1)


def _chaos_rewind(providers, args) -> None:
    """``vibe chaos --rewind``: checkpoint each cell just before its
    first fault arms, restore, and re-run the fault window traced."""
    from .faults.chaos import rewind_scenario
    from .faults.scenarios import SCENARIOS, get_scenario

    if providers is None:
        from .check import ALL_PROVIDERS

        providers = ALL_PROVIDERS
    names = _chaos_scenarios(args)
    if names:
        chosen = tuple(get_scenario(n) for n in names)
    else:
        chosen = tuple(sc for sc in SCENARIOS if sc.workload == "stream")
    print(f"chaos rewind: {len(chosen)} scenarios x "
          f"{len(providers)} providers")
    ok = True
    for sc in chosen:
        for p in providers:
            if sc.workload != "stream":
                print(f"  {sc.name:<20} {p:<8} skipped "
                      f"({sc.workload} workload)")
                continue
            rw = rewind_scenario(p, sc, seed=args.seed, quick=args.quick)
            print(rw.summary())
            ok = ok and rw.result.ok and rw.matches_cold
    print("PASS" if ok else "FAIL")
    if not ok:
        sys.exit(1)


def cmd_cluster(args) -> None:
    from .check import ALL_PROVIDERS
    from .cluster import QUICK_RATE_GRID, ClusterConfig, run_cluster

    providers = (ALL_PROVIDERS if args.provider == "all"
                 else tuple(args.provider.split(",")))
    extra = {}
    if args.deadline_us is not None:
        extra["deadline_us"] = args.deadline_us
    cfg = ClusterConfig(
        topology=args.topology, nodes=args.nodes, servers=args.servers,
        clients=args.clients, requests=args.requests,
        req_size=args.req_size, resp_size=args.resp_size,
        window=args.window, arrival=args.arrival, service=args.service,
        mode=args.mode, think_us=args.think_us, seed=args.seed,
        fidelity=args.fidelity,
        retry=args.retry, server_policy=args.server_policy,
        tenants=args.tenants, slo_p99_us=args.slo_p99_us,
        slo_goodput=args.slo_goodput, **extra,
    )
    rates = None
    if args.rate:
        rates = tuple(float(r) for r in args.rate.split(","))
    elif args.quick:
        rates = QUICK_RATE_GRID
    if args.shards > 1 and args.check:
        print("--check needs the whole cluster in one simulator; "
              "drop --shards or --check", file=sys.stderr)
        sys.exit(2)
    if args.shards > 1 and args.warm_start:
        print("--warm-start restores one-simulator construction "
              "checkpoints; drop --shards or --warm-start",
              file=sys.stderr)
        sys.exit(2)
    report = run_cluster(providers, cfg, rates=rates, jobs=args.jobs,
                         check=args.check, warm_start=args.warm_start,
                         checkpoint_dir=args.checkpoint_dir,
                         shards=args.shards,
                         shard_workers=args.shard_workers)
    print(report.summary())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(report.to_json())
        print(f"cluster report written to {args.json_out}")
    if not report.ok:
        sys.exit(1)


def cmd_save(args) -> None:
    from .vibe.repository import ResultRepository

    repo = ResultRepository(args.repo)
    names = args.benchmarks or ["nondata", "memreg", "base_latency",
                                "base_bandwidth", "client_server"]
    for name in names:
        result = run_benchmark(name, args.provider)
        results = result if isinstance(result, list) else [result]
        for r in results:
            path = repo.save(args.platform, r)
            print(f"saved {path}")


def cmd_report(args) -> None:
    from .vibe.reportgen import generate_report

    path = generate_report(args.out, providers=tuple(args.providers),
                           quick=args.quick, jobs=args.jobs)
    print(f"report written to {path}")


def cmd_compare(args) -> None:
    from .vibe.repository import ResultRepository

    repo = ResultRepository(args.repo)
    print(repo.compare(args.benchmark, args.metric, args.platforms))


def cmd_serve(args) -> None:
    """Run the experiment service until SIGTERM/SIGINT, then drain."""
    import signal
    import threading

    from .serve import ExperimentService

    svc = ExperimentService(host=args.host, port=args.port,
                            workers=args.workers,
                            cache_dir=args.cache_dir,
                            queue_capacity=args.queue_capacity,
                            quick_quiesce=args.quick_quiesce)
    svc.start()
    stop = threading.Event()

    def _signalled(_signum, _frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _signalled)
    signal.signal(signal.SIGINT, _signalled)
    print(f"vibe serve: listening on {svc.url} "
          f"({svc.workers} warm workers, cache in {svc.cache_dir})",
          flush=True)
    while not stop.is_set():
        stop.wait(0.5)
    mode = "quick-quiesce" if svc.quick_quiesce else "drain"
    print(f"vibe serve: shutting down ({mode})", flush=True)
    svc.stop()
    print("vibe serve: stopped", flush=True)


def _submit_spec(args) -> dict:
    """The experiment spec a ``vibe submit`` invocation describes."""
    if args.spec_kind == "run":
        params = {"benchmark": args.benchmark, "provider": args.provider,
                  "fidelity": args.fidelity}
        if args.sizes:
            params["sizes"] = _sizes(args.sizes)
    elif args.spec_kind == "cluster":
        params = _cluster_spec_params(args)
    else:
        params = {"quick": args.quick}
        scenarios = _chaos_scenarios(args)
        if scenarios:
            params["scenarios"] = list(scenarios)
        if args.provider != "all":
            params["providers"] = args.provider.split(",")
    return {"kind": args.spec_kind, "params": params, "seed": args.seed}


def _event_line(event: dict) -> str:
    kind = event["event"]
    if kind in ("queued", "queue"):
        return f"queue position {event['position']}"
    if kind == "plan":
        return (f"plan: {event['cells']} cells "
                f"({event['cached_cells']} cached)")
    if kind == "cell":
        src = "cache" if event.get("cache_hit") else "sim"
        label = ""
        if event.get("provider"):
            rate = event.get("rate")
            label = f" {event['provider']}@" + \
                (f"{rate:g}rps" if rate is not None else "closed")
        m = event.get("metrics") or {}
        stats = ""
        if m.get("goodput_rps") is not None:
            stats = (f" goodput={m['goodput_rps']:.0f}rps"
                     f" p99={m['p99_us']:.0f}us")
        return (f"cell {event['done']}/{event['total']}"
                f"{label} [{src}]{stats}")
    if kind == "done":
        return "done" + (" (cache hit)" if event.get("cache_hit") else "")
    if kind == "failed":
        return f"failed: {event.get('error')}"
    if kind == "cancelled":
        return f"cancelled ({event.get('where')})"
    return kind


def cmd_submit(args) -> None:
    from .serve.client import ServiceClient, ServiceError

    spec = _submit_spec(args)
    client = ServiceClient(args.server, client=args.client)
    try:
        job = client.submit(spec)
        job_id = job["id"]
        position = job.get("queue_position")
        print(f"submitted {job_id} ({job['label']}) state={job['state']}"
              + (f" position={position}" if position is not None else ""),
              flush=True)
        if args.follow:
            for event in client.follow(job_id):
                print(f"  {_event_line(event)}", flush=True)
            job = client.job(job_id)
        elif args.wait:
            job = client.wait(job_id, timeout=args.timeout)
        else:
            return
        if job["state"] != "done":
            sys.exit(f"job {job_id} {job['state']}: {job.get('error')}")
        body, hit = client.result(job_id)
    except ServiceError as exc:
        sys.exit(str(exc))
    marker = "cache hit" if hit else "computed"
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(body)
        print(f"result written to {args.json_out} ({marker})")
    else:
        print(f"# result ({marker})")
        print(body)


def cmd_jobs(args) -> None:
    import json

    from .serve.client import ServiceClient, ServiceError

    client = ServiceClient(args.server)
    try:
        if args.job_id and args.cancel:
            out = client.cancel(args.job_id)
            print(f"{args.job_id}: cancelled={out['cancelled']} "
                  f"state={out['state']}")
        elif args.job_id:
            print(json.dumps(client.job(args.job_id), indent=2,
                             sort_keys=True))
        else:
            jobs = client.jobs()
            if not jobs:
                print("no jobs")
                return
            print(f"{'id':<12} {'state':<10} {'cells':<8} "
                  f"{'cache':<6} {'client':<12} label")
            for job in jobs:
                cells = f"{job['cells_done']}/{job['cells_total']}"
                cache = "hit" if job["cache_hit"] else "-"
                print(f"{job['id']:<12} {job['state']:<10} {cells:<8} "
                      f"{cache:<6} {job['client']:<12} {job['label']}")
    except ServiceError as exc:
        sys.exit(str(exc))


def _add_cluster_identity_flags(p: argparse.ArgumentParser) -> None:
    """The cluster flags that define *which* experiment runs.

    Shared by ``vibe cluster`` (direct) and ``vibe submit cluster``
    (via the service), so one sweep spelled either way carries the same
    identity — and therefore the same cell cache keys and result bytes.
    """
    p.add_argument("--provider", default="all",
                   help='comma-separated providers, or "all" '
                        "(default: all four)")
    p.add_argument("--topology", default="star",
                   choices=["star", "dumbbell", "fattree"])
    p.add_argument("--nodes", type=int, default=4,
                   help="total nodes; the first --servers of them "
                        "run servers (default 4)")
    p.add_argument("--servers", type=int, default=1)
    p.add_argument("--clients", type=int, default=8,
                   help="client processes, round-robin over the "
                        "non-server nodes (default 8)")
    p.add_argument("--rate", metavar="RPS[,RPS...]",
                   help="offered-load grid in requests/s "
                        "(default: geometric 2k..64k)")
    p.add_argument("--requests", type=int, default=16,
                   help="requests per client per point (default 16)")
    p.add_argument("--req-size", type=int, default=128)
    p.add_argument("--resp-size", type=int, default=1024)
    p.add_argument("--window", type=int, default=4,
                   help="per-client outstanding-request bound")
    p.add_argument("--arrival", default="poisson",
                   choices=["poisson", "uniform", "burst"])
    p.add_argument("--service", default="fixed:20", metavar="SPEC",
                   help="server service-time model: fixed:T, exp:M, "
                        "bytes:C or none (default fixed:20)")
    p.add_argument("--mode", default="open",
                   choices=["open", "closed"])
    p.add_argument("--think-us", type=float, default=0.0,
                   help="closed-loop think time between requests")
    p.add_argument("--retry", default="off", metavar="SPEC",
                   help='client retry policy: "off", "on", or '
                        '"budget=3,base=200,cap=5000,jitter=0.5,'
                        'timeout=50000" (us; default off)')
    p.add_argument("--server-policy", default="none", metavar="SPEC",
                   help='server admission control: "none" or '
                        '"depth=64,shed=tail|deadline,conns=16" '
                        "(default none)")
    p.add_argument("--tenants", type=int, default=1,
                   help="tenant groups (client i belongs to tenant "
                        "i %% N); each gets its own latency "
                        "histogram and SLO verdict (default 1)")
    p.add_argument("--slo-p99-us", type=float, default=10_000.0,
                   help="per-tenant SLO: p99 latency target in us "
                        "(<=0 disables; default 10000)")
    p.add_argument("--slo-goodput", type=float, default=0.9,
                   help="per-tenant SLO: goodput floor as a fraction "
                        "of the realized offered rate (default 0.9)")
    p.add_argument("--deadline-us", type=float, default=None,
                   help="run deadline per point in simulated us "
                        "(default 30s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fidelity", default="packet",
                   choices=["packet", "auto", "flow"],
                   help="auto/flow fast-forwards uncontended "
                        "steady-state transfers")
    p.add_argument("--check", action="store_true",
                   help="run every point under the online "
                        "conformance checker")
    p.add_argument("--quick", action="store_true",
                   help="3-point rate grid (CI-sized)")


def _cluster_spec_params(args) -> dict:
    """Experiment-spec params for a cluster invocation's identity flags."""
    params = {
        "topology": args.topology, "nodes": args.nodes,
        "servers": args.servers, "clients": args.clients,
        "requests": args.requests, "req_size": args.req_size,
        "resp_size": args.resp_size, "window": args.window,
        "arrival": args.arrival, "service": args.service,
        "mode": args.mode, "think_us": args.think_us,
        "fidelity": args.fidelity, "retry": args.retry,
        "server_policy": args.server_policy, "tenants": args.tenants,
        "slo_p99_us": args.slo_p99_us, "slo_goodput": args.slo_goodput,
        "check": bool(args.check),
    }
    if args.deadline_us is not None:
        params["deadline_us"] = args.deadline_us
    if args.provider != "all":
        params["providers"] = args.provider.split(",")
    if args.rate:
        params["rates"] = [float(r) for r in args.rate.split(",")]
    elif args.quick:
        params["quick"] = True
    return params


def _add_submit_common(p: argparse.ArgumentParser) -> None:
    from .serve.service import DEFAULT_PORT

    p.add_argument("--server",
                   default=f"http://127.0.0.1:{DEFAULT_PORT}",
                   help="service base URL (default %(default)s)")
    p.add_argument("--client", default="",
                   help="client name for queue fairness "
                        "(default: your IP as the service sees it)")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job finishes, then print or "
                        "write its result")
    p.add_argument("--follow", action="store_true",
                   help="stream the job's live events (SSE), then "
                        "fetch the result")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait timeout in seconds (default 600)")
    p.add_argument("--json-out", metavar="FILE.json",
                   help="write the result payload to FILE (the bytes "
                        "match the direct CLI's --json-out exactly)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vibe",
        description="VIBe micro-benchmark suite over simulated VIA providers",
    )
    parser.add_argument("--providers", default=",".join(PROVIDERS),
                        type=lambda s: s.split(","),
                        help="comma-separated provider list")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for independent simulations "
                             "(default 1 = serial; -1 = all cores); results "
                             "are identical for any value")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: non-data-transfer costs")

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", type=int)
    fig.add_argument("--sizes", help="comma-separated message sizes")
    fig.add_argument("--plot", action="store_true",
                     help="ASCII plot instead of a table")

    run = sub.add_parser("run", help="run one suite benchmark")
    run.add_argument("benchmark", choices=sorted(SUITE))
    run.add_argument("--provider", default="clan")
    run.add_argument("--provider-spec", metavar="JSON",
                     help="run against a user-defined provider spec file")
    run.add_argument("--fidelity", default="packet",
                     choices=["packet", "auto", "flow"],
                     help="simulation fidelity: packet = every event, "
                          "auto/flow = batch clean steady-state bursts "
                          "(data-transfer benchmarks only)")
    run.add_argument("--warm-start", action="store_true",
                     help="restore each cell's testbed from a shared "
                          "construction checkpoint (byte-identical "
                          "results, less wall-clock)")
    run.add_argument("--json-out", metavar="FILE.json",
                     help="also write the results as canonical JSON "
                          "(the bytes a served `submit run` returns)")

    sub.add_parser("list", help="list benchmark names")

    bd = sub.add_parser("breakdown",
                        help="per-component latency breakdown (paper §3)")
    bd.add_argument("--provider", default="clan")
    bd.add_argument("--size", type=int, default=1024)
    bd.add_argument("--compare", action="store_true",
                    help="all providers side by side")

    tr = sub.add_parser("trace", help="dump one message's event timeline")
    tr.add_argument("--provider", default="clan")
    tr.add_argument("--size", type=int, default=64)
    tr.add_argument("--trace-out", metavar="FILE.json",
                    help="also export the timeline as a Chrome trace")

    prof = sub.add_parser(
        "profile",
        help="profile one canonical ping-pong per provider (spans, "
             "metrics, Perfetto trace)")
    prof.add_argument("--size", type=int, default=256)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--loss-rate", type=float, default=0.0,
                      help="inject wire loss; implies reliable_delivery "
                           "unless --reliability is given")
    prof.add_argument("--reliability",
                      choices=["unreliable", "reliable_delivery",
                               "reliable_reception"],
                      help="reliability level of the profiled VIs")
    prof.add_argument("--fidelity", default="packet",
                      choices=["packet", "auto", "flow"],
                      help="auto/flow fast-forwards clean bursts and "
                           "reports the skipped fraction (disables the "
                           "per-event trace)")
    prof.add_argument("--trace-out", metavar="FILE.json",
                      help="write a Perfetto-loadable Chrome trace")
    prof.add_argument("--metrics-out", metavar="FILE.json",
                      help="write the metrics registry snapshot as JSON")

    chk = sub.add_parser(
        "check",
        help="conformance: spec invariants online, differential "
             "cross-provider comparison, LogGP self-consistency")
    chk.add_argument("--seed", type=int, default=0)
    chk.add_argument("--no-logp", action="store_true",
                     help="skip the LogGP self-consistency fit")

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection campaign: named fault scenarios on every "
             "provider under the online conformance checker")
    chaos.add_argument("--quick", action="store_true",
                       help="reduced message counts and deadlines "
                            "(CI-sized; same scenario list)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--scenario", action="append", metavar="NAME",
                       help="run only these scenarios (repeatable, "
                            "comma-separable); default: all of them")
    chaos.add_argument("--json-out", metavar="FILE.json",
                       help="also write the report as JSON")
    chaos.add_argument("--rewind", action="store_true",
                       help="checkpoint each cell just before its first "
                            "fault arms, restore, and replay only the "
                            "fault window under a tracer")

    clus = sub.add_parser(
        "cluster",
        help="N-node serving cluster: capacity sweep across offered "
             "loads, per-provider saturation knee")
    _add_cluster_identity_flags(clus)
    clus.add_argument("--json-out", metavar="FILE.json",
                      help="also write the report as JSON")
    clus.add_argument("--shards", type=int, default=1,
                      help="partition each point's simulation across N "
                           "shard simulators exchanging timestamped wire "
                           "records; the report is byte-identical to "
                           "--shards 1 (default 1)")
    clus.add_argument("--shard-workers", default="process",
                      choices=["process", "inline"],
                      help="shard transport: one worker process per "
                           "shard, or all shards stepped inline "
                           "(debugging; same bytes)")
    clus.add_argument("--warm-start", action="store_true",
                      help="restore each cell's testbed from a shared "
                           "construction checkpoint (byte-identical "
                           "report, less wall-clock)")
    clus.add_argument("--checkpoint-dir", metavar="DIR",
                      help="persist each finished cell to DIR; re-running "
                           "with the same DIR skips completed cells, so "
                           "an interrupted campaign resumes where it "
                           "stopped")

    save = sub.add_parser("save",
                          help="store results in a repository (paper §5)")
    save.add_argument("--repo", required=True)
    save.add_argument("--platform", required=True)
    save.add_argument("--provider", default="clan")
    save.add_argument("benchmarks", nargs="*", metavar="benchmark")

    rep = sub.add_parser("report",
                         help="regenerate the whole paper into a directory")
    rep.add_argument("--out", default="report")
    rep.add_argument("--quick", action="store_true",
                     help="reduced sweeps (seconds instead of a minute)")

    cmp_ = sub.add_parser("compare", help="compare stored platform results")
    cmp_.add_argument("--repo", required=True)
    cmp_.add_argument("benchmark")
    cmp_.add_argument("metric")
    cmp_.add_argument("--platforms", type=lambda s: s.split(","),
                      default=None)

    from .serve.service import DEFAULT_PORT

    srv = sub.add_parser(
        "serve",
        help="run the experiment service: job queue, warm worker pool, "
             "content-addressed result cache, live SSE streams")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=DEFAULT_PORT,
                     help="listen port (0 = pick a free one; "
                          "default %(default)s)")
    srv.add_argument("--workers", type=int, default=0,
                     help="simulation worker processes "
                          "(default: all cores)")
    srv.add_argument("--cache-dir", default=".vibe-cache", metavar="DIR",
                     help="result + cell cache directory "
                          "(default %(default)s); interchangeable with "
                          "`vibe cluster --checkpoint-dir`")
    srv.add_argument("--queue-capacity", type=int, default=64,
                     help="max queued jobs before submissions get 429 "
                          "(default 64)")
    srv.add_argument("--quick-quiesce", action="store_true",
                     help="on shutdown, cancel queued jobs instead of "
                          "draining them (running cells still finish "
                          "and persist)")

    sm = sub.add_parser(
        "submit",
        help="submit an experiment to a running `vibe serve` instance")
    smsub = sm.add_subparsers(dest="spec_kind", required=True)
    smr = smsub.add_parser("run", help="one suite benchmark")
    smr.add_argument("benchmark", choices=sorted(SUITE))
    smr.add_argument("--provider", default="clan")
    smr.add_argument("--fidelity", default="packet",
                     choices=["packet", "auto", "flow"])
    smr.add_argument("--sizes", help="comma-separated message sizes")
    smr.add_argument("--seed", type=int, default=0)
    _add_submit_common(smr)
    smc = smsub.add_parser("cluster", help="a cluster capacity sweep")
    _add_cluster_identity_flags(smc)
    _add_submit_common(smc)
    smx = smsub.add_parser("chaos", help="a fault-injection campaign")
    smx.add_argument("--provider", default="all",
                     help='comma-separated providers, or "all"')
    smx.add_argument("--scenario", action="append", metavar="NAME",
                     help="run only these scenarios (repeatable, "
                          "comma-separable)")
    smx.add_argument("--quick", action="store_true")
    smx.add_argument("--seed", type=int, default=0)
    _add_submit_common(smx)

    jb = sub.add_parser(
        "jobs", help="list, inspect, or cancel service jobs")
    jb.add_argument("job_id", nargs="?",
                    help="job id to inspect (omit to list all)")
    jb.add_argument("--cancel", action="store_true",
                    help="cancel the given job")
    jb.add_argument("--server",
                    default=f"http://127.0.0.1:{DEFAULT_PORT}",
                    help="service base URL (default %(default)s)")
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    {
        "table1": cmd_table1,
        "figure": cmd_figure,
        "run": cmd_run,
        "list": cmd_list,
        "breakdown": cmd_breakdown,
        "trace": cmd_trace,
        "profile": cmd_profile,
        "check": cmd_check,
        "chaos": cmd_chaos,
        "cluster": cmd_cluster,
        "save": cmd_save,
        "report": cmd_report,
        "compare": cmd_compare,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    main()
