"""Command-line entry point: ``vibe <command>``.

Regenerates the paper's tables and figures as text on stdout::

    vibe table1                      # non-data-transfer costs
    vibe figure 1                    # memory registration sweep
    vibe figure 3 --sizes 4,1024     # base latency/bandwidth, polling
    vibe run base_latency --provider clan
    vibe list                        # all suite benchmark names
"""

from __future__ import annotations

import argparse
import sys

from .vibe import (
    SUITE,
    ascii_plot,
    base_bandwidth,
    base_latency,
    client_server,
    memreg_sweep,
    multivi_bandwidth,
    multivi_latency,
    nondata_costs,
    render_figure,
    render_memreg,
    render_table1,
    reuse_bandwidth,
    reuse_latency,
    run_benchmark,
)
from .via.constants import WaitMode
from .vibe.executor import parallel_map

PROVIDERS = ("mvia", "bvia", "clan")


def _sizes(arg: str | None) -> list[int] | None:
    if not arg:
        return None
    return [int(x) for x in arg.split(",")]


def _render(args, results, metric, title):
    if getattr(args, "plot", False):
        return ascii_plot(results, metric, title)
    return render_figure(results, metric, title)


def cmd_table1(args) -> None:
    results = dict(zip(args.providers, parallel_map(
        nondata_costs, [(p,) for p in args.providers], args.jobs)))
    print(render_table1(results))


def cmd_figure(args) -> None:
    sizes = _sizes(args.sizes)
    jobs = args.jobs
    n = args.number
    if n in (1, 2):
        results = dict(zip(args.providers, parallel_map(
            memreg_sweep, [(p, sizes) for p in args.providers], jobs)))
        metric = "register_us" if n == 1 else "deregister_us"
        print(render_memreg(results, metric))
    elif n == 3:
        lat = parallel_map(base_latency,
                           [(p, sizes) for p in args.providers], jobs)
        print(_render(args, lat, "latency_us",
                      "Fig. 3: base latency, polling (us)"))
        print()
        bw = parallel_map(base_bandwidth,
                          [(p, sizes) for p in args.providers], jobs)
        print(_render(args, bw, "bandwidth_mbs",
                      "Fig. 3: base bandwidth, polling (MB/s)"))
    elif n == 4:
        lat = parallel_map(
            base_latency,
            [(p, sizes, WaitMode.BLOCK) for p in args.providers], jobs)
        print(render_figure(lat, "latency_us",
                            "Fig. 4: base latency, blocking (us)"))
        print()
        print(render_figure(lat, "cpu_send",
                            "Fig. 4: sender CPU utilisation, blocking"))
    elif n == 5:
        lat = reuse_latency("bvia", sizes, jobs=jobs)
        print(render_figure(lat, "latency_us",
                            "Fig. 5: BVIA latency vs buffer reuse (us)"))
        print()
        bw = reuse_bandwidth("bvia", sizes, jobs=jobs)
        print(render_figure(bw, "bandwidth_mbs",
                            "Fig. 5: BVIA bandwidth vs buffer reuse (MB/s)"))
    elif n == 6:
        lat = parallel_map(multivi_latency,
                           [(p,) for p in args.providers], jobs)
        print(render_figure(lat, "latency_us",
                            "Fig. 6: latency vs #VIs, 4 B messages (us)"))
        print()
        bw = parallel_map(multivi_bandwidth,
                          [(p,) for p in args.providers], jobs)
        print(render_figure(bw, "bandwidth_mbs",
                            "Fig. 6: bandwidth vs #VIs, 4 KiB messages"))
    elif n == 7:
        for req in (16, 256):
            res = parallel_map(client_server,
                               [(p, req, sizes) for p in args.providers],
                               jobs)
            print(render_figure(
                res, "tps",
                f"Fig. 7: client/server, request={req} B (transactions/s)"))
            print()
    else:
        sys.exit(f"no figure {n}; the paper has figures 1-7")


def cmd_run(args) -> None:
    provider = args.provider
    if args.provider_spec:
        from .providers.custom import load_spec

        provider = load_spec(args.provider_spec)
    kwargs = {}
    if args.fidelity != "packet":
        # only non-default fidelity is forwarded, so default runs keep
        # their exact result metadata (fidelity never reaches params)
        kwargs["fidelity"] = args.fidelity
    if args.warm_start:
        # every testbed the benchmark builds restores from a shared
        # construction checkpoint; results are byte-identical to cold
        from .snap import clear_pool, enable_warm_start

        enable_warm_start(True)
    try:
        result = run_benchmark(args.benchmark, provider, jobs=args.jobs,
                               **kwargs)
    finally:
        if args.warm_start:
            enable_warm_start(False)
            clear_pool()
    if isinstance(result, list):
        for r in result:
            print(r.table())
            print()
    else:
        print(result.table())


def cmd_list(_args) -> None:
    for name in SUITE:
        print(name)


def cmd_breakdown(args) -> None:
    from .models.breakdown import latency_breakdown, render_breakdowns

    if args.compare:
        bds = [latency_breakdown(p, args.size) for p in args.providers]
        print(render_breakdowns(bds))
    else:
        bd = latency_breakdown(args.provider, args.size)
        print(bd.table())
        print(f"\nbottleneck: {bd.bottleneck()}")


def cmd_trace(args) -> None:
    from .models.breakdown import latency_breakdown
    from .providers import Testbed
    from .sim.trace import Tracer
    from .via import Descriptor

    tb = Testbed(args.provider)
    tb.sim.tracer = Tracer()
    out = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        region = h.alloc(max(args.size, 4))
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, "node1", 3)
        segs = [h.segment(region, mh, 0, args.size)]
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        region = h.alloc(max(args.size, 4))
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, args.size)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(3)
        yield from h.accept(req, vi)
        yield from h.recv_wait(vi)

    cproc = tb.spawn(client())
    sproc = tb.spawn(server())
    tb.run(cproc)
    tb.run(sproc)
    print(tb.sim.tracer.timeline())
    if args.trace_out:
        from .obs.perfetto import dumps_trace

        with open(args.trace_out, "w") as fh:
            fh.write(dumps_trace(tb.sim.tracer))
        print(f"chrome trace written to {args.trace_out}")


def cmd_profile(args) -> None:
    from .obs.profile import (
        combined_metrics_json,
        combined_trace_json,
        profile_transfer,
    )
    from .via.constants import Reliability

    reliability = None
    if args.reliability:
        reliability = Reliability(args.reliability)
    elif args.loss_rate:
        # an unreliable lossy ping-pong may never finish; default to the
        # level whose retransmission machinery the flag exists to show
        reliability = Reliability.RELIABLE_DELIVERY
    profiles = parallel_map(
        profile_transfer,
        [(p, args.size, args.seed, args.loss_rate, reliability,
          args.fidelity)
         for p in args.providers], args.jobs)
    for i, p in enumerate(profiles):
        if i:
            print()
        print(p.summary())
    if args.trace_out:
        with open(args.trace_out, "w") as fh:
            fh.write(combined_trace_json(profiles))
        print(f"\nchrome trace written to {args.trace_out}"
              " (load in ui.perfetto.dev or chrome://tracing)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(combined_metrics_json(profiles))
        print(f"metrics snapshot written to {args.metrics_out}")


def cmd_check(args) -> None:
    from .check import ALL_PROVIDERS, run_conformance

    providers = tuple(args.providers)
    if providers == PROVIDERS:
        # conformance should cover every stack unless explicitly narrowed
        providers = ALL_PROVIDERS
    report = run_conformance(providers, seed=args.seed,
                             logp=not args.no_logp)
    print(report.summary())
    if not report.ok:
        sys.exit(1)


def _chaos_scenarios(args) -> tuple | None:
    """--scenario values, comma-separable and repeatable."""
    if not args.scenario:
        return None
    return tuple(name for spec in args.scenario
                 for name in spec.split(",") if name)


def cmd_chaos(args) -> None:
    from .faults import run_chaos

    providers = tuple(args.providers)
    if providers == PROVIDERS:
        # chaos should batter every stack unless explicitly narrowed
        providers = None  # run_chaos defaults to ALL_PROVIDERS
    if args.rewind:
        _chaos_rewind(providers, args)
        return
    report = run_chaos(providers=providers,
                       scenarios=_chaos_scenarios(args),
                       seed=args.seed, quick=args.quick)
    print(report.summary())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(report.to_json())
        print(f"chaos report written to {args.json_out}")
    if not report.ok:
        sys.exit(1)


def _chaos_rewind(providers, args) -> None:
    """``vibe chaos --rewind``: checkpoint each cell just before its
    first fault arms, restore, and re-run the fault window traced."""
    from .faults.chaos import rewind_scenario
    from .faults.scenarios import SCENARIOS, get_scenario

    if providers is None:
        from .check import ALL_PROVIDERS

        providers = ALL_PROVIDERS
    names = _chaos_scenarios(args)
    if names:
        chosen = tuple(get_scenario(n) for n in names)
    else:
        chosen = tuple(sc for sc in SCENARIOS if sc.workload == "stream")
    print(f"chaos rewind: {len(chosen)} scenarios x "
          f"{len(providers)} providers")
    ok = True
    for sc in chosen:
        for p in providers:
            if sc.workload != "stream":
                print(f"  {sc.name:<20} {p:<8} skipped "
                      f"({sc.workload} workload)")
                continue
            rw = rewind_scenario(p, sc, seed=args.seed, quick=args.quick)
            print(rw.summary())
            ok = ok and rw.result.ok and rw.matches_cold
    print("PASS" if ok else "FAIL")
    if not ok:
        sys.exit(1)


def cmd_cluster(args) -> None:
    from .check import ALL_PROVIDERS
    from .cluster import QUICK_RATE_GRID, ClusterConfig, run_cluster

    providers = (ALL_PROVIDERS if args.provider == "all"
                 else tuple(args.provider.split(",")))
    extra = {}
    if args.deadline_us is not None:
        extra["deadline_us"] = args.deadline_us
    cfg = ClusterConfig(
        topology=args.topology, nodes=args.nodes, servers=args.servers,
        clients=args.clients, requests=args.requests,
        req_size=args.req_size, resp_size=args.resp_size,
        window=args.window, arrival=args.arrival, service=args.service,
        mode=args.mode, think_us=args.think_us, seed=args.seed,
        fidelity=args.fidelity,
        retry=args.retry, server_policy=args.server_policy,
        tenants=args.tenants, slo_p99_us=args.slo_p99_us,
        slo_goodput=args.slo_goodput, **extra,
    )
    rates = None
    if args.rate:
        rates = tuple(float(r) for r in args.rate.split(","))
    elif args.quick:
        rates = QUICK_RATE_GRID
    if args.shards > 1 and args.check:
        print("--check needs the whole cluster in one simulator; "
              "drop --shards or --check", file=sys.stderr)
        sys.exit(2)
    if args.shards > 1 and args.warm_start:
        print("--warm-start restores one-simulator construction "
              "checkpoints; drop --shards or --warm-start",
              file=sys.stderr)
        sys.exit(2)
    report = run_cluster(providers, cfg, rates=rates, jobs=args.jobs,
                         check=args.check, warm_start=args.warm_start,
                         checkpoint_dir=args.checkpoint_dir,
                         shards=args.shards,
                         shard_workers=args.shard_workers)
    print(report.summary())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(report.to_json())
        print(f"cluster report written to {args.json_out}")
    if not report.ok:
        sys.exit(1)


def cmd_save(args) -> None:
    from .vibe.repository import ResultRepository

    repo = ResultRepository(args.repo)
    names = args.benchmarks or ["nondata", "memreg", "base_latency",
                                "base_bandwidth", "client_server"]
    for name in names:
        result = run_benchmark(name, args.provider)
        results = result if isinstance(result, list) else [result]
        for r in results:
            path = repo.save(args.platform, r)
            print(f"saved {path}")


def cmd_report(args) -> None:
    from .vibe.reportgen import generate_report

    path = generate_report(args.out, providers=tuple(args.providers),
                           quick=args.quick, jobs=args.jobs)
    print(f"report written to {path}")


def cmd_compare(args) -> None:
    from .vibe.repository import ResultRepository

    repo = ResultRepository(args.repo)
    print(repo.compare(args.benchmark, args.metric, args.platforms))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vibe",
        description="VIBe micro-benchmark suite over simulated VIA providers",
    )
    parser.add_argument("--providers", default=",".join(PROVIDERS),
                        type=lambda s: s.split(","),
                        help="comma-separated provider list")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes for independent simulations "
                             "(default 1 = serial; -1 = all cores); results "
                             "are identical for any value")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: non-data-transfer costs")

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", type=int)
    fig.add_argument("--sizes", help="comma-separated message sizes")
    fig.add_argument("--plot", action="store_true",
                     help="ASCII plot instead of a table")

    run = sub.add_parser("run", help="run one suite benchmark")
    run.add_argument("benchmark", choices=sorted(SUITE))
    run.add_argument("--provider", default="clan")
    run.add_argument("--provider-spec", metavar="JSON",
                     help="run against a user-defined provider spec file")
    run.add_argument("--fidelity", default="packet",
                     choices=["packet", "auto", "flow"],
                     help="simulation fidelity: packet = every event, "
                          "auto/flow = batch clean steady-state bursts "
                          "(data-transfer benchmarks only)")
    run.add_argument("--warm-start", action="store_true",
                     help="restore each cell's testbed from a shared "
                          "construction checkpoint (byte-identical "
                          "results, less wall-clock)")

    sub.add_parser("list", help="list benchmark names")

    bd = sub.add_parser("breakdown",
                        help="per-component latency breakdown (paper §3)")
    bd.add_argument("--provider", default="clan")
    bd.add_argument("--size", type=int, default=1024)
    bd.add_argument("--compare", action="store_true",
                    help="all providers side by side")

    tr = sub.add_parser("trace", help="dump one message's event timeline")
    tr.add_argument("--provider", default="clan")
    tr.add_argument("--size", type=int, default=64)
    tr.add_argument("--trace-out", metavar="FILE.json",
                    help="also export the timeline as a Chrome trace")

    prof = sub.add_parser(
        "profile",
        help="profile one canonical ping-pong per provider (spans, "
             "metrics, Perfetto trace)")
    prof.add_argument("--size", type=int, default=256)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--loss-rate", type=float, default=0.0,
                      help="inject wire loss; implies reliable_delivery "
                           "unless --reliability is given")
    prof.add_argument("--reliability",
                      choices=["unreliable", "reliable_delivery",
                               "reliable_reception"],
                      help="reliability level of the profiled VIs")
    prof.add_argument("--fidelity", default="packet",
                      choices=["packet", "auto", "flow"],
                      help="auto/flow fast-forwards clean bursts and "
                           "reports the skipped fraction (disables the "
                           "per-event trace)")
    prof.add_argument("--trace-out", metavar="FILE.json",
                      help="write a Perfetto-loadable Chrome trace")
    prof.add_argument("--metrics-out", metavar="FILE.json",
                      help="write the metrics registry snapshot as JSON")

    chk = sub.add_parser(
        "check",
        help="conformance: spec invariants online, differential "
             "cross-provider comparison, LogGP self-consistency")
    chk.add_argument("--seed", type=int, default=0)
    chk.add_argument("--no-logp", action="store_true",
                     help="skip the LogGP self-consistency fit")

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection campaign: named fault scenarios on every "
             "provider under the online conformance checker")
    chaos.add_argument("--quick", action="store_true",
                       help="reduced message counts and deadlines "
                            "(CI-sized; same scenario list)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--scenario", action="append", metavar="NAME",
                       help="run only these scenarios (repeatable, "
                            "comma-separable); default: all of them")
    chaos.add_argument("--json-out", metavar="FILE.json",
                       help="also write the report as JSON")
    chaos.add_argument("--rewind", action="store_true",
                       help="checkpoint each cell just before its first "
                            "fault arms, restore, and replay only the "
                            "fault window under a tracer")

    clus = sub.add_parser(
        "cluster",
        help="N-node serving cluster: capacity sweep across offered "
             "loads, per-provider saturation knee")
    clus.add_argument("--provider", default="all",
                      help='comma-separated providers, or "all" '
                           "(default: all four)")
    clus.add_argument("--topology", default="star",
                      choices=["star", "dumbbell", "fattree"])
    clus.add_argument("--nodes", type=int, default=4,
                      help="total nodes; the first --servers of them "
                           "run servers (default 4)")
    clus.add_argument("--servers", type=int, default=1)
    clus.add_argument("--clients", type=int, default=8,
                      help="client processes, round-robin over the "
                           "non-server nodes (default 8)")
    clus.add_argument("--rate", metavar="RPS[,RPS...]",
                      help="offered-load grid in requests/s "
                           "(default: geometric 2k..64k)")
    clus.add_argument("--requests", type=int, default=16,
                      help="requests per client per point (default 16)")
    clus.add_argument("--req-size", type=int, default=128)
    clus.add_argument("--resp-size", type=int, default=1024)
    clus.add_argument("--window", type=int, default=4,
                      help="per-client outstanding-request bound")
    clus.add_argument("--arrival", default="poisson",
                      choices=["poisson", "uniform", "burst"])
    clus.add_argument("--service", default="fixed:20", metavar="SPEC",
                      help="server service-time model: fixed:T, exp:M, "
                           "bytes:C or none (default fixed:20)")
    clus.add_argument("--mode", default="open",
                      choices=["open", "closed"])
    clus.add_argument("--think-us", type=float, default=0.0,
                      help="closed-loop think time between requests")
    clus.add_argument("--retry", default="off", metavar="SPEC",
                      help='client retry policy: "off", "on", or '
                           '"budget=3,base=200,cap=5000,jitter=0.5,'
                           'timeout=50000" (us; default off)')
    clus.add_argument("--server-policy", default="none", metavar="SPEC",
                      help='server admission control: "none" or '
                           '"depth=64,shed=tail|deadline,conns=16" '
                           "(default none)")
    clus.add_argument("--tenants", type=int, default=1,
                      help="tenant groups (client i belongs to tenant "
                           "i %% N); each gets its own latency "
                           "histogram and SLO verdict (default 1)")
    clus.add_argument("--slo-p99-us", type=float, default=10_000.0,
                      help="per-tenant SLO: p99 latency target in us "
                           "(<=0 disables; default 10000)")
    clus.add_argument("--slo-goodput", type=float, default=0.9,
                      help="per-tenant SLO: goodput floor as a fraction "
                           "of the realized offered rate (default 0.9)")
    clus.add_argument("--deadline-us", type=float, default=None,
                      help="run deadline per point in simulated us "
                           "(default 30s)")
    clus.add_argument("--seed", type=int, default=0)
    clus.add_argument("--fidelity", default="packet",
                      choices=["packet", "auto", "flow"],
                      help="auto/flow fast-forwards uncontended "
                           "steady-state transfers")
    clus.add_argument("--check", action="store_true",
                      help="run every point under the online "
                           "conformance checker")
    clus.add_argument("--quick", action="store_true",
                      help="3-point rate grid (CI-sized)")
    clus.add_argument("--json-out", metavar="FILE.json",
                      help="also write the report as JSON")
    clus.add_argument("--shards", type=int, default=1,
                      help="partition each point's simulation across N "
                           "shard simulators exchanging timestamped wire "
                           "records; the report is byte-identical to "
                           "--shards 1 (default 1)")
    clus.add_argument("--shard-workers", default="process",
                      choices=["process", "inline"],
                      help="shard transport: one worker process per "
                           "shard, or all shards stepped inline "
                           "(debugging; same bytes)")
    clus.add_argument("--warm-start", action="store_true",
                      help="restore each cell's testbed from a shared "
                           "construction checkpoint (byte-identical "
                           "report, less wall-clock)")
    clus.add_argument("--checkpoint-dir", metavar="DIR",
                      help="persist each finished cell to DIR; re-running "
                           "with the same DIR skips completed cells, so "
                           "an interrupted campaign resumes where it "
                           "stopped")

    save = sub.add_parser("save",
                          help="store results in a repository (paper §5)")
    save.add_argument("--repo", required=True)
    save.add_argument("--platform", required=True)
    save.add_argument("--provider", default="clan")
    save.add_argument("benchmarks", nargs="*", metavar="benchmark")

    rep = sub.add_parser("report",
                         help="regenerate the whole paper into a directory")
    rep.add_argument("--out", default="report")
    rep.add_argument("--quick", action="store_true",
                     help="reduced sweeps (seconds instead of a minute)")

    cmp_ = sub.add_parser("compare", help="compare stored platform results")
    cmp_.add_argument("--repo", required=True)
    cmp_.add_argument("benchmark")
    cmp_.add_argument("metric")
    cmp_.add_argument("--platforms", type=lambda s: s.split(","),
                      default=None)
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    {
        "table1": cmd_table1,
        "figure": cmd_figure,
        "run": cmd_run,
        "list": cmd_list,
        "breakdown": cmd_breakdown,
        "trace": cmd_trace,
        "profile": cmd_profile,
        "check": cmd_check,
        "chaos": cmd_chaos,
        "cluster": cmd_cluster,
        "save": cmd_save,
        "report": cmd_report,
        "compare": cmd_compare,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    main()
