"""LogP/LogGP parameter extraction from VIBe measurements.

The paper's introduction argues that the LogP model [12] — latency L,
overhead o, gap g, processors P — "is not sufficient to provide answers"
about VIA component behaviour.  This module makes that argument
quantitative:

- :func:`fit_loggp` extracts LogGP parameters (we add Gap-per-byte G,
  the standard long-message extension) from base latency/bandwidth
  sweeps by least squares;
- :func:`evaluate_fit` scores the model's predictions against *other*
  VIBe micro-benchmarks (buffer reuse, multiple VIs) where a
  three-parameter linear model has no mechanism to follow the data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vibe.harness import TransferConfig, run_bandwidth, run_latency
from ..vibe.metrics import BenchResult

__all__ = ["LogGPFit", "fit_loggp", "extract", "evaluate_fit"]


@dataclass(frozen=True)
class LogGPFit:
    """LogGP parameters, times in µs, G in µs/byte."""

    provider: str
    L: float          # wire + fabric latency
    o: float          # per-message CPU overhead (one side)
    g: float          # per-message gap (small-message rate limit)
    G: float          # per-byte gap (1 / asymptotic bandwidth)
    residual_us: float  # RMS residual of the latency fit

    def predict_latency(self, nbytes: int) -> float:
        """One-way latency of an ``nbytes`` message: L + 2o + n*G."""
        return self.L + 2 * self.o + nbytes * self.G

    def predict_bandwidth(self, nbytes: int) -> float:
        """Streaming bandwidth in MB/s: n / max(g + n*G, tiny)."""
        per_msg = self.g + nbytes * self.G
        return nbytes / per_msg if per_msg > 0 else float("inf")

    @property
    def asymptotic_bandwidth(self) -> float:
        return 1.0 / self.G if self.G > 0 else float("inf")


def fit_loggp(latency: BenchResult, bandwidth: BenchResult,
              overhead_us: float | None = None) -> LogGPFit:
    """Least-squares LogGP fit from base latency + bandwidth sweeps.

    The latency sweep gives intercept ``L + 2o`` and slope ``G``; the
    bandwidth sweep gives the per-message gap ``g`` (intercept of
    ``n / bw(n)``).  ``o`` is split out of the intercept using the
    measured CPU time per message when available.
    """
    sizes = np.array([p.param for p in latency.points], dtype=float)
    lats = np.array([p.latency_us for p in latency.points], dtype=float)
    A = np.vstack([np.ones_like(sizes), sizes]).T
    (intercept, G), *_ = np.linalg.lstsq(A, lats, rcond=None)
    resid = float(np.sqrt(np.mean((A @ np.array([intercept, G]) - lats) ** 2)))

    bw_sizes = np.array([p.param for p in bandwidth.points], dtype=float)
    bw = np.array([p.bandwidth_mbs for p in bandwidth.points], dtype=float)
    per_msg = bw_sizes / bw                      # µs per message
    Ab = np.vstack([np.ones_like(bw_sizes), bw_sizes]).T
    (g, _Gb), *_ = np.linalg.lstsq(Ab, per_msg, rcond=None)

    if overhead_us is None:
        # attribute a quarter of the intercept to each side's overhead —
        # the conventional split when o cannot be measured directly
        o = float(intercept) / 4.0
    else:
        o = overhead_us
    L = float(intercept) - 2.0 * o
    return LogGPFit(latency.provider, L=L, o=o, g=float(g), G=float(G),
                    residual_us=resid)


def extract(provider: str, sizes: list[int] | None = None) -> LogGPFit:
    """Run the base benchmarks and fit LogGP in one step."""
    sizes = sizes or [4, 64, 1024, 4096, 12288, 28672]
    lat_points = []
    cpu_per_msg = []
    for s in sizes:
        m = run_latency(provider, TransferConfig(size=s))
        lat_points.append(m)
        # CPU time per message on the sending side: util × one-way time
        if m.cpu_send is not None:
            cpu_per_msg.append(m.cpu_send * m.latency_us)
    bw_points = [run_bandwidth(provider, TransferConfig(size=s))
                 for s in sizes]
    latency = BenchResult("base_latency", provider, lat_points)
    bandwidth = BenchResult("base_bandwidth", provider, bw_points)
    return fit_loggp(latency, bandwidth)


def evaluate_fit(fit: LogGPFit, observed: BenchResult,
                 metric: str = "latency_us") -> dict:
    """Score predictions against any latency-style sweep.

    Returns per-point relative errors and their mean — large errors on
    the reuse / multi-VI sweeps are the paper's point about LogP.
    """
    errors = []
    for p in observed.points:
        actual = p.get(metric)
        if actual is None:
            continue
        size = p.param if isinstance(p.param, (int, float)) else 0
        predicted = fit.predict_latency(int(size))
        errors.append((p.param, predicted, actual,
                       abs(predicted - actual) / actual))
    mean_err = sum(e[-1] for e in errors) / len(errors) if errors else None
    return {"points": errors, "mean_relative_error": mean_err}
