"""Per-component latency breakdown (paper §3: "identify how much time
is spent in each of the components in the implementation, and pinpoint
the bottlenecks").

Runs a single traced message transfer and telescopes its timeline into
the architectural phases of a VIA send:

====================  =====================================================
phase                 boundary events
====================  =====================================================
post                  ``host/post_send`` → ``host/doorbell``
staging               ``host/doorbell`` → ``nic/send_queued``
                      (kernel copy + host translation on staged paths)
dispatch              ``nic/send_queued`` → ``nic/desc_fetched``
                      (engine wait, per-VI polling scan, descriptor DMA)
translation           ``nic/desc_fetched`` → ``nic/tx_translated``
tx_dma                ``nic/tx_translated`` → last ``nic/frag_out``
wire                  last ``nic/frag_out`` → last ``nic/frag_in``
                      (serialisation, switch, propagation, rx engine queue)
rx_processing         last ``nic/frag_in`` → receiver ``via/completed``
                      (placement translation + DMA + completion writeback)
reap                  ``via/completed`` → receiver ``host/reaped``
rx_kernel             ``host/reaped`` → ``host/reap_done``
                      (staged paths: per-frame kernel work + copy-out)
====================  =====================================================

The phases telescope: they sum exactly to the observed one-way latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..providers.registry import ProviderSpec, Testbed
from ..sim.trace import Tracer
from ..via.descriptor import Descriptor

__all__ = ["Breakdown", "latency_breakdown", "render_breakdowns"]

PHASES = ("post", "staging", "dispatch", "translation", "tx_dma",
          "wire", "rx_processing", "reap", "rx_kernel")


@dataclass
class Breakdown:
    """Phase durations (µs) of one message's one-way journey."""

    provider: str
    size: int
    phases: dict[str, float] = field(default_factory=dict)
    total: float = 0.0

    def bottleneck(self) -> str:
        return max(self.phases, key=self.phases.get)

    def table(self) -> str:
        lines = [f"latency breakdown: {self.provider}, {self.size} B "
                 f"(total {self.total:.2f} us)"]
        for phase in PHASES:
            us = self.phases.get(phase, 0.0)
            share = us / self.total if self.total else 0.0
            bar = "#" * int(round(share * 40))
            lines.append(f"  {phase:<14s} {us:8.2f} us  {share:6.1%}  {bar}")
        return "\n".join(lines)


def latency_breakdown(provider: "str | ProviderSpec", size: int = 1024,
                      seed: int = 0) -> Breakdown:
    """Trace one send and decompose its one-way latency by phase."""
    tb = Testbed(provider, seed=seed)
    tracer = Tracer()
    out: dict = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, "node1", 3)
        # warm every cache with one untraced message, then trace the next
        segs = [h.segment(region, mh, 0, size)]
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)
        while not out.get("warmed"):
            yield tb.sim.timeout(5.0)
        tb.sim.tracer = tracer
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, size)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(3)
        yield from h.accept(req, vi)
        yield from h.recv_wait(vi)
        yield from h.post_recv(vi, Descriptor.recv(segs))
        out["warmed"] = True
        yield from h.recv_wait(vi)
        out["done"] = tb.now

    cproc = tb.spawn(client(), "client")
    sproc = tb.spawn(server(), "server")
    tb.run(cproc)
    tb.run(sproc)

    name = provider if isinstance(provider, str) else provider.name
    return _parse(tracer, name, size)


def _mark(tracer: Tracer, **kwargs) -> float:
    ev = tracer.last(**kwargs)
    if ev is None:
        raise RuntimeError(f"missing trace event: {kwargs}")
    return ev.t


def _parse(tracer: Tracer, provider: str, size: int) -> Breakdown:
    t_post = _mark(tracer, category="host", label="post_send", node="node0")
    t_bell = _mark(tracer, category="host", label="doorbell", node="node0")
    t_queued = _mark(tracer, category="nic", label="send_queued",
                     node="node0")
    t_fetched = _mark(tracer, category="nic", label="desc_fetched",
                      node="node0")
    t_translated = _mark(tracer, category="nic", label="tx_translated",
                         node="node0")
    t_out = _mark(tracer, category="nic", label="frag_out", node="node0")
    t_in = _mark(tracer, category="nic", label="frag_in", node="node1")
    t_done = _mark(tracer, category="via", label="completed", node="node1",
                   queue="recv")
    t_reaped = _mark(tracer, category="host", label="reaped", node="node1")
    t_reap_done = _mark(tracer, category="host", label="reap_done",
                        node="node1")

    bd = Breakdown(provider, size)
    bd.phases = {
        "post": t_bell - t_post,
        "staging": t_queued - t_bell,
        "dispatch": t_fetched - t_queued,
        "translation": t_translated - t_fetched,
        "tx_dma": t_out - t_translated,
        "wire": t_in - t_out,
        "rx_processing": t_done - t_in,
        "reap": t_reaped - t_done,
        "rx_kernel": t_reap_done - t_reaped,
    }
    bd.total = t_reap_done - t_post
    return bd


def render_breakdowns(breakdowns: list[Breakdown]) -> str:
    """Providers side by side, one row per phase (µs)."""
    cols = ["phase"] + [f"{b.provider}@{b.size}B" for b in breakdowns]
    rows = [cols]
    for phase in PHASES:
        rows.append([phase] + [f"{b.phases[phase]:.2f}" for b in breakdowns])
    rows.append(["TOTAL"] + [f"{b.total:.2f}" for b in breakdowns])
    widths = [max(len(r[i]) for r in rows) for i in range(len(cols))]
    return "\n".join("  ".join(c.rjust(w) for c, w in zip(r, widths))
                     for r in rows)
