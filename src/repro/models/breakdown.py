"""Per-component latency breakdown (paper §3: "identify how much time
is spent in each of the components in the implementation, and pinpoint
the bottlenecks").

Runs a single traced message transfer and telescopes its timeline into
the architectural phases of a VIA send:

====================  =====================================================
phase                 boundary events
====================  =====================================================
post                  ``host/post_send`` → ``host/doorbell``
staging               ``host/doorbell`` → ``nic/send_queued``
                      (kernel copy + host translation on staged paths)
dispatch              ``nic/send_queued`` → ``nic/desc_fetched``
                      (engine wait, per-VI polling scan, descriptor DMA)
translation           ``nic/desc_fetched`` → ``nic/tx_translated``
tx_dma                ``nic/tx_translated`` → last ``nic/frag_out``
wire                  last ``nic/frag_out`` → last ``nic/frag_in``
                      (serialisation, switch, propagation, rx engine queue)
rx_processing         last ``nic/frag_in`` → receiver ``via/completed``
                      (placement translation + DMA + completion writeback)
reap                  ``via/completed`` → receiver ``host/reaped``
rx_kernel             ``host/reaped`` → ``host/reap_done``
                      (staged paths: per-frame kernel work + copy-out)
====================  =====================================================

The phases telescope: they sum exactly to the observed one-way latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.spans import PhaseBoundary, phase_spans
from ..providers.registry import ProviderSpec, Testbed
from ..sim.trace import Tracer
from ..via.descriptor import Descriptor

__all__ = ["Breakdown", "latency_breakdown", "render_breakdowns",
           "PHASES", "PHASE_BOUNDARIES"]

PHASES = ("post", "staging", "dispatch", "translation", "tx_dma",
          "wire", "rx_processing", "reap", "rx_kernel")

#: the table above as declarative span boundaries (role 0 = sender,
#: role 1 = receiver); shared with ``repro.obs.profile``
PHASE_BOUNDARIES = (
    PhaseBoundary("post", ("host", "post_send", 0), ("host", "doorbell", 0)),
    PhaseBoundary("staging", ("host", "doorbell", 0),
                  ("nic", "send_queued", 0)),
    PhaseBoundary("dispatch", ("nic", "send_queued", 0),
                  ("nic", "desc_fetched", 0)),
    PhaseBoundary("translation", ("nic", "desc_fetched", 0),
                  ("nic", "tx_translated", 0)),
    PhaseBoundary("tx_dma", ("nic", "tx_translated", 0),
                  ("nic", "frag_out", 0)),
    PhaseBoundary("wire", ("nic", "frag_out", 0), ("nic", "frag_in", 1)),
    PhaseBoundary("rx_processing", ("nic", "frag_in", 1),
                  ("via", "completed", 1), end_info={"queue": "recv"}),
    PhaseBoundary("reap", ("via", "completed", 1), ("host", "reaped", 1),
                  start_info={"queue": "recv"}),
    PhaseBoundary("rx_kernel", ("host", "reaped", 1),
                  ("host", "reap_done", 1)),
)


@dataclass
class Breakdown:
    """Phase durations (µs) of one message's one-way journey."""

    provider: str
    size: int
    phases: dict[str, float] = field(default_factory=dict)
    total: float = 0.0

    def bottleneck(self) -> str:
        return max(self.phases, key=self.phases.get)

    def table(self) -> str:
        lines = [f"latency breakdown: {self.provider}, {self.size} B "
                 f"(total {self.total:.2f} us)"]
        for phase in PHASES:
            us = self.phases.get(phase, 0.0)
            share = us / self.total if self.total else 0.0
            bar = "#" * int(round(share * 40))
            lines.append(f"  {phase:<14s} {us:8.2f} us  {share:6.1%}  {bar}")
        return "\n".join(lines)


def latency_breakdown(provider: "str | ProviderSpec", size: int = 1024,
                      seed: int = 0) -> Breakdown:
    """Trace one send and decompose its one-way latency by phase."""
    tb = Testbed(provider, seed=seed)
    tracer = Tracer()
    out: dict = {}

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, "node1", 3)
        # warm every cache with one untraced message, then trace the next
        segs = [h.segment(region, mh, 0, size)]
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)
        while not out.get("warmed"):
            yield tb.sim.timeout(5.0)
        tb.sim.tracer = tracer
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, size)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(3)
        yield from h.accept(req, vi)
        yield from h.recv_wait(vi)
        yield from h.post_recv(vi, Descriptor.recv(segs))
        out["warmed"] = True
        yield from h.recv_wait(vi)
        out["done"] = tb.now

    cproc = tb.spawn(client(), "client")
    sproc = tb.spawn(server(), "server")
    tb.run(cproc)
    tb.run(sproc)

    name = provider if isinstance(provider, str) else provider.name
    return _parse(tracer, name, size)


def _parse(tracer: Tracer, provider: str, size: int) -> Breakdown:
    # last-match anchors: the warm-up message emitted the same labels
    spans = phase_spans(tracer, PHASE_BOUNDARIES, nodes=("node0", "node1"),
                        select="last")
    bd = Breakdown(provider, size)
    bd.phases = {s.name: s.duration for s in spans}
    bd.total = spans[-1].end - spans[0].start
    return bd


def render_breakdowns(breakdowns: list[Breakdown]) -> str:
    """Providers side by side, one row per phase (µs)."""
    cols = ["phase"] + [f"{b.provider}@{b.size}B" for b in breakdowns]
    rows = [cols]
    for phase in PHASES:
        rows.append([phase] + [f"{b.phases[phase]:.2f}" for b in breakdowns])
    rows.append(["TOTAL"] + [f"{b.total:.2f}" for b in breakdowns])
    widths = [max(len(r[i]) for r in rows) for i in range(len(cols))]
    return "\n".join("  ".join(c.rjust(w) for c, w in zip(r, widths))
                     for r in rows)
