"""Analysis models: LogP/LogGP extraction and latency breakdowns."""

from .breakdown import Breakdown, latency_breakdown, render_breakdowns
from .logp import LogGPFit, evaluate_fit, extract, fit_loggp

__all__ = [
    "Breakdown",
    "LogGPFit",
    "evaluate_fit",
    "extract",
    "fit_loggp",
    "latency_breakdown",
    "render_breakdowns",
]
