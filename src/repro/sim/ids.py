"""Deterministic, resettable id allocation for model objects.

Packets, VIs, CQs, connections, descriptors and memory handles all
carry small integer ids.  The ids are scoped per testbed — no lookup
ever crosses a testbed boundary — but allocating them from one
process-global counter per kind is convenient, so that is what the
model modules do.  Historically each module kept a private
``itertools.count`` and anything needing reproducible ids (golden
traces, ``--jobs`` fan-out) reassigned all seven module attributes by
hand, which was fragile and invisible to new id kinds.

:class:`IdSpace` replaces the raw counters with named, registered
allocators that keep the ``next(...)`` call-site idiom but can be
*captured*, *reset* and *restored* as a group.  That is the property
the snapshot layer (:mod:`repro.snap`) builds on: a checkpoint records
the allocator positions, and a restore replays or resumes them exactly,
so a rebuilt simulation allocates the same ids in the same order as the
original — making runs byte-identical across fresh processes regardless
of ``PYTHONHASHSEED`` or whatever earlier simulations left behind.
"""

from __future__ import annotations

__all__ = ["IdSpace", "id_space", "reset_ids", "capture_ids", "restore_ids"]

#: every allocator ever created, by name (insertion order is stable
#: because registration happens at module import time)
_SPACES: dict[str, "IdSpace"] = {}


class IdSpace:
    """A named integer allocator supporting ``next()`` and exact reset."""

    __slots__ = ("name", "next_value")

    def __init__(self, name: str, start: int = 1) -> None:
        self.name = name
        self.next_value = start

    def __next__(self) -> int:
        value = self.next_value
        self.next_value = value + 1
        return value

    def __iter__(self) -> "IdSpace":
        return self

    def reset(self, start: int = 1) -> None:
        """Rewind (or fast-forward) the allocator to ``start``."""
        self.next_value = start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdSpace({self.name!r}, next={self.next_value})"


def id_space(name: str, start: int = 1) -> IdSpace:
    """Get-or-create the named allocator (idempotent across imports)."""
    space = _SPACES.get(name)
    if space is None:
        space = _SPACES[name] = IdSpace(name, start)
    return space


def reset_ids() -> None:
    """Restart every registered allocator at 1 (canonical-run helper)."""
    for space in _SPACES.values():
        space.reset()


def capture_ids() -> dict[str, int]:
    """Snapshot every allocator position, sorted by name."""
    return {name: _SPACES[name].next_value for name in sorted(_SPACES)}


def restore_ids(snapshot: dict[str, int]) -> None:
    """Set allocators to exactly the captured positions.

    Allocators not present in ``snapshot`` (kinds added after the
    capture) are left untouched.
    """
    for name, value in snapshot.items():
        id_space(name).reset(value)
