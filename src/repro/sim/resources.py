"""Shared-resource primitives built on the event kernel.

These model contention points in the simulated hardware: a NIC
processing engine is a :class:`Resource` with capacity 1, a packet queue
between the NIC and the wire is a :class:`Store`, a doorbell is a
:class:`Signal`.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Generator

from .core import PENDING, Event, SimulationError, Simulator
from .core import _BUCKET_MIN_HEAP

__all__ = ["Resource", "Store", "Signal", "ResourceRequest"]


class ResourceRequest(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        # Inlined Event.__init__: requests are the hot allocation of
        # every contended-resource workload.
        sim = resource.sim
        self.sim = sim
        pool = sim._list_pool
        self.callbacks = pool.pop() if pool else []
        self._value = PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw an un-granted request (no-op once granted)."""
        if not self.triggered:
            try:
                self.resource._queue.remove(self)
            except ValueError:  # pragma: no cover - defensive
                pass


class Resource:
    """A FIFO multi-server resource (``capacity`` concurrent holders)."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[ResourceRequest] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def _grant(self, req: ResourceRequest) -> None:
        # Inlined req.succeed(self) at delay 0 / priority 0: a request
        # is granted at most once, so the already-triggered check of the
        # generic path cannot fire.
        req._scheduled = True
        req._value = self
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        now = sim._now
        heap = sim._heap
        if len(heap) < _BUCKET_MIN_HEAP:
            heappush(heap, (now, seq, req))
        else:
            buckets = sim._buckets
            bucket = buckets.get(now)
            if bucket is None:
                buckets[now] = bucket = []
                heappush(heap, (now, seq, bucket))
            bucket.append((seq, req))

    def request(self) -> ResourceRequest:
        """Return an event that fires when a slot is granted."""
        req = ResourceRequest(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self) -> None:
        """Free a slot; grants the oldest queued request, if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._queue:
            self._grant(self._queue.popleft())
        else:
            self._in_use -= 1

    def acquire(self, hold: float) -> Generator[Event, Any, None]:
        """Convenience process fragment: request, hold for ``hold``, release."""
        yield self.request()
        try:
            yield self.sim.timeout(hold)
        finally:
            self.release()


class Store:
    """An unbounded-or-bounded FIFO queue with blocking get/put."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is accepted."""
        ev = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return an event whose value is the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                putter, item = self._putters.popleft()
                self._items.append(item)
                putter.succeed(None)
        elif self._putters:
            # capacity == 0 cannot happen (capacity > 0 enforced); this
            # branch services a putter blocked behind an empty queue.
            putter, item = self._putters.popleft()
            putter.succeed(None)
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any | None:
        """Non-blocking get; None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        if self._putters:
            putter, pitem = self._putters.popleft()
            self._items.append(pitem)
            putter.succeed(None)
        return item


class Signal:
    """A broadcast condition: ``wait()`` events all fire on ``fire()``.

    Unlike :class:`Event`, a Signal can fire repeatedly; each ``fire``
    releases everything currently waiting.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._waiters: list[Event] = []
        self.fire_count = 0

    def wait(self) -> Event:
        ev = Event(self.sim)
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Release all current waiters; returns how many were released."""
        waiters, self._waiters = self._waiters, []
        self.fire_count += 1
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)
