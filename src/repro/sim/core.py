"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based discrete-event engine in the
style of SimPy, purpose-built for the VIBe hardware/protocol models.

Time is a ``float`` number of *microseconds* (the natural unit of the
paper's measurements).  Determinism is guaranteed by ordering the event
heap on ``(time, priority, sequence)`` — two events scheduled for the
same instant fire in schedule order unless an explicit priority says
otherwise.

Processes are plain Python generators that ``yield`` :class:`Event`
objects; the value the event was triggered with becomes the value of the
``yield`` expression.  A process is itself an :class:`Event` that
triggers when the generator returns, so processes can wait on each
other.

Fast-path invariants
--------------------

The kernel avoids allocations and heap traffic on its hot paths, but
every shortcut preserves the ``(time, priority, seq)`` total order
exactly, so simulated results are bit-identical to the naive
implementation:

- **Kick records instead of events.**  Booting a process, resuming one
  that yielded an already-processed event, and interrupts used to burn a
  throwaway :class:`Event` (allocation + callback list + heap
  round-trip).  They now use pooled :class:`_Kick` records.  Each kick
  still consumes a sequence number from the same counter, so its
  ordering key is identical to the event it replaces.
- **Immediate queue.**  Priority-0 kicks are appended to a FIFO deque
  instead of the heap.  Because their keys ``(now, 0, seq)`` are
  strictly increasing in append order, the deque is always sorted; the
  event loop pops whichever of ``deque[0]`` / ``heap[0]`` has the
  smaller key, which is exactly what one big heap would do.  Kicks with
  non-zero priority (interrupts, priority −1) would violate the
  monotonicity argument, so they go on the heap as lightweight records.
- **Same-timestamp buckets.**  Priority-0 schedules for the same
  absolute time are appended to one FIFO bucket list that occupies a
  single heap slot, keyed by its *first* entry's sequence number.
  Entries are appended in increasing-seq order, so the bucket is
  internally sorted and its heap key is its minimum; the drain loop
  walks the current bucket directly and only falls back to the heap
  when an immediate kick or a negative-priority entry at the same
  timestamp outranks the bucket's front (compared by the same packed
  key).  This turns the common O(log n) heap push/pop per event into an
  O(1) list append/index.
- **Direct generator dispatch.**  Resuming a process calls
  ``generator.send``/``generator.throw`` directly instead of through a
  per-resume lambda closure.
- **Object pools.**  Callback lists are recycled after
  ``_run_callbacks`` (they are dropped at that point by construction).
  :class:`Timeout` objects are recycled only when a CPython refcount
  check proves the event loop holds the sole remaining reference, so
  user code that keeps a timeout around never sees it reused.

None of these change what user code observes: event ordering, sequence
numbering, failure/defuse semantics, and ``active_process`` bookkeeping
match the pre-fast-path kernel exactly (golden-value tests in
``tests/test_determinism.py`` pin this down).
"""

from __future__ import annotations

import math
import sys
from collections import deque
from collections.abc import Generator, Iterable
from heapq import heappop, heappush
from typing import Any, Callable

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "PENDING",
]

#: Timeout recycling relies on CPython reference-count semantics.
_CPYTHON = sys.implementation.name == "cpython"
_getrefcount = sys.getrefcount

_LIST_POOL_MAX = 1024
_KICK_POOL_MAX = 256
_TIMEOUT_POOL_MAX = 1024

#: Heap entries are ``(time, priority * _PRIO_SHIFT + seq, obj)``: packing
#: priority and sequence into one int keeps tuples short and comparisons
#: single-step.  Because ``0 <= seq < _PRIO_SHIFT``, the packed key orders
#: exactly like the ``(priority, seq)`` pair it replaces.
_PRIO_SHIFT = 1 << 48

#: Same-timestamp buckets only pay off once heap push/pop costs O(log n);
#: below this heap size a plain single-event push is cheaper than the
#: bucket-dict bookkeeping.  Ordering is identical either way (singles and
#: buckets merge by the same packed key), so the threshold is purely a
#: performance knob.
_BUCKET_MIN_HEAP = 16


class SimulationError(RuntimeError):
    """Raised for structural misuse of the simulation kernel."""


class _PendingType:
    """Sentinel for 'event has no value yet'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


PENDING = _PendingType()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` schedules it to fire; callbacks run when the simulator
    pops it off the heap.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        pool = sim._list_pool
        self.callbacks: list[Callable[[Event], None]] | None = (
            pool.pop() if pool else []
        )
        self._value: Any = PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully done)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = 0) -> "Event":
        """Trigger the event successfully after ``delay`` sim-time."""
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        self._scheduled = True
        self._ok = True
        self._value = value
        sim = self.sim
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        sim._seq = seq = sim._seq + 1
        if priority == 0:
            when = sim._now + delay
            heap = sim._heap
            if len(heap) < _BUCKET_MIN_HEAP:
                heappush(heap, (when, seq, self))
            else:
                buckets = sim._buckets
                bucket = buckets.get(when)
                if bucket is None:
                    buckets[when] = bucket = []
                    heappush(heap, (when, seq, bucket))
                bucket.append((seq, self))
        else:
            heappush(sim._heap,
                     (sim._now + delay, priority * _PRIO_SHIFT + seq, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = 0) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event has the exception raised at its
        ``yield``.  If nothing is waiting by the time it fires, the
        exception propagates out of :meth:`Simulator.run` (unless
        :meth:`defuse` was called).
        """
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._scheduled = True
        self._ok = False
        self._value = exception
        sim = self.sim
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        sim._seq = seq = sim._seq + 1
        if priority == 0:
            when = sim._now + delay
            heap = sim._heap
            if len(heap) < _BUCKET_MIN_HEAP:
                heappush(heap, (when, seq, self))
            else:
                buckets = sim._buckets
                bucket = buckets.get(when)
                if bucket is None:
                    buckets[when] = bucket = []
                    heappush(heap, (when, seq, bucket))
                bucket.append((seq, self))
        else:
            heappush(sim._heap,
                     (sim._now + delay, priority * _PRIO_SHIFT + seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if nobody waits on it."""
        self._defused = True

    # -- internal ------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        callbacks.clear()
        pool = self.sim._list_pool
        if len(pool) < _LIST_POOL_MAX:
            pool.append(callbacks)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self._scheduled else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + scheduling: a Timeout is born
        # triggered, so the generic succeed() machinery is dead weight.
        self.sim = sim
        pool = sim._list_pool
        self.callbacks = pool.pop() if pool else []
        self._value = value
        self._ok = True
        self._scheduled = True
        self._defused = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        when = sim._now + delay
        heap = sim._heap
        if len(heap) < _BUCKET_MIN_HEAP:
            heappush(heap, (when, seq, self))
        else:
            buckets = sim._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = bucket = []
                heappush(heap, (when, seq, bucket))
            bucket.append((seq, self))


_TIMEOUT_NEW = Timeout.__new__


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


# _Kick.mode values
_KICK_SEND = 0        # generator.send(value)
_KICK_THROW = 1       # generator.throw(value)  (value is an exception)
_KICK_INTERRUPT = 2   # generator.throw(Interrupt(value))


class _Kick:
    """A pooled resume record: boots or resumes a :class:`Process`.

    Replaces the throwaway bootstrap/kick :class:`Event` of the slow
    path.  Carries the full ``(time, priority, seq)`` ordering key so
    the event loop can interleave it with heap events deterministically.
    """

    __slots__ = ("time", "seq", "process", "value", "mode")

    def _fire(self) -> None:
        mode = self.mode
        process = self.process
        if mode == _KICK_SEND:
            process._step_send(self.value)
        elif mode == _KICK_INTERRUPT:
            process._step_throw(Interrupt(self.value))
        else:
            process._step_throw(self.value)


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("_generator", "_target", "_resume_cb", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._target: Event | None = None
        # Cache the bound method: appending it to a callbacks list on
        # every yield would otherwise allocate a fresh bound-method
        # object each time.
        self._resume_cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator at time now.
        sim._kick(self, None, _KICK_SEND, 0)

    @property
    def is_alive(self) -> bool:
        return not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._scheduled:
            raise SimulationError(f"{self.name} has already finished")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        self.sim._kick(self, cause, _KICK_INTERRUPT, -1)

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Callback for a pending target.  The bodies of _step_send /
        # _step_throw / _wait_on are inlined here: callback -> resume ->
        # generator -> wait is the hottest call chain of process-heavy
        # workloads, and two method-call frames per context switch are
        # measurable (see benchmarks/bench_simulator_perf.py).
        self._target = None
        sim = self.sim
        sim.ctx_switches += 1
        sim.active_process = self
        if event._ok:
            value = event._value
            try:
                target = self._generator.send(None if value is PENDING else value)
            except StopIteration as stop:
                sim.active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                sim.active_process = None
                self.fail(exc)
                return
        else:
            event._defused = True
            try:
                target = self._generator.throw(event._value)
            except StopIteration as stop:
                sim.active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                sim.active_process = None
                self.fail(exc)
                return
        sim.active_process = None
        # inlined _wait_on(target)
        try:
            callbacks = target.callbacks
            tsim = target.sim
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            ) from None
        if tsim is not sim:
            raise SimulationError("cannot wait on an event from a different Simulator")
        if callbacks is None:
            if target._ok:
                value = target._value
                sim._kick(self, None if value is PENDING else value,
                          _KICK_SEND, 0)
            else:
                target._defused = True
                sim._kick(self, target._value, _KICK_THROW, 0)
        else:
            self._target = target
            callbacks.append(self._resume_cb)

    def _step_send(self, value: Any) -> None:
        sim = self.sim
        sim.ctx_switches += 1
        sim.active_process = self
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            sim.active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim.active_process = None
            self.fail(exc)
            return
        sim.active_process = None
        self._wait_on(target)

    def _step_throw(self, exc: BaseException) -> None:
        sim = self.sim
        sim.ctx_switches += 1
        sim.active_process = self
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            sim.active_process = None
            self.succeed(stop.value)
            return
        except BaseException as err:
            sim.active_process = None
            self.fail(err)
            return
        sim.active_process = None
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        try:
            callbacks = target.callbacks
            tsim = target.sim
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            ) from None
        if tsim is not self.sim:
            raise SimulationError("cannot wait on an event from a different Simulator")
        if callbacks is None:
            # Already processed: resume at the same timestamp via a kick
            # (no Event allocation, no heap round-trip).
            if target._ok:
                value = target._value
                self.sim._kick(self, None if value is PENDING else value,
                               _KICK_SEND, 0)
            else:
                target._defused = True
                self.sim._kick(self, target._value, _KICK_THROW, 0)
        else:
            self._target = target
            callbacks.append(self._resume_cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self._scheduled else 'alive'}>"

    # -- pickling (snapshot support) ------------------------------------
    def __getstate__(self):
        """A *finished* process pickles as its result event.

        A live process cannot: its generator frame is not serializable.
        The snapshot layer (:mod:`repro.snap`) turns this TypeError into
        a :class:`~repro.snap.format.SnapshotStateError` naming the
        process, and offers the replay tier for mid-run points.
        """
        if not self._scheduled:
            raise TypeError(
                f"cannot pickle live process {self.name!r}: generator "
                "frames are not serializable (snapshot at a quiescent "
                "point, or use a replay-tier checkpoint)"
            )
        return (self.sim, self._value, self._ok, self._defused, self.name)

    def __setstate__(self, state):
        self.sim, self._value, self._ok, self._defused, self.name = state
        self.callbacks = None        # finished => already processed
        self._scheduled = True
        self._generator = None
        self._target = None
        self._resume_cb = None


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("all events in a condition must share a Simulator")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        # only events whose callbacks have run count as "fired" — a
        # Timeout is born triggered (value preset) but has not occurred
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}


class AnyOf(_Condition):
    """Triggers when the first of its events triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._results())


class AllOf(_Condition):
    """Triggers when all of its events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class Simulator:
    """The event loop: a heap of ``(time, priority·2⁴⁸ + seq, event)``.

    The packed int key orders exactly like the ``(priority, seq)`` pair
    it replaces.  Priority-0 kick records additionally flow through
    ``_immediate``, a FIFO deque whose keys are monotonic (see the
    module docstring); the loop always processes whichever of the two
    structures holds the smaller key next.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Any]] = []
        self._immediate: deque[_Kick] = deque()
        #: open same-timestamp buckets: absolute time -> [(seq, event), ...]
        self._buckets: dict[float, list[tuple[int, Event]]] = {}
        self._seq = 0
        self._list_pool: list[list] = []
        self._kick_pool: list[_Kick] = []
        self._timeout_pool: list[Timeout] = []
        self.active_process: Process | None = None
        #: optional structured event log (see repro.sim.trace.Tracer)
        self.tracer = None
        #: optional live metrics registry (see repro.obs.metrics); like
        #: the tracer, instrumentation sites check for None and do
        #: nothing else when disabled
        self.metrics = None
        #: optional conformance checker (see repro.check.invariants);
        #: same None-when-disabled discipline as tracer/metrics
        self.checker = None
        #: optional fault injector (see repro.faults.injector); same
        #: None-when-disabled discipline — hook sites in the hardware
        #: and engine models read this once and skip on None
        self.faults = None
        #: kernel-level totals (always on: two plain int increments)
        self.events_run = 0
        self.ctx_switches = 0
        #: simulation fidelity: "packet" runs every wire packet as its
        #: own event chain (the bit-exact default); "auto" lets model
        #: layers collapse provably-uncontended steady-state stretches
        #: into arithmetic fast-forwards; "flow" additionally bursts
        #: single-fragment messages.  The kernel itself only carries the
        #: mode and the accounting — eligibility lives with the models.
        self.fidelity = "packet"
        #: simulated time covered by fast-forwarded (flow-level) stretches,
        #: as a union of spans — never exceeds ``now``
        self.ff_time = 0.0
        #: events the packet-level path would have run but the flow path
        #: synthesized arithmetically
        self.ff_events_skipped = 0
        self.ff_bursts = 0
        self._ff_watermark = 0.0
        #: active run() deadline: the next *boundary* a fast-forward may
        #: not cross (a truncated run must truncate identically in every
        #: fidelity mode)
        self._run_until = float("inf")

    def trace(self, category: str, label: str, node: str = "", **info) -> None:
        """Emit a trace event if a tracer is attached (cheap when not)."""
        if self.tracer is not None:
            self.tracer.emit(self._now, category, label, node, **info)

    # -- flow-level fast-forward accounting -------------------------------
    def ff_horizon(self) -> float:
        """Earliest boundary an analytic fast-forward may not cross.

        Today that is the active ``run(until=...)`` deadline: a stretch
        fast-forwarded past the deadline would synthesize completions a
        packet-level run truncates, so planners must fall back when
        their burst would end beyond it.  Fault windows never appear
        here because an armed injector disqualifies bursting outright
        (see the eligibility rules in ``providers.engine``).
        """
        return self._run_until

    def note_fast_forward(self, t_start: float, t_end: float,
                          events_skipped: int) -> None:
        """Record one analytically-advanced stretch ``[t_start, t_end]``.

        ``ff_time`` accumulates the *union* of fast-forwarded spans (a
        watermark dedupes the overlap of pipelined bursts), so
        ``ff_time / now`` reads as the fraction of simulated time the
        kernel never had to step through.
        """
        start = t_start if t_start > self._ff_watermark else self._ff_watermark
        if t_end > start:
            self.ff_time += t_end - start
            self._ff_watermark = t_end
        self.ff_events_skipped += events_skipped
        self.ff_bursts += 1

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- factory helpers -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Fully inlined Timeout construction: recycles pooled instances
        # and skips the type-call/__init__ machinery on the fresh path.
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
        else:
            t = _TIMEOUT_NEW(Timeout)
            t.sim = self
        lpool = self._list_pool
        t.callbacks = lpool.pop() if lpool else []
        t._value = value
        t._ok = True
        t._scheduled = True
        t._defused = False
        t.delay = delay
        self._seq = seq = self._seq + 1
        when = self._now + delay
        heap = self._heap
        if len(heap) < _BUCKET_MIN_HEAP:
            heappush(heap, (when, seq, t))
        else:
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = bucket = []
                heappush(heap, (when, seq, bucket))
            bucket.append((seq, t))
        return t

    def timeout_at(self, at: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` that fires at the *absolute* time ``at``.

        ``timeout(at - now)`` is not the same thing: the kernel would
        schedule at ``now + (at - now)``, which can differ from ``at``
        by an ulp.  Cross-shard packet injection (:mod:`repro.shard`)
        needs deliveries to land at the exact float timestamp the source
        shard computed, so this schedules at ``when = float(at)``
        directly.  Scheduling before ``now`` is a causality violation
        and raises.
        """
        when = float(at)
        if when < self._now:
            raise ValueError(
                f"timeout_at({when}) is in the past (now={self._now})"
            )
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
        else:
            t = _TIMEOUT_NEW(Timeout)
            t.sim = self
        lpool = self._list_pool
        t.callbacks = lpool.pop() if lpool else []
        t._value = value
        t._ok = True
        t._scheduled = True
        t._defused = False
        t.delay = when - self._now
        self._seq = seq = self._seq + 1
        heap = self._heap
        if len(heap) < _BUCKET_MIN_HEAP:
            heappush(heap, (when, seq, t))
        else:
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = bucket = []
                heappush(heap, (when, seq, bucket))
            bucket.append((seq, t))
        return t

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        if priority == 0:
            when = self._now + delay
            heap = self._heap
            if len(heap) < _BUCKET_MIN_HEAP:
                heappush(heap, (when, seq, event))
            else:
                buckets = self._buckets
                bucket = buckets.get(when)
                if bucket is None:
                    buckets[when] = bucket = []
                    heappush(heap, (when, seq, bucket))
                bucket.append((seq, event))
        else:
            heappush(self._heap,
                     (self._now + delay, priority * _PRIO_SHIFT + seq, event))

    def _kick(self, process: Process, value: Any, mode: int, priority: int) -> None:
        """Schedule a process resume with the key ``(now, priority, seq)``."""
        self._seq = seq = self._seq + 1
        pool = self._kick_pool
        kick = pool.pop() if pool else _Kick()
        kick.time = self._now
        kick.seq = seq
        kick.process = process
        kick.value = value
        kick.mode = mode
        if priority == 0:
            self._immediate.append(kick)
        else:
            heappush(self._heap,
                     (self._now, priority * _PRIO_SHIFT + seq, kick))

    def _recycle_kick(self, kick: _Kick) -> None:
        if len(self._kick_pool) < _KICK_POOL_MAX:
            kick.process = None
            kick.value = None
            self._kick_pool.append(kick)

    def step(self) -> None:
        """Process the single next event."""
        if not self._immediate and not self._heap:
            raise SimulationError(
                "step() on an empty event queue: nothing left to simulate"
            )
        # A non-empty sentinel makes _drain stop after exactly one event;
        # its finally-block repacks any partially drained bucket, so the
        # queue stays consistent between step() calls.
        self._drain(float("inf"), [True])

    def run_events(self, n: int) -> int:
        """Run at most ``n`` further events/kicks; return how many ran.

        ``events_run`` counts exactly one per processed event or kick,
        and :meth:`step` preserves the global ``(time, priority, seq)``
        order, so an event count is a precise, deterministic cursor into
        a run: replaying ``run_events(t)`` on an identically-built
        simulation reproduces the state at ``t`` bit-for-bit.  The
        replay tier of :mod:`repro.snap` is built on this.

        Stops early (without raising) when the queue drains.  Like
        ``run(until=event)``, no time boundary is imposed, so flow-level
        fast-forward eligibility (:meth:`ff_horizon`) is identical to an
        event-driven run.
        """
        if n < 0:
            raise ValueError(f"cannot run a negative event count: {n}")
        ran = 0
        sentinel = [True]
        while ran < n:
            if not self._immediate and not self._heap:
                break
            self._drain(float("inf"), sentinel)
            ran += 1
        return ran

    def _drain(self, deadline: float, sentinel: list | None) -> None:
        """Inlined event loop: run until empty, past ``deadline``, or —
        when ``sentinel`` is a non-empty list — after a single event.

        When ``sentinel`` is an *empty* list, run until a callback fills
        it (``run(until=event)`` appends the stop event's value).  All
        per-event work is inlined here on purpose: method-call and
        attribute traffic dominate kernel throughput (see
        ``benchmarks/bench_simulator_perf.py``).
        """
        heap = self._heap
        imm = self._immediate
        buckets = self._buckets
        lpool = self._list_pool
        tpool = self._timeout_pool
        pop = heappop
        check_refs = _CPYTHON
        cur: list | None = None   # bucket currently being drained
        cur_t = 0.0
        cur_i = 0
        runs = 0                  # folded into self.events_run on exit
        try:
            while True:
                if cur is not None:
                    if cur_i < len(cur):
                        entry = cur[cur_i]
                        eseq = entry[0]
                        if (imm and imm[0].seq < eseq) or (
                            heap and heap[0][0] == cur_t and heap[0][1] < eseq
                        ):
                            # Rare: an immediate kick or a negative-priority
                            # heap entry outranks the rest of this bucket.
                            # Push the remainder back and let the generic
                            # path below re-merge everything by key.
                            del cur[:cur_i]
                            heappush(heap, (cur_t, eseq, cur))
                            cur = None
                            continue
                        event = entry[1]
                        # Null the slot and drop the tuple so the
                        # refcount-based Timeout recycling check holds.
                        cur[cur_i] = None
                        entry = None
                        cur_i += 1
                        runs += 1
                        callbacks = event.callbacks
                        event.callbacks = None
                        if callbacks:
                            for cb in callbacks:
                                cb(event)
                            callbacks.clear()
                        if len(lpool) < _LIST_POOL_MAX:
                            lpool.append(callbacks)
                        if not event._ok and not event._defused:
                            raise event._value
                        # Recycle a drained Timeout only when the loop
                        # holds the sole reference.
                        if (
                            check_refs
                            and event.__class__ is Timeout
                            and _getrefcount(event) == 2
                            and len(tpool) < _TIMEOUT_POOL_MAX
                        ):
                            tpool.append(event)
                        if sentinel:
                            return
                        continue
                    # Bucket exhausted: close it so a later schedule at
                    # the same timestamp starts a fresh one.
                    if buckets.get(cur_t) is cur:
                        del buckets[cur_t]
                    cur = None
                    continue
                if imm:
                    kick = imm[0]
                    if heap:
                        entry = heap[0]
                        when = entry[0]
                        kt = kick.time
                        use_imm = kt < when or (kt == when and kick.seq < entry[1])
                    else:
                        use_imm = True
                    if use_imm:
                        # an immediate kick's time is always <= now <= deadline
                        imm.popleft()
                        self._now = kick.time
                        runs += 1
                        kick._fire()
                        self._recycle_kick(kick)
                        if sentinel:
                            return
                        continue
                elif not heap:
                    return
                when, key, event = pop(heap)
                if when > deadline:
                    # over the deadline: restore and stop (at most once per
                    # drain, which beats peeking the heap every iteration)
                    heappush(heap, (when, key, event))
                    return
                if event.__class__ is list:
                    # A same-timestamp bucket: drain it entry by entry at
                    # the top of the loop (appends during the drain land
                    # in `cur` and are picked up in seq order).  All its
                    # entries share `when`, so _now is set once here.
                    cur = event
                    cur_t = when
                    cur_i = 0
                    self._now = when
                    continue
                self._now = when
                runs += 1
                try:
                    callbacks = event.callbacks
                except AttributeError:      # a _Kick record (interrupt path)
                    event._fire()
                    self._recycle_kick(event)
                    if sentinel:
                        return
                    continue
                event.callbacks = None
                if callbacks:
                    for cb in callbacks:
                        cb(event)
                    callbacks.clear()
                if len(lpool) < _LIST_POOL_MAX:
                    lpool.append(callbacks)
                if not event._ok and not event._defused:
                    raise event._value
                if (
                    check_refs
                    and event.__class__ is Timeout
                    and _getrefcount(event) == 2
                    and len(tpool) < _TIMEOUT_POOL_MAX
                ):
                    tpool.append(event)
                if sentinel:
                    return
        finally:
            self.events_run += runs
            # On any early exit (single-step, run-until sentinel, deadline,
            # or a propagating exception) a partially drained bucket goes
            # back on the heap keyed by its new front entry.
            if cur is not None:
                if cur_i < len(cur):
                    del cur[:cur_i]
                    heappush(heap, (cur_t, cur[0][0], cur))
                elif buckets.get(cur_t) is cur:
                    del buckets[cur_t]

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be a simulated-time deadline, an :class:`Event`
        (commonly a :class:`Process`), or ``None`` to exhaust all events.
        When ``until`` is an event its value is returned.
        """
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is None:
                if not stop._ok and not stop._defused:
                    raise stop._value
                return stop._value
            sentinel: list = []
            stop.callbacks.append(sentinel.append)
            self._run_until = float("inf")
            self._drain(float("inf"), sentinel)
            if not sentinel:
                raise SimulationError(
                    f"event queue drained before {stop!r} triggered (deadlock?)"
                )
            if not stop._ok and not stop._defused:
                stop._defused = True
                raise stop._value
            return stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        self._run_until = deadline
        try:
            self._drain(deadline, None)
        finally:
            self._run_until = float("inf")
        if deadline != float("inf"):
            self._now = deadline
        return None

    def run_below(self, horizon: float) -> None:
        """Run every event *strictly before* ``horizon``, then park there.

        The resumable cursor of the sharded scheduler
        (:mod:`repro.shard.sync`): a shard granted the horizon ``H`` may
        execute all events with ``time < H`` but none at or after it, and
        its clock must land exactly at the boundary so later
        :meth:`timeout_at` injections at ``H`` or beyond are valid.
        Implemented as a drain to ``nextafter(horizon, -inf)`` — the
        largest float strictly below the horizon — which doubles as the
        fast-forward boundary (:meth:`ff_horizon`), so a flow-level burst
        can never synthesize a completion the bounded run would have
        truncated.

        Repeated calls with increasing horizons resume where the last one
        stopped; a horizon at or below ``now`` is a no-op (the clock
        never moves backwards).
        """
        horizon = float(horizon)
        if not math.isfinite(horizon):
            raise ValueError(f"run_below() needs a finite horizon, got {horizon}")
        deadline = math.nextafter(horizon, -math.inf)
        if deadline < self._now:
            return
        self._run_until = deadline
        try:
            self._drain(deadline, None)
        finally:
            self._run_until = float("inf")
        self._now = deadline

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        imm = self._immediate
        heap = self._heap
        if imm:
            if heap and heap[0][0] < imm[0].time:
                return heap[0][0]
            return imm[0].time
        return heap[0][0] if heap else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        queued = len(self._immediate)
        for entry in self._heap:
            obj = entry[2]
            queued += len(obj) if obj.__class__ is list else 1
        return f"<Simulator t={self._now:.3f}us queued={queued}>"
