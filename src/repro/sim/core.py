"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based discrete-event engine in the
style of SimPy, purpose-built for the VIBe hardware/protocol models.

Time is a ``float`` number of *microseconds* (the natural unit of the
paper's measurements).  Determinism is guaranteed by ordering the event
heap on ``(time, priority, sequence)`` — two events scheduled for the
same instant fire in schedule order unless an explicit priority says
otherwise.

Processes are plain Python generators that ``yield`` :class:`Event`
objects; the value the event was triggered with becomes the value of the
``yield`` expression.  A process is itself an :class:`Event` that
triggers when the generator returns, so processes can wait on each
other.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from typing import Any, Callable

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "PENDING",
]


class SimulationError(RuntimeError):
    """Raised for structural misuse of the simulation kernel."""


class _PendingType:
    """Sentinel for 'event has no value yet'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


PENDING = _PendingType()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` schedules it to fire; callbacks run when the simulator
    pops it off the heap.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully done)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = 0) -> "Event":
        """Trigger the event successfully after ``delay`` sim-time."""
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        self._scheduled = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = 0) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event has the exception raised at its
        ``yield``.  If nothing is waiting by the time it fires, the
        exception propagates out of :meth:`Simulator.run` (unless
        :meth:`defuse` was called).
        """
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._scheduled = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay, priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if nobody waits on it."""
        self._defused = True

    # -- internal ------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self._scheduled else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._scheduled = True
        self._value = value
        sim._schedule(self, delay, 0)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator at time now.
        boot = Event(sim)
        boot.callbacks.append(self._resume)
        boot.succeed(None, priority=0)

    @property
    def is_alive(self) -> bool:
        return not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._scheduled:
            raise SimulationError(f"{self.name} has already finished")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        kick = Event(self.sim)
        kick.callbacks.append(self._resume_interrupt)
        kick.succeed(cause, priority=-1)

    # -- internal ------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        self._step(lambda: self._generator.throw(Interrupt(event.value)))

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(lambda: self._generator.send(event._value if event._value is not PENDING else None))
        else:
            event._defused = True
            exc = event._value
            self._step(lambda: self._generator.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        self.sim.active_process = self
        try:
            target = advance()
        except StopIteration as stop:
            self.sim.active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim.active_process = None
            self.fail(exc)
            return
        self.sim.active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from a different Simulator")
        if target.callbacks is None:
            # Already processed: resume immediately (same timestamp).
            kick = Event(self.sim)
            kick.callbacks.append(self._resume)
            if target._ok:
                kick.succeed(target._value)
            else:
                target._defused = True
                kick.fail(target._value)
                kick._defused = True  # the process will receive it
        else:
            self._target = target
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self._scheduled else 'alive'}>"


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("all events in a condition must share a Simulator")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        # only events whose callbacks have run count as "fired" — a
        # Timeout is born triggered (value preset) but has not occurred
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}


class AnyOf(_Condition):
    """Triggers when the first of its events triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._results())


class AllOf(_Condition):
    """Triggers when all of its events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class Simulator:
    """The event loop: a heap of ``(time, priority, seq, event)``."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self.active_process: Process | None = None
        #: optional structured event log (see repro.sim.trace.Tracer)
        self.tracer = None

    def trace(self, category: str, label: str, node: str = "", **info) -> None:
        """Emit a trace event if a tracer is attached (cheap when not)."""
        if self.tracer is not None:
            self.tracer.emit(self._now, category, label, node, **info)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- factory helpers -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def step(self) -> None:
        """Process the single next event."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        event._run_callbacks()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be a simulated-time deadline, an :class:`Event`
        (commonly a :class:`Process`), or ``None`` to exhaust all events.
        When ``until`` is an event its value is returned.
        """
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is None:
                if not stop._ok and not stop._defused:
                    raise stop._value
                return stop._value
            sentinel: list[bool] = []
            stop.callbacks.append(lambda ev: sentinel.append(True))
            while self._heap:
                self.step()
                if sentinel:
                    if not stop._ok and not stop._defused:
                        stop._defused = True
                        raise stop._value
                    return stop._value
            raise SimulationError(
                f"event queue drained before {stop!r} triggered (deadlock?)"
            )
        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.3f}us queued={len(self._heap)}>"
