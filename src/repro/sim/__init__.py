"""Deterministic discrete-event simulation kernel (time in microseconds)."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    PENDING,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Resource, ResourceRequest, Signal, Store
from .stats import BusyTracker, Counter, TimeWeighted
from .trace import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BusyTracker",
    "Counter",
    "Event",
    "Interrupt",
    "PENDING",
    "Process",
    "Resource",
    "ResourceRequest",
    "Signal",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeWeighted",
    "Timeout",
    "TraceEvent",
    "Tracer",
]
