"""Structured event tracing for the simulation.

A :class:`Tracer` collects timestamped, categorised records from the
hardware models and protocol engines — packet serialisations,
descriptor lifecycles, NIC engine phases, completions.  Tracing is off
by default (a ``None`` tracer costs one attribute check); attach one to
a simulator to capture a timeline:

    tb = Testbed("clan")
    tb.sim.tracer = Tracer()
    ... run ...
    for ev in tb.sim.tracer.select(category="wire"):
        print(ev)

The latency-breakdown analysis (:mod:`repro.models.breakdown`) is built
on these records — the paper's stated use of VIBe for "pinpoint[ing]
the bottlenecks" inside an implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One timeline record."""

    t: float
    category: str      # "host" | "nic" | "wire" | "via" | ...
    label: str         # e.g. "post_send", "frag_dma", "completed"
    node: str = ""
    info: dict = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extras = " ".join(f"{k}={v}" for k, v in self.info.items())
        return (f"[{self.t:12.3f}us] {self.node:>8s} "
                f"{self.category}/{self.label} {extras}")


class Tracer:
    """An append-only event log with simple querying."""

    def __init__(self, capacity: int | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    def emit(self, t: float, category: str, label: str, node: str = "",
             **info: Any) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(t, category, label, node, info))

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def select(self, category: str | None = None, label: str | None = None,
               node: str | None = None, since: float | None = None,
               **info_filters: Any) -> list[TraceEvent]:
        """Events matching every given criterion, in time order."""
        out = []
        for ev in self.events:
            if category is not None and ev.category != category:
                continue
            if label is not None and ev.label != label:
                continue
            if node is not None and ev.node != node:
                continue
            if since is not None and ev.t < since:
                continue
            if any(ev.info.get(k) != v for k, v in info_filters.items()):
                continue
            out.append(ev)
        return out

    def first(self, **kwargs) -> TraceEvent | None:
        hits = self.select(**kwargs)
        return hits[0] if hits else None

    def last(self, **kwargs) -> TraceEvent | None:
        hits = self.select(**kwargs)
        return hits[-1] if hits else None

    def timeline(self, events: Iterable[TraceEvent] | None = None) -> str:
        """Render events (default: all) as an aligned text timeline."""
        rows = list(events if events is not None else self.events)
        if not rows:
            return "(empty trace)"
        lines = []
        t0 = rows[0].t
        for ev in rows:
            extras = " ".join(f"{k}={v}" for k, v in ev.info.items())
            lines.append(f"+{ev.t - t0:10.3f}us  {ev.node:<10s} "
                         f"{ev.category + '/' + ev.label:<28s} {extras}")
        return "\n".join(lines)
