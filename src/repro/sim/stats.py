"""Measurement helpers: busy-time accounting and time-weighted stats."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BusyTracker", "TimeWeighted", "Counter"]


class BusyTracker:
    """Accumulates non-overlapping busy intervals on a simulated clock.

    Used by the CPU model for rusage accounting and by NIC engines for
    utilisation reporting.  Intervals are charged explicitly (the caller
    knows when it is busy), which keeps the accounting exact even when
    spin-waits are computed analytically rather than simulated tick by
    tick.
    """

    def __init__(self) -> None:
        self._busy = 0.0
        self._marks: dict[str, float] = {}

    @property
    def total(self) -> float:
        return self._busy

    def charge(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative busy charge: {duration}")
        self._busy += duration

    def snapshot(self, label: str = "default") -> None:
        """Remember the current total under ``label`` for later deltas."""
        self._marks[label] = self._busy

    def since(self, label: str = "default") -> float:
        """Busy time accumulated since :meth:`snapshot` of ``label``."""
        return self._busy - self._marks.get(label, 0.0)


class TimeWeighted:
    """Time-weighted average of a piecewise-constant quantity."""

    def __init__(self, now: float = 0.0, value: float = 0.0) -> None:
        self._last_t = now
        self._value = value
        self._area = 0.0
        self._t0 = now
        self._max = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max

    def update(self, now: float, value: float) -> None:
        if now < self._last_t:
            raise ValueError("time went backwards")
        self._area += self._value * (now - self._last_t)
        self._last_t = now
        self._value = value
        self._max = max(self._max, value)

    def mean(self, now: float) -> float:
        span = now - self._t0
        if span <= 0:
            return self._value
        return (self._area + self._value * (now - self._last_t)) / span


@dataclass
class Counter:
    """A named bundle of monotonically increasing counters."""

    counts: dict[str, int] = field(default_factory=dict)

    def inc(self, name: str, by: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + by

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def reset(self) -> None:
        self.counts.clear()
