"""Content-addressed result cache: atomic JSON files keyed by spec hash.

One entry per distinct :meth:`~repro.serve.spec.ExperimentSpec.result_key`
— a pure function of (canonical spec, seed, code version) — holding the
exact result-JSON string the direct CLI would have produced.  Entries
are written with the same ``os.replace`` discipline as campaign
checkpoints, so a killed service never leaves a torn entry, and read
back with two defences mirroring the snapshot layer:

- the stored ``code_version`` must match the running build (the key
  already folds :data:`~repro.snap.CODE_VERSION` in, so skew normally
  just *misses*; the field check additionally catches a hand-edited or
  foreign file that collides on the key), and
- the stored SHA-256 of the result payload must verify, so silent
  on-disk corruption is a miss, not a wrong answer.

Any failed check is treated as a miss and healed by the next ``put``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading

from ..snap.format import CODE_VERSION

__all__ = ["ResultCache"]


class ResultCache:
    """Filesystem-backed cache of whole-experiment result payloads."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        os.makedirs(root, exist_ok=True)

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"result-{key}.json")

    def get(self, key: str) -> str | None:
        """The cached result JSON for ``key``, or None on any doubt."""
        try:
            with open(self.path(key), encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            with self._lock:
                self.misses += 1
            return None
        result = entry.get("result")
        ok = (
            isinstance(result, str)
            and entry.get("code_version") == CODE_VERSION
            and entry.get("result_sha256")
            == hashlib.sha256(result.encode()).hexdigest()
        )
        with self._lock:
            if ok:
                self.hits += 1
            else:
                self.misses += 1
        return result if ok else None

    def put(self, key: str, spec_dict: dict, result_json: str) -> None:
        """Atomically persist one finished experiment's result."""
        entry = {
            "key": key,
            "code_version": CODE_VERSION,
            "spec": spec_dict,
            "result": result_json,
            "result_sha256":
                hashlib.sha256(result_json.encode()).hexdigest(),
        }
        path = self.path(key)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)  # atomic: concurrent writers race benignly

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.root)
                       if name.startswith("result-")
                       and name.endswith(".json"))
        except OSError:
            return 0
