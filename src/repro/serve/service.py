"""The experiment service: HTTP/JSON control plane over a warm pool.

Dependency-free (stdlib ``http.server``): a :class:`ThreadingHTTPServer`
front end, a bounded per-client-fair :class:`~repro.serve.jobs.JobQueue`,
and a persistent :class:`~concurrent.futures.ProcessPoolExecutor` whose
workers are armed with the warm-start checkpoint pool
(:func:`repro.vibe.executor._enable_warm_start`), so repeated sweeps
never rebuild testbeds — the first cell per (provider, construction)
key snapshots a testbed, every later cell restores it byte-identically.

Endpoints (full schemas in ``docs/SERVICE.md``)::

    GET  /healthz            liveness + code version
    GET  /metrics            service counters (repro.obs registry JSON)
    POST /jobs               submit {"spec": ..., "client": ...}
    GET  /jobs               list job summaries
    GET  /jobs/<id>          one job summary
    GET  /jobs/<id>/result   the result payload (byte-identical to CLI)
    GET  /jobs/<id>/events   SSE stream of the job's event log
    POST /jobs/<id>/cancel   cancel queued (immediate) or running job

Two cache layers answer resubmissions without simulation: the
whole-spec :class:`~repro.serve.cache.ResultCache` (``cache_hit`` jobs
finish at submit time) and, inside cluster sweeps, the per-cell
``cell-<key>.json`` store shared bit-for-bit with ``vibe cluster
--checkpoint-dir`` campaigns.
"""

from __future__ import annotations

import concurrent.futures
import json
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs.metrics import MetricsRegistry
from ..snap.format import CODE_VERSION
from ..vibe.executor import _enable_warm_start, effective_jobs
from .cache import ResultCache
from .execute import (assemble_cluster_result, cluster_cell_worker,
                      cluster_plan, point_metrics, run_spec_worker)
from .jobs import Job, JobQueue, QueueFullError
from .spec import ExperimentSpec, SpecError

__all__ = ["ExperimentService", "DEFAULT_PORT"]

DEFAULT_PORT = 8642


class ExperimentService:
    """A long-running simulation service; start/stop from any thread."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 workers: int = 0, cache_dir: str = ".vibe-cache",
                 queue_capacity: int = 64,
                 quick_quiesce: bool = False) -> None:
        self.host = host
        self.port = port
        self.workers = effective_jobs(workers or -1)
        self.cache_dir = cache_dir
        self.quick_quiesce = quick_quiesce
        self.cache = ResultCache(cache_dir)
        self.queue = JobQueue(capacity=queue_capacity)
        self.registry = MetricsRegistry()
        self._mlock = threading.Lock()
        self._stopping = threading.Event()
        self._pool: ProcessPoolExecutor | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._threads: list[threading.Thread] = []
        self._started = False
        with self._mlock:
            self.registry.set_gauge("serve.workers", self.workers)

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        """Bind the port, arm the warm pool, start runner threads."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_enable_warm_start)
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        serve = threading.Thread(target=self._httpd.serve_forever,
                                 name="vibe-serve-http", daemon=True)
        serve.start()
        self._threads.append(serve)
        for i in range(self.workers):
            t = threading.Thread(target=self._runner,
                                 name=f"vibe-serve-runner-{i}",
                                 daemon=True)
            t.start()
            self._threads.append(t)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, drain: bool | None = None) -> None:
        """Shut down; ``drain=True`` (the default) finishes every queued
        and in-flight job first, ``drain=False`` (quick quiesce) cancels
        the queue and waits only for cells already executing."""
        if not self._started or self._stopping.is_set():
            return
        if drain is None:
            drain = not self.quick_quiesce
        self._stopping.set()
        assert self._httpd is not None and self._pool is not None
        self._httpd.shutdown()
        if not drain:
            self.queue.drain_cancel()
        self.queue.close()
        for t in self._threads[1:]:
            t.join()
        self._pool.shutdown(wait=True)
        self._httpd.server_close()
        self._threads[0].join(timeout=5.0)

    # -- metrics helpers ---------------------------------------------

    def _inc(self, name: str, by: int = 1) -> None:
        with self._mlock:
            self.registry.inc(name, by)

    def _gauge(self, name: str, value: float) -> None:
        with self._mlock:
            self.registry.set_gauge(name, value)

    def metrics_json(self) -> str:
        with self._mlock:
            self.registry.set_gauge("serve.queue.depth",
                                    self.queue.queued_count())
            self.registry.set_gauge("serve.cache.entries",
                                    len(self.cache))
            return self.registry.to_json(
                meta={"code_version": CODE_VERSION,
                      "workers": self.workers})

    # -- submission --------------------------------------------------

    def submit(self, payload: dict, default_client: str) -> dict:
        """Validate, cache-check, and enqueue one spec; returns the job
        summary.  Raises SpecError (400) or QueueFullError (429)."""
        spec = ExperimentSpec.from_dict(payload.get("spec", {}))
        client = str(payload.get("client") or default_client)
        job = Job(spec, client)
        self._inc("serve.jobs.submitted")
        cached = self.cache.get(job.key)
        if cached is not None:
            # served entirely from the content-addressed cache: the job
            # is born finished, payload byte-identical to the original
            job.cache_hit = True
            job.result = cached
            job.state = "done"
            job.finished_at = time.time()
            self.queue.register(job)
            job.emit("cached", key=job.key)
            job.emit("done", cache_hit=True)
            self._inc("serve.jobs.cache_hits")
            self._inc("serve.jobs.completed")
            return job.summary()
        position = self.queue.submit(job)
        return job.summary(queue_position=position)

    # -- job execution -----------------------------------------------

    def _runner(self) -> None:
        while True:
            job = self.queue.take(timeout=0.2)
            if job is None:
                if self._stopping.is_set() and self.queue.empty():
                    return
                continue
            self._gauge("serve.jobs.running", 1)
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 - job isolation
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_at = time.time()
                job.emit("failed", error=job.error)
                self._inc("serve.jobs.failed")
            finally:
                self._gauge("serve.jobs.running", 0)

    def _finish(self, job: Job, result: str, cache_hit: bool) -> None:
        job.result = result
        if not cache_hit:
            self.cache.put(job.key, job.spec.to_dict(), result)
        job.cache_hit = cache_hit
        job.state = "done"
        job.finished_at = time.time()
        job.emit("done", cache_hit=cache_hit)
        self._inc("serve.jobs.completed")

    def _cancelled(self, job: Job, where: str) -> None:
        job.state = "cancelled"
        job.finished_at = time.time()
        job.emit("cancelled", where=where)
        self._inc("serve.jobs.cancelled")

    def _run_job(self, job: Job) -> None:
        if job.cancel_requested.is_set():
            self._cancelled(job, "pre-run")
            return
        # re-check the result cache: an identical spec submitted by
        # another client may have finished while this job was queued
        cached = self.cache.get(job.key)
        if cached is not None:
            job.emit("cached", key=job.key)
            self._inc("serve.jobs.cache_hits")
            self._finish(job, cached, cache_hit=True)
            return
        if job.spec.kind == "cluster":
            self._run_cluster_job(job)
        else:
            self._run_single_cell_job(job)

    def _run_single_cell_job(self, job: Job) -> None:
        """run/chaos specs: one pool task computes the whole payload."""
        assert self._pool is not None
        job.cells_total = 1
        job.emit("plan", cells=1, cached_cells=0)
        future = self._pool.submit(run_spec_worker, job.spec.to_dict())
        while True:
            try:
                result = future.result(timeout=0.25)
                break
            except concurrent.futures.TimeoutError:
                if job.cancel_requested.is_set() and future.cancel():
                    self._cancelled(job, "queue")
                    return
        job.cells_done = 1
        self._inc("serve.cells.executed")
        job.emit("cell", index=0, cache_hit=False, done=1, total=1)
        if job.cancel_requested.is_set():
            self._cancelled(job, "post-cell")
            return
        self._finish(job, result, cache_hit=False)

    def _run_cluster_job(self, job: Job) -> None:
        """Fan the sweep's cells over the warm pool, streaming each
        completion; cells hit/feed the shared ``cell-<key>`` store."""
        from ..cluster.runner import load_cell, store_cell

        assert self._pool is not None
        providers, cfg, rates, cells, keys = cluster_plan(job.spec)
        job.cells_total = len(cells)
        points: list[dict | None] = [
            load_cell(self.cache_dir, key) for key in keys]
        pending: dict = {}
        job.emit("plan", cells=len(cells),
                 cached_cells=sum(p is not None for p in points))
        for i, (cell, key) in enumerate(zip(cells, keys)):
            if points[i] is not None:
                job.cells_done += 1
                job.cell_cache_hits += 1
                self._inc("serve.cells.cache_hits")
                self._emit_cell(job, i, cells[i], points[i],
                                cache_hit=True)
            else:
                fut = self._pool.submit(cluster_cell_worker, *cell)
                pending[fut] = (i, key)
        while pending:
            done, _ = concurrent.futures.wait(
                pending, timeout=0.25,
                return_when=concurrent.futures.FIRST_COMPLETED)
            for fut in done:
                i, key = pending.pop(fut)
                point = fut.result()  # a cell crash fails the job
                points[i] = point
                store_cell(self.cache_dir, key, point)
                job.cells_done += 1
                self._inc("serve.cells.executed")
                self._emit_cell(job, i, cells[i], point, cache_hit=False)
            if job.cancel_requested.is_set() and pending:
                # unstarted cells are dropped; cells already executing
                # run to completion and are persisted so no simulated
                # work is wasted and no pool worker is left wedged
                still_running = [f for f in pending if not f.cancel()]
                for fut in still_running:
                    i, key = pending[fut]
                    store_cell(self.cache_dir, key, fut.result())
                    self._inc("serve.cells.executed")
                self._cancelled(job, "mid-sweep")
                return
        if job.cancel_requested.is_set():
            self._cancelled(job, "post-sweep")
            return
        result = assemble_cluster_result(job.spec, points)
        self._finish(job, result, cache_hit=False)

    def _emit_cell(self, job: Job, index: int, cell: tuple, point: dict,
                   cache_hit: bool) -> None:
        provider, _cfg, rate, _check = cell
        job.emit("cell", index=index, provider=provider, rate=rate,
                 cache_hit=cache_hit, done=job.cells_done,
                 total=job.cells_total, metrics=point_metrics(point))


# -- HTTP layer ------------------------------------------------------


def _make_handler(service: ExperimentService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.0"

        def log_message(self, *_args) -> None:  # silence per-request spam
            pass

        # -- helpers -------------------------------------------------

        def _json(self, code: int, obj: dict) -> None:
            body = json.dumps(obj, sort_keys=True).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _raw(self, code: int, body: bytes,
                 content_type: str = "application/json",
                 headers: dict | None = None) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for k, v in (headers or {}).items():
                self.send_header(k, v)
            self.end_headers()
            self.wfile.write(body)

        def _body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw or b"{}")
            except ValueError as exc:
                raise SpecError(f"request body is not JSON: {exc}") \
                    from None
            if not isinstance(payload, dict):
                raise SpecError("request body must be a JSON object")
            return payload

        def _job_or_404(self, job_id: str):
            job = service.queue.get(job_id)
            if job is None:
                self._json(404, {"error": f"no job {job_id!r}"})
            return job

        # -- methods -------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            service._inc("serve.http.requests")
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            try:
                if parts == ["healthz"]:
                    self._json(200, {"ok": True,
                                     "code_version": CODE_VERSION,
                                     "workers": service.workers})
                elif parts == ["metrics"]:
                    self._raw(200, service.metrics_json().encode())
                elif parts == ["jobs"]:
                    jobs = service.queue.jobs()
                    self._json(200, {"jobs": [j.summary() for j in jobs]})
                elif len(parts) == 2 and parts[0] == "jobs":
                    job = self._job_or_404(parts[1])
                    if job is not None:
                        pos = (service.queue.position(job)
                               if job.state == "queued" else None)
                        self._json(200, job.summary(queue_position=pos))
                elif len(parts) == 3 and parts[0] == "jobs" \
                        and parts[2] == "result":
                    job = self._job_or_404(parts[1])
                    if job is None:
                        pass
                    elif job.result is None:
                        self._json(409, {"error": f"job {job.id} is "
                                                  f"{job.state}; no "
                                                  "result yet"})
                    else:
                        # the payload must stay byte-identical to the
                        # direct CLI output, so the cache-hit marker
                        # travels in a header, never in the body
                        self._raw(200, job.result.encode(), headers={
                            "X-VIBE-Cache":
                                "hit" if job.cache_hit else "miss",
                            "X-VIBE-Key": job.key,
                        })
                elif len(parts) == 3 and parts[0] == "jobs" \
                        and parts[2] == "events":
                    job = self._job_or_404(parts[1])
                    if job is not None:
                        self._stream(job)
                else:
                    self._json(404, {"error": f"no route {self.path!r}"})
            except (BrokenPipeError, ConnectionResetError):
                pass

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            service._inc("serve.http.requests")
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            try:
                if parts == ["jobs"]:
                    if service._stopping.is_set():
                        self._json(503, {"error": "shutting down"})
                        return
                    payload = self._body()
                    summary = service.submit(
                        payload, default_client=self.client_address[0])
                    self._json(201, summary)
                elif len(parts) == 3 and parts[0] == "jobs" \
                        and parts[2] == "cancel":
                    job = self._job_or_404(parts[1])
                    if job is not None:
                        ok = service.queue.cancel(job.id)
                        self._json(200, {"cancelled": ok,
                                         "state": job.state})
                else:
                    self._json(404, {"error": f"no route {self.path!r}"})
            except SpecError as exc:
                self._json(400, {"error": str(exc)})
            except QueueFullError as exc:
                self._json(429, {"error": str(exc)})
            except (BrokenPipeError, ConnectionResetError):
                pass

        # -- SSE -----------------------------------------------------

        def _stream(self, job) -> None:
            """Server-sent events: replay the job's event log from the
            start, then follow it live until the job finishes.  The log
            is append-only, so every subscriber — early or late — sees
            every event exactly once."""
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            idx = 0
            while True:
                while idx < len(job.events):
                    event = job.events[idx]
                    idx += 1
                    data = json.dumps(event, sort_keys=True)
                    self.wfile.write(
                        f"event: {event['event']}\n"
                        f"data: {data}\n\n".encode())
                self.wfile.flush()
                if job.finished and idx >= len(job.events):
                    break
                if service._stopping.is_set():
                    break
                service.queue.wait_event(job, idx, timeout=0.25)
            self.wfile.write(b"event: end\ndata: {}\n\n")
            self.wfile.flush()

    return Handler
