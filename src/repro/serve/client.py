"""Service client: stdlib-urllib wrapper over the control-plane API.

Used by ``vibe submit`` / ``vibe jobs`` and by the tests; knows how to
submit specs, poll for completion, fetch byte-exact results, and parse
the ``/jobs/<id>/events`` SSE stream into a sequence of event dicts.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An API call failed; carries the HTTP status and server message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to one ``vibe serve`` instance at ``base_url``."""

    def __init__(self, base_url: str, client: str = "",
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.client = client
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(f"{self.base_url}{path}", data=data,
                                     headers=headers, method=method)
        try:
            return urllib.request.urlopen(req, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read() or b"{}").get(
                    "error", exc.reason)
            except ValueError:
                message = str(exc.reason)
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: "
                                  f"{exc.reason}") from None

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict:
        with self._request(method, path, payload) as resp:
            return json.loads(resp.read())

    # -- API ---------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict:
        return self._json("GET", "/metrics")

    def submit(self, spec: dict, client: str | None = None) -> dict:
        """POST one spec; returns the job summary (maybe already done)."""
        payload: dict = {"spec": spec}
        name = client if client is not None else self.client
        if name:
            payload["client"] = name
        return self._json("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def result(self, job_id: str) -> tuple[str, bool]:
        """The finished job's payload bytes (as str) and cache-hit flag.

        The payload is returned exactly as served — callers that write
        it to disk get bytes identical to the direct CLI's ``--json-out``.
        """
        with self._request("GET", f"/jobs/{job_id}/result") as resp:
            body = resp.read().decode()
            hit = resp.headers.get("X-VIBE-Cache") == "hit"
        return body, hit

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the job leaves the queued/running states."""
        deadline = time.time() + timeout
        while True:
            summary = self.job(job_id)
            if summary["state"] not in ("queued", "running"):
                return summary
            if time.time() >= deadline:
                raise ServiceError(0, f"timed out waiting for {job_id} "
                                      f"(state {summary['state']})")
            time.sleep(poll)

    def follow(self, job_id: str):
        """Yield the job's SSE events as dicts, ending after the final
        ``end`` sentinel (which is not yielded)."""
        with self._request("GET", f"/jobs/{job_id}/events") as resp:
            data_lines: list[bytes] = []
            for raw in resp:
                line = raw.rstrip(b"\r\n")
                if line.startswith(b"data:"):
                    data_lines.append(line[5:].strip())
                elif line == b"" and data_lines:
                    event = json.loads(b"\n".join(data_lines))
                    data_lines = []
                    if not event:  # the {} payload of "event: end"
                        return
                    yield event
