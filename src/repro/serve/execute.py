"""Spec execution: the exact code path the direct CLI takes.

The byte-identity contract lives here.  For every spec kind the result
payload is produced by the same function the one-shot CLI uses:

- ``run``     -> :func:`repro.vibe.suite.run_benchmark` serialised by
  :func:`repro.vibe.metrics.results_to_json` (what ``vibe run
  --json-out`` writes);
- ``cluster`` -> the runner's cells + :func:`repro.cluster.assemble_report`
  (what ``vibe cluster --json-out`` writes);
- ``chaos``   -> :func:`repro.faults.run_chaos` ``.to_json()`` (what
  ``vibe chaos --json-out`` writes).

Cluster specs additionally decompose into the runner's canonical
``(provider, cfg, rate, check)`` cells so the service can fan them out
over its persistent worker pool, stream per-cell progress, and cache
each cell under the same ``cell-<key>.json`` identity that
``vibe cluster --checkpoint-dir`` uses.
"""

from __future__ import annotations

from .spec import ExperimentSpec

__all__ = ["execute_spec", "cluster_plan", "run_spec_worker",
           "cluster_cell_worker", "point_metrics"]


def _cluster_pieces(spec: ExperimentSpec):
    """(providers, cfg, rates, check) for a cluster spec."""
    from ..cluster.runner import ClusterConfig

    params = dict(spec.params)
    providers = params.pop("providers")
    rates = params.pop("rates")
    check = params.pop("check")
    cfg = ClusterConfig(seed=spec.seed, **params)
    return providers, cfg, rates, check


def cluster_plan(spec: ExperimentSpec):
    """The sweep's cells in canonical order, plus their cache keys.

    Returns ``(providers, cfg, rates, cells, keys)`` where ``cells[i]``
    is the runner's ``(provider, cfg, rate, check)`` tuple and
    ``keys[i]`` its single-sourced :func:`repro.cluster.cell_key` —
    shared bit-for-bit with ``--checkpoint-dir`` campaigns.
    """
    from ..cluster.runner import cell_key, sweep_cells

    providers, cfg, rates, check = _cluster_pieces(spec)
    cells = sweep_cells(providers, cfg, rates, check)
    keys = [cell_key(*cell) for cell in cells]
    return providers, cfg, rates, cells, keys


def assemble_cluster_result(spec: ExperimentSpec,
                            points: list[dict]) -> str:
    """Fold finished cell points into the canonical report JSON."""
    from ..cluster.runner import assemble_report

    providers, cfg, rates, _check = _cluster_pieces(spec)
    return assemble_report(providers, cfg, rates, points).to_json()


def execute_spec(spec: ExperimentSpec) -> str:
    """Run the whole spec inline and return its result JSON.

    This is the reference path: the service's fanned-out execution must
    produce exactly these bytes (``tests/test_serve.py`` pins it).
    """
    if spec.kind == "run":
        from ..vibe.metrics import results_to_json
        from ..vibe.suite import run_benchmark

        params = spec.params
        kwargs = {}
        if params["fidelity"] != "packet":
            kwargs["fidelity"] = params["fidelity"]
        if "sizes" in params:
            kwargs["sizes"] = list(params["sizes"])
        result = run_benchmark(params["benchmark"], params["provider"],
                               **kwargs)
        return results_to_json(result)

    if spec.kind == "cluster":
        from ..cluster.runner import run_cluster

        providers, cfg, rates, check = _cluster_pieces(spec)
        report = run_cluster(providers, cfg, rates=rates, check=check)
        return report.to_json()

    if spec.kind == "chaos":
        from ..faults import run_chaos

        params = spec.params
        report = run_chaos(providers=params["providers"],
                           scenarios=params["scenarios"] or None,
                           seed=spec.seed, quick=params["quick"])
        return report.to_json()

    raise ValueError(f"unknown spec kind {spec.kind!r}")


def point_metrics(point: dict) -> dict:
    """The harvested metric snapshot streamed with each finished cell."""
    return {
        "goodput_rps": point.get("goodput_rps"),
        "p50_us": point.get("p50_us"),
        "p99_us": point.get("p99_us"),
        "completed": point.get("completed"),
        "violations": len(point.get("violations", ())),
    }


# -- picklable pool workers ------------------------------------------


def run_spec_worker(spec_dict: dict) -> str:
    """Execute a whole spec in a worker process (run/chaos jobs)."""
    return execute_spec(ExperimentSpec.from_dict(spec_dict))


def cluster_cell_worker(provider: str, cfg, rate, check: bool) -> dict:
    """Execute one cluster cell in a worker process.

    Delegates to the runner's own cell worker so the per-cell seed
    derivation — and therefore every simulated byte — matches a direct
    ``vibe cluster`` invocation exactly.
    """
    from ..cluster.runner import _point_worker

    point, _stats = _point_worker(provider, cfg, rate, check)
    return point
