"""Experiment control plane: the simulator as a long-running service.

Everything else in the suite is one-shot CLI — every sweep rebuilds
testbeds and recomputes identical cells.  This package runs the
simulator behind a dependency-free HTTP/JSON service (stdlib
``http.server`` only):

* :mod:`~repro.serve.spec` — :class:`ExperimentSpec`, the validated,
  canonicalised description of one experiment (``run`` / ``cluster`` /
  ``chaos``), content-addressed by the same
  :func:`repro.snap.snapshot_key` hash campaign checkpoints use;
* :mod:`~repro.serve.cache` — :class:`ResultCache`, atomic JSON files
  keyed by ``(spec, seed, code version)``, so an identical cell
  submitted by any client is served from cache byte-identically;
* :mod:`~repro.serve.jobs` — a bounded FIFO job queue with per-client
  round-robin fairness and an append-only per-job event log;
* :mod:`~repro.serve.execute` — spec -> result-JSON execution, shared
  verbatim with the direct CLI so served bytes ``cmp``-match it;
* :mod:`~repro.serve.service` — :class:`ExperimentService`, the HTTP
  server: job submission, status, results, an SSE event stream per
  job, and a ``/metrics`` endpoint exporting the service's own
  counters through the :mod:`repro.obs` registry;
* :mod:`~repro.serve.client` — :class:`ServiceClient`, the stdlib
  client behind ``vibe submit`` / ``vibe jobs``.

Correctness bar (proven by ``tests/test_serve.py`` and the CI ``serve``
job): a served cell's result JSON is byte-identical to the same cell
run via the direct CLI, and resubmitting it is answered from the
content-addressed cache with ``cache_hit: true`` and the same bytes.
"""

from __future__ import annotations

from .cache import ResultCache
from .client import ServiceClient, ServiceError
from .execute import execute_spec
from .jobs import Job, JobQueue, QueueFullError
from .service import ExperimentService
from .spec import ExperimentSpec, SpecError

__all__ = [
    "ExperimentSpec", "SpecError",
    "ResultCache",
    "Job", "JobQueue", "QueueFullError",
    "execute_spec",
    "ExperimentService",
    "ServiceClient", "ServiceError",
]
