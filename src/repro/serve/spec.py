"""Experiment specs: the validated unit of work a client submits.

A spec is ``{"kind": ..., "params": {...}, "seed": ...}`` — the same
inputs the one-shot CLI builds from its flags, normalised so that two
ways of asking for the same experiment (sparse vs. explicit defaults,
``--quick`` vs. the spelled-out quick grid, list vs. tuple) produce the
same canonical form and therefore the same content address.

The content address is :meth:`ExperimentSpec.result_key`:
``snapshot_key(canonical_repr, seed)`` — the PR 7 hash, which stamps
:data:`repro.snap.CODE_VERSION` into the key, so a code-version bump
silently invalidates every cached result without any migration logic.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from ..snap.format import snapshot_key

__all__ = ["ExperimentSpec", "SpecError", "KINDS"]

KINDS = ("run", "cluster", "chaos")

_FIDELITIES = ("packet", "auto", "flow")


class SpecError(ValueError):
    """The submitted spec is malformed; the message says how."""


def _canon(value):
    """Normalise JSON-decoded values into a stable, hashable shape."""
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _canon(v)) for k, v in value.items()))
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    raise SpecError(f"unsupported spec value {value!r} "
                    f"({type(value).__name__})")


def _require(params: dict, allowed: set, kind: str) -> None:
    unknown = set(params) - allowed
    if unknown:
        raise SpecError(f"unknown {kind} spec params: "
                        f"{', '.join(sorted(unknown))} "
                        f"(allowed: {', '.join(sorted(allowed))})")


def _providers(params: dict) -> tuple:
    from ..check import ALL_PROVIDERS

    raw = params.get("providers")
    if raw in (None, "all", []):
        return tuple(ALL_PROVIDERS)
    if isinstance(raw, str):
        raw = raw.split(",")
    provs = tuple(str(p) for p in raw)
    for p in provs:
        if p not in ALL_PROVIDERS:
            raise SpecError(f"unknown provider {p!r}; "
                            f"known: {', '.join(ALL_PROVIDERS)}")
    return provs


def _normalize_run(params: dict, seed: int) -> dict:
    from ..vibe.suite import SUITE

    _require(params, {"benchmark", "provider", "fidelity", "sizes"}, "run")
    benchmark = params.get("benchmark")
    if benchmark not in SUITE:
        raise SpecError(f"unknown benchmark {benchmark!r}; "
                        "see `vibe list`")
    fidelity = params.get("fidelity", "packet")
    if fidelity not in _FIDELITIES:
        raise SpecError(f"fidelity must be one of {_FIDELITIES}, "
                        f"got {fidelity!r}")
    out = {
        "benchmark": benchmark,
        "provider": str(params.get("provider", "clan")),
        "fidelity": fidelity,
    }
    if params.get("sizes"):
        out["sizes"] = tuple(int(s) for s in params["sizes"])
    return out


def _normalize_cluster(params: dict, seed: int) -> dict:
    from ..cluster.runner import (ClusterConfig, QUICK_RATE_GRID,
                                  resolve_rates)

    cfg_fields = {f.name for f in fields(ClusterConfig)} - {"seed"}
    _require(params, cfg_fields | {"providers", "rates", "check", "quick"},
             "cluster")
    cfg_kwargs = {k: params[k] for k in cfg_fields if k in params}
    try:
        cfg = ClusterConfig(seed=seed, **cfg_kwargs)
    except TypeError as exc:
        raise SpecError(f"bad cluster config: {exc}") from None
    rates = params.get("rates")
    if rates is not None:
        rates = tuple(float(r) for r in rates)
    elif params.get("quick"):
        rates = QUICK_RATE_GRID
    # resolve the grid now so quick/default/closed spellings of the
    # same sweep share one canonical form (and one cache key)
    rates = resolve_rates(cfg, rates)
    # canonicalise to the FULL config, so a sparse spec and one that
    # spells out every default share one canonical form and cache key
    out = {k: v for k, v in asdict(cfg).items() if k != "seed"}
    out["providers"] = _providers(params)
    out["rates"] = rates
    out["check"] = bool(params.get("check", False))
    return out


def _normalize_chaos(params: dict, seed: int) -> dict:
    from ..faults.scenarios import get_scenario

    _require(params, {"providers", "scenarios", "quick"}, "chaos")
    scenarios = params.get("scenarios") or ()
    if isinstance(scenarios, str):
        scenarios = [s for s in scenarios.split(",") if s]
    for name in scenarios:
        get_scenario(name)  # raises KeyError -> surfaced below
    return {
        "providers": _providers(params),
        "scenarios": tuple(str(s) for s in scenarios),
        "quick": bool(params.get("quick", False)),
    }


_NORMALIZERS = {
    "run": _normalize_run,
    "cluster": _normalize_cluster,
    "chaos": _normalize_chaos,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One validated, normalised experiment description."""

    kind: str
    params: dict = field(default_factory=dict)
    seed: int = 0

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Validate and normalise a JSON-decoded spec.

        Raises :class:`SpecError` with an actionable message on any
        malformed input — the service turns these into HTTP 400s.
        """
        if not isinstance(data, dict):
            raise SpecError(f"spec must be an object, got "
                            f"{type(data).__name__}")
        kind = data.get("kind")
        if kind not in KINDS:
            raise SpecError(f"spec kind must be one of {KINDS}, "
                            f"got {kind!r}")
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise SpecError("spec params must be an object")
        try:
            seed = int(data.get("seed", 0))
        except (TypeError, ValueError):
            raise SpecError(f"spec seed must be an int, "
                            f"got {data.get('seed')!r}") from None
        try:
            params = _NORMALIZERS[kind](dict(params), seed)
        except KeyError as exc:
            raise SpecError(str(exc)) from None
        return cls(kind=kind, params=params, seed=seed)

    def to_dict(self) -> dict:
        """JSON-ready form (tuples become lists; round-trips through
        :meth:`from_dict` to an equal spec)."""
        def plain(v):
            if isinstance(v, tuple):
                return [plain(x) for x in v]
            return v

        return {
            "kind": self.kind,
            "params": {k: plain(v) for k, v in self.params.items()},
            "seed": self.seed,
        }

    def canonical(self) -> str:
        """Stable repr of everything but the seed and code version."""
        return repr(("experiment-spec", self.kind,
                     _canon(self.params)))

    def result_key(self) -> str:
        """The spec's content address: ``(canonical, seed, CODE_VERSION)``
        hashed by the same :func:`~repro.snap.snapshot_key` campaign
        checkpoints and warm-start blobs use."""
        return snapshot_key(self.canonical(), self.seed)

    def describe(self) -> str:
        """One-line human label for job listings."""
        if self.kind == "run":
            return (f"run {self.params['benchmark']} "
                    f"[{self.params['provider']}]")
        if self.kind == "cluster":
            rates = self.params["rates"]
            label = "closed" if rates == (None,) else \
                ",".join(f"{r:g}" for r in rates)
            return (f"cluster {self.params.get('topology', 'star')} "
                    f"x{len(self.params['providers'])} providers "
                    f"@ {label}")
        return (f"chaos x{len(self.params['providers'])} providers"
                + (f" ({','.join(self.params['scenarios'])})"
                   if self.params["scenarios"] else ""))
