"""Job queue: bounded FIFO with per-client round-robin fairness.

A :class:`Job` is one submitted spec plus its whole observable life:
state machine (``queued -> running -> done|failed|cancelled``), an
append-only event log (what the SSE endpoint streams), and the result
payload once finished.  The :class:`JobQueue` holds queued jobs in one
FIFO *per client* and hands them out round-robin over clients, so one
client dumping a hundred sweeps cannot starve another's single cell —
within a client, submission order is preserved.

Everything is guarded by one lock + condition; event appends notify
every waiter, which is how both the SSE streamers and ``wait()``-style
pollers wake up without busy loops.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque

__all__ = ["Job", "JobQueue", "QueueFullError", "JOB_STATES"]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class QueueFullError(Exception):
    """The bounded queue is at capacity; the service answers 429."""


class Job:
    """One submitted experiment and its observable state."""

    _ids = itertools.count(1)

    def __init__(self, spec, client: str) -> None:
        self.id = f"job-{next(Job._ids):06d}"
        self.spec = spec
        self.client = client
        self.key = spec.result_key()
        self.state = "queued"
        self.cache_hit = False
        self.cells_total = 0
        self.cells_done = 0
        self.cell_cache_hits = 0
        self.result: str | None = None
        self.error: str | None = None
        self.submitted_at = time.time()
        self.finished_at: float | None = None
        self.cancel_requested = threading.Event()
        #: append-only; SSE streamers replay from index 0 so a late
        #: subscriber still sees every event exactly once
        self.events: list[dict] = []
        self._queue: "JobQueue | None" = None

    # -- events ------------------------------------------------------

    def emit(self, kind: str, **data) -> None:
        event = {"event": kind, "job": self.id, "seq": len(self.events)}
        event.update(data)
        q = self._queue
        if q is not None:
            with q._cond:
                self.events.append(event)
                q._cond.notify_all()
        else:
            self.events.append(event)

    # -- summaries ---------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def summary(self, queue_position: int | None = None) -> dict:
        out = {
            "id": self.id,
            "client": self.client,
            "kind": self.spec.kind,
            "label": self.spec.describe(),
            "key": self.key,
            "state": self.state,
            "cache_hit": self.cache_hit,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cell_cache_hits": self.cell_cache_hits,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }
        if queue_position is not None:
            out["queue_position"] = queue_position
        return out


class JobQueue:
    """Bounded multi-client FIFO with round-robin dispatch."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._cond = threading.Condition()
        #: client -> FIFO of queued jobs; OrderedDict so the round-robin
        #: order over clients is first-submission order, deterministic
        self._queues: "OrderedDict[str, deque[Job]]" = OrderedDict()
        self._rr: deque[str] = deque()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._closed = False

    # -- submission --------------------------------------------------

    def submit(self, job: Job) -> int:
        """Enqueue; returns the job's queue position (0 = next out)."""
        with self._cond:
            if self._closed:
                raise QueueFullError("service is shutting down")
            if self.queued_count() >= self.capacity:
                raise QueueFullError(
                    f"queue is full ({self.capacity} jobs); retry later")
            job._queue = self
            self._jobs[job.id] = job
            q = self._queues.get(job.client)
            if q is None:
                q = self._queues[job.client] = deque()
                self._rr.append(job.client)
            q.append(job)
            position = self._position_locked(job)
            self._cond.notify_all()
        job.emit("queued", position=position)
        return position

    def register(self, job: Job) -> None:
        """Track a job that never queues (whole-spec cache hit)."""
        with self._cond:
            job._queue = self
            self._jobs[job.id] = job

    # -- dispatch ----------------------------------------------------

    def take(self, timeout: float | None = None) -> Job | None:
        """Next job, round-robin over clients; None on timeout/closed."""
        with self._cond:
            deadline = None if timeout is None else time.time() + timeout
            while True:
                job = self._pop_locked()
                if job is not None:
                    job.state = "running"
                    moved = self._positions_locked()
                    break
                if self._closed:
                    return None
                remaining = None if deadline is None \
                    else deadline - time.time()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining if remaining is not None
                                else 0.5)
        job.emit("running")
        # everyone still queued just moved up; tell their streams
        for other, position in moved:
            other.emit("queue", position=position)
        return job

    def _pop_locked(self) -> Job | None:
        for _ in range(len(self._rr)):
            client = self._rr[0]
            self._rr.rotate(-1)
            q = self._queues.get(client)
            if q:
                return q.popleft()
        return None

    # -- introspection -----------------------------------------------

    def _positions_locked(self) -> list[tuple[Job, int]]:
        """(job, position) for every queued job, in dispatch order:
        round-robin over clients starting at the current rr head."""
        out = []
        queues = {c: list(q) for c, q in self._queues.items() if q}
        order = [c for c in self._rr if c in queues]
        depth = 0
        while queues:
            for client in list(order):
                q = queues.get(client)
                if not q:
                    queues.pop(client, None)
                    order.remove(client)
                    continue
                out.append((q.pop(0), len(out)))
            depth += 1
            if depth > self.capacity + 1:  # pragma: no cover - safety
                break
        return out

    def _position_locked(self, job: Job) -> int:
        for other, position in self._positions_locked():
            if other is job:
                return position
        return -1

    def position(self, job: Job) -> int:
        with self._cond:
            return self._position_locked(job)

    def queued_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def get(self, job_id: str) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._cond:
            return list(self._jobs.values())

    def empty(self) -> bool:
        with self._cond:
            return self.queued_count() == 0

    # -- cancellation / shutdown -------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: queued jobs are removed immediately; running
        jobs get their cancel flag set and stop between cells."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.finished:
                return False
            job.cancel_requested.set()
            q = self._queues.get(job.client)
            if job.state == "queued" and q is not None and job in q:
                q.remove(job)
                job.state = "cancelled"
                job.finished_at = time.time()
                moved = self._positions_locked()
                self._cond.notify_all()
            else:
                moved = []
        if job.state == "cancelled":
            job.emit("cancelled", where="queue")
            for other, position in moved:
                other.emit("queue", position=position)
        return True

    def drain_cancel(self) -> list[Job]:
        """Cancel every queued job (quick-quiesce shutdown)."""
        with self._cond:
            victims = [j for q in self._queues.values() for j in q]
            for q in self._queues.values():
                q.clear()
            for job in victims:
                job.state = "cancelled"
                job.finished_at = time.time()
                job.cancel_requested.set()
            self._cond.notify_all()
        for job in victims:
            job.emit("cancelled", where="shutdown")
        return victims

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def wait_event(self, job: Job, have: int, timeout: float) -> bool:
        """Block until ``job`` has more than ``have`` events (or timeout);
        returns whether new events are available."""
        with self._cond:
            if len(job.events) > have:
                return True
            self._cond.wait(timeout)
            return len(job.events) > have
