"""Shard boundary channels: wire records instead of local delivery.

A cut link is not a new channel class — the source shard's ordinary
:class:`~repro.hw.link.Channel` does all the work it would do in the
single-heap run (line serialisation, loss draw, fault fate), and only
its final delivery is diverted: instead of scheduling the sink
callback, the packet leaves as a ``(deliver_at, src_shard, seq,
packet)`` record.  The owning shard replays the *receiving* side —
switch arbitration, output-port FIFO contention, downlink — from its
own replica at exactly ``deliver_at``, so per-port contention semantics
survive the cut bit for bit.
"""

from __future__ import annotations

__all__ = ["CausalityError", "ShardBoundary"]


class CausalityError(RuntimeError):
    """A wire record arrived with a timestamp in the shard's past."""


class ShardBoundary:
    """Arms the cut channels of one shard and shuttles wire records.

    * flat (star) fabric: the cut point is each owned node's uplink —
      a packet whose destination lives elsewhere is exported and the
      peer replays ``switch.receive`` (switch latency, port FIFO and
      downlink are all destination-side).
    * tiered fabric: the cut point is each owned leaf's uplink and the
      peer replays ``spine.receive`` (spine latency, spine->leaf link,
      leaf delivery are all destination-side).
    """

    def __init__(self, tb, plan, index: int) -> None:
        self.tb = tb
        self.plan = plan
        self.index = index
        self.owned = set(plan.groups[index])
        self.outbox: list = []
        self.msgs_out = 0
        self.msgs_in = 0
        self._seq = 0
        owner = plan.owner
        fabric = tb.fabric
        switch = getattr(fabric, "switch", None)
        if switch is not None:
            self._entry = switch.receive
            for name in self.owned:
                node = fabric.node(name)
                node.nic.port.out_channel.shard_divert = self._divert
        else:
            self._entry = fabric.spine.receive
            for leaf in fabric.leaves:
                group = tuple(leaf.local_down)
                if group and owner[group[0]] == index:
                    leaf.uplink.shard_divert = self._divert
        self._owner = owner

    # -- source side -----------------------------------------------------
    def _divert(self, packet, deliver_at: float) -> bool:
        """Channel hook: export iff the destination lives on a peer."""
        if self._owner[packet.dst] == self.index:
            return False
        self._seq += 1
        self.outbox.append((deliver_at, self.index, self._seq, packet))
        return True

    def drain(self) -> list:
        records, self.outbox = self.outbox, []
        self.msgs_out += len(records)
        return records

    # -- destination side ------------------------------------------------
    def inject(self, records) -> None:
        """Schedule imported records for replay at their timestamps."""
        sim = self.tb.sim
        self.msgs_in += len(records)
        for record in sorted(records, key=_record_key):
            deliver_at = record[0]
            if deliver_at < sim._now:
                raise CausalityError(
                    f"shard {self.index}: record at {deliver_at} is in "
                    f"the past (now={sim._now})")
            timer = sim.timeout_at(deliver_at, record[3])
            timer.callbacks.append(self._replay)

    def _replay(self, event) -> None:
        self._entry(event.value)


def _record_key(record):
    return (record[0], record[1], record[2])
