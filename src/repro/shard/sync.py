"""Shard hosts and the conservative synchronization scheduler.

Each :class:`ShardHost` builds a *full replica* of the cluster testbed
— same constructor calls, same seeds, same order as the single-heap
:func:`~repro.cluster.runner.run_cluster_once` — but spawns only the
actors whose nodes it owns, so per-node state (CPU queues, NIC, RNG
streams) evolves identically to the single-heap run.

The :class:`ConservativeScheduler` drives all hosts in rounds.  Each
round it grants every shard the horizon ``T + L`` where ``T`` is the
global minimum of the shards' next-event times and all in-flight wire
records, and ``L`` is the cut-link lookahead: any packet exported by an
event at ``t in [T, T+L)`` arrives no earlier than ``t + L >= T + L``,
so nothing a peer can still send lands inside the granted window — the
SimBricks loose-synchronization invariant, checked at injection time
(:class:`~repro.shard.boundary.CausalityError`).  While the start gate
is unreleased the scheduler instead runs *lockstep* rounds (exactly one
instant), so the gate release folds with every shard parked at ``t0``.

Idle shards still receive every horizon grant and bump their clocks to
it (the null-message path), so a shard with no local work can never
deadlock peers waiting on its clock.
"""

from __future__ import annotations

import math
import multiprocessing

from ..cluster.runner import _build_actors, _port_stats
from ..cluster.topology import build_testbed, make_topology
from ..faults.injector import FaultInjector
from ..obs.harvest import harvest_shard_into
from ..obs.metrics import MetricsRegistry
from .boundary import ShardBoundary
from .gate import GateCoordinator, ShardGate
from .merge import LatencyTape

__all__ = ["ConservativeScheduler", "ShardHost"]

_INF = float("inf")


class _ShardFaultInjector(FaultInjector):
    """A fault injector that spawns active-fault processes only for the
    nodes this shard owns; the passive hooks need no restriction because
    only owned traffic ever reaches a shard's hook sites."""

    def __init__(self, testbed, plan, owned) -> None:
        super().__init__(testbed, plan)
        self._owned = owned

    def _matching_nodes(self, spec, suffix: str = ""):
        for node in super()._matching_nodes(spec, suffix):
            if node.name in self._owned:
                yield node


class ShardHost:
    """One shard: full replica construction, owned actors spawned."""

    def __init__(self, provider: str, cfg, rate_rps, plan, index: int,
                 fault_plan=None) -> None:
        self.index = index
        topo = make_topology(cfg.topology, cfg.nodes, cfg.servers)
        tb = build_testbed(provider, topo, seed=cfg.seed, check=False,
                          faults=None, fidelity=cfg.fidelity)
        self.tb = tb
        if fault_plan is not None and fault_plan.faults:
            injector = _ShardFaultInjector(tb, fault_plan, plan.owned(index))
            tb.injector = injector
            injector.arm()
        self.boundary = ShardBoundary(tb, plan, index)
        self.gate = ShardGate(tb.sim)
        self.cfg = cfg
        self.tapes = [LatencyTape(tb.sim)
                      for _ in range(max(1, cfg.tenants))]
        self.servers, self.clients = _build_actors(
            cfg, topo, tb, rate_rps, self.tapes, self.gate.view)
        owned = self.boundary.owned
        for i, server in enumerate(self.servers):
            if server.node in owned:
                tb.spawn(server.body(), f"server-{i}")
        for client in self.clients:
            if client.node in owned:
                tb.spawn(client.body(), f"client-{client.cid}")
        self.horizon_advances = 0
        self.violations: list[str] = []

    def peek(self) -> float:
        return self.tb.sim.peek()

    def run_round(self, horizon: float, inclusive: bool, imports) -> tuple:
        """Inject imports, run up to the horizon, report what crossed.

        Returns ``(next_t, exports, gate_events, violation)``.  An
        inclusive round runs events *at* the horizon too (the gate
        lockstep phase); a normal round runs strictly below it.
        """
        violation = None
        try:
            if imports:
                self.boundary.inject(imports)
            sim = self.tb.sim
            if inclusive:
                sim.run_below(math.nextafter(horizon, math.inf))
            else:
                sim.run_below(horizon)
        except Exception as exc:  # conformance violation or crash
            violation = f"{type(exc).__name__}: {exc}"
            self.violations.append(violation)
        self.horizon_advances += 1
        return (self.tb.sim.peek(), self.boundary.drain(),
                self.gate.drain_events(), violation)

    def finish(self, sync_stalls: int) -> dict:
        """Collect this shard's contribution to the merged point."""
        owned = self.boundary.owned
        clients = [c for c in self.clients if c.node in owned]
        servers = [s for s in self.servers if s.node in owned]
        counters = {
            "sync_stalls": sync_stalls,
            "msgs_exchanged": self.boundary.msgs_in + self.boundary.msgs_out,
            "horizon_advances": self.horizon_advances,
        }
        registry = MetricsRegistry()
        harvest_shard_into(registry, self.tb, owned, self.index, counters)
        providers = list(self.tb.providers.values())
        tenants = []
        for t in range(max(1, self.cfg.tenants)):
            tcl = [c for c in clients if c.tenant == t]
            tenants.append({
                "completed": sum(c.stats["completed"] for c in tcl),
                "failed": sum(c.stats["failed"] for c in tcl),
                "retried": sum(c.stats["retried"] for c in tcl),
                "abandoned": sum(c.stats["abandoned"] for c in tcl),
                "deadline_exceeded": sum(c.stats["deadline_exceeded"]
                                         for c in tcl),
                "shed_naks": sum(c.stats["shed_naks"] for c in tcl),
                "expected": sum(c.n_requests for c in tcl),
                "finishes": [x for c in tcl for x in c.finish_times],
                "sched": [x for c in tcl for x in c.schedule],
                "tape": self.tapes[t].records,
            })
        server_keys = ("served", "errors", "shed_queue", "shed_deadline",
                       "naks_sent", "conns_rejected")
        return {
            "tenants": tenants,
            "server_stats": {k: sum(s.stats[k] for s in servers)
                             for k in server_keys},
            "ports": _port_stats(self.tb),
            "retransmissions": sum(p.engine.retransmissions
                                   for p in providers),
            "recoveries": sum(p.recoveries for p in providers),
            "violations": list(self.violations),
            "registry": registry,
            "counters": counters,
        }


class ConservativeScheduler:
    """Round-driven conservative windows over a set of shard handles.

    ``shards`` is a list of transport handles (inline hosts, process
    proxies, or test fakes) exposing ``peek`` / ``start_round`` /
    ``finish_round`` / ``release``; ``route(record)`` names the owning
    shard of a wire record.  Host-agnostic so the protocol properties
    are testable without simulators (``tests/test_shard_sync.py``).
    """

    def __init__(self, shards, lookahead: float, route,
                 gate_expected: int = 0) -> None:
        if lookahead <= 0.0:
            raise ValueError("lookahead must be positive")
        self.shards = shards
        self.lookahead = lookahead
        self.route = route
        self.coordinator = (GateCoordinator(gate_expected)
                            if gate_expected > 0 else None)
        n = len(shards)
        self.pending: list[list] = [[] for _ in range(n)]
        self.sync_stalls = [0] * n
        self.rounds = 0
        self.horizons: list[float] = []
        self.violations: list[str] = []

    def run(self) -> list[str]:
        shards = self.shards
        pending = self.pending
        next_ts = [s.peek() for s in shards]
        while True:
            candidates = [t for t in next_ts if t != _INF]
            candidates += [r[0] for box in pending for r in box]
            if not candidates:
                break
            T = min(candidates)
            lockstep = (self.coordinator is not None
                        and not self.coordinator.released)
            if lockstep:
                horizon, inclusive = T, True
            else:
                horizon, inclusive = T + self.lookahead, False
            self.horizons.append(horizon)
            imports_by_shard = []
            for i, shard in enumerate(shards):
                imports, pending[i] = pending[i], []
                imports_by_shard.append(imports)
                idle = not imports and (next_ts[i] > horizon if inclusive
                                        else next_ts[i] >= horizon)
                if idle:
                    self.sync_stalls[i] += 1
                shard.start_round(horizon, inclusive, imports)
            self.rounds += 1
            gate_events: list = []
            for i, shard in enumerate(shards):
                next_t, exports, gevents, violation = shard.finish_round()
                next_ts[i] = next_t
                if violation is not None:
                    self.violations.append(violation)
                for record in exports:
                    pending[self.route(record)].append(record)
                gate_events.extend(gevents)
            if self.violations:
                break  # mirror the single-heap run: stop at the crash
            if lockstep and gate_events:
                released = self.coordinator.fold(gate_events)
                if released is not None:
                    t0, releaser = released
                    # the release schedules resume events at t0, so each
                    # shard's reported next_t is stale — refresh it, or
                    # the next window would overshoot the resumed work
                    for i, shard in enumerate(shards):
                        next_ts[i] = shard.release(t0, releaser)
        return self.violations


# -- transports -----------------------------------------------------------

class _InlineShard:
    """Same-process transport: the round runs during ``start_round``."""

    def __init__(self, host: ShardHost) -> None:
        self.host = host
        self._result = None

    def peek(self) -> float:
        return self.host.peek()

    def start_round(self, horizon, inclusive, imports) -> None:
        self._result = self.host.run_round(horizon, inclusive, imports)

    def finish_round(self):
        result, self._result = self._result, None
        return result

    def release(self, t0, releaser) -> float:
        self.host.gate.release(t0, releaser)
        return self.host.peek()

    def finish(self, sync_stalls: int) -> dict:
        return self.host.finish(sync_stalls)

    def close(self) -> None:
        pass


def _shard_worker(conn, provider, cfg, rate_rps, plan, index,
                  fault_plan) -> None:
    """Worker-process loop: build the host, serve scheduler requests.

    Id allocators are rebased to a per-shard band first, so ids minted
    on different shards can never collide inside one simulated cluster
    (conn-id dedup at the server, for instance).  Ids never influence
    timing or report bytes — shard 0's band starts at 1, the inline
    transport doesn't rebase at all, and all of them merge identically.
    """
    from ..sim.ids import _SPACES

    for space in _SPACES.values():
        space.reset(1 + index * 1_000_000_000)
    try:
        host = ShardHost(provider, cfg, rate_rps, plan, index, fault_plan)
        conn.send(("ok", host.peek()))
    except Exception as exc:
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return
    while True:
        msg = conn.recv()
        op = msg[0]
        if op == "round":
            conn.send(host.run_round(msg[1], msg[2], msg[3]))
        elif op == "release":
            host.gate.release(msg[1], msg[2])
            conn.send(host.peek())
        elif op == "finish":
            conn.send(host.finish(msg[1]))
        elif op == "stop":
            return


class _ProcessShard:
    """Pipe transport: one worker process per shard, one message pair
    per round (grant out, results back), so shards simulate their
    windows in real parallelism."""

    def __init__(self, provider, cfg, rate_rps, plan, index,
                 fault_plan) -> None:
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker,
            args=(child, provider, cfg, rate_rps, plan, index, fault_plan),
            daemon=True)
        self._proc.start()
        child.close()
        status, value = self._conn.recv()
        if status == "error":
            raise RuntimeError(f"shard {index} failed to build: {value}")
        self._peek = value

    def peek(self) -> float:
        return self._peek

    def start_round(self, horizon, inclusive, imports) -> None:
        self._conn.send(("round", horizon, inclusive, imports))

    def finish_round(self):
        return self._conn.recv()

    def release(self, t0, releaser) -> float:
        self._conn.send(("release", t0, releaser))
        return self._conn.recv()

    def finish(self, sync_stalls: int) -> dict:
        self._conn.send(("finish", sync_stalls))
        return self._conn.recv()

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):  # worker already gone
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
        self._conn.close()
