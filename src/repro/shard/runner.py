"""Sharded cluster points: partition, run, merge — byte-identical.

:func:`run_cluster_once_sharded` is the drop-in sharded counterpart of
:func:`~repro.cluster.runner.run_cluster_once`: same point dict, byte
for byte, for any shard count — plus a sync-stats dict describing what
the partitioned run cost (rounds, stalls, wire records).  The point
stays a pure function of ``(config, seed)`` because every aggregate the
merge folds is order-insensitive (sums and min/max over the shard
partition, a time-ordered latency fold, a collision-checked registry
union).
"""

from __future__ import annotations

from ..cluster.runner import _assemble_point, run_cluster_once
from ..cluster.topology import make_topology
from ..cluster.workload import LATENCY_BUCKETS
from .merge import fold_latency_tapes, merge_registries
from .partition import ShardPlan, check_fault_plan
from .sync import ConservativeScheduler, ShardHost, _InlineShard, _ProcessShard

__all__ = ["run_cluster_once_sharded"]


def run_cluster_once_sharded(provider: str, cfg, rate_rps: float | None = None,
                             *, shards: int = 2, workers: str = "process",
                             check: bool = False,
                             fault_plan=None) -> tuple[dict, dict | None]:
    """Run one cluster point partitioned over ``shards`` simulators.

    Returns ``(point, stats)``; ``point`` is byte-identical to the
    single-heap :func:`run_cluster_once` result.  ``workers`` selects
    the transport: ``"process"`` (one worker process per shard) or
    ``"inline"`` (all shards stepped in this process — same bytes,
    no parallelism; what the equivalence tests drive).
    """
    if check:
        raise ValueError("--check is not supported with shards > 1: the "
                         "conformance checker needs the whole cluster "
                         "in one simulator")
    if shards < 2:
        return run_cluster_once(provider, cfg, rate_rps, check=check,
                                fault_plan=fault_plan), None
    if workers not in ("inline", "process"):
        raise ValueError(f"unknown shard transport {workers!r}")
    if fault_plan is not None:
        check_fault_plan(fault_plan)
    topo = make_topology(cfg.topology, cfg.nodes, cfg.servers)
    plan = ShardPlan(provider, topo, shards)

    hosts: list = []
    try:
        for i in range(shards):
            if workers == "process":
                hosts.append(_ProcessShard(provider, cfg, rate_rps, plan, i,
                                           fault_plan))
            else:
                hosts.append(_InlineShard(
                    ShardHost(provider, cfg, rate_rps, plan, i, fault_plan)))
        sched = ConservativeScheduler(
            hosts, plan.lookahead,
            lambda record: plan.owner[record[3].dst],
            gate_expected=cfg.clients)
        sched.run()
        results = [host.finish(sched.sync_stalls[i])
                   for i, host in enumerate(hosts)]
    finally:
        for host in hosts:
            host.close()

    # fold each tenant's latency tapes across shards into one finished
    # histogram, and sum the rest of its aggregates — the same shape
    # _tenant_rollup builds from a single-heap run
    n_tenants = len(results[0]["tenants"])
    count_keys = ("completed", "failed", "retried", "abandoned",
                  "deadline_exceeded", "shed_naks", "expected")
    tenants = []
    for t in range(n_tenants):
        parts = [r["tenants"][t] for r in results]
        ten = {k: sum(p[k] for p in parts) for k in count_keys}
        ten["finishes"] = [x for p in parts for x in p["finishes"]]
        ten["sched"] = [x for p in parts for x in p["sched"]]
        ten["hist"] = fold_latency_tapes([p["tape"] for p in parts],
                                         "latency_us", LATENCY_BUCKETS)
        tenants.append(ten)
    server_stats = {k: sum(r["server_stats"][k] for r in results)
                    for k in results[0]["server_stats"]}
    merged = merge_registries([r["registry"] for r in results])
    ports = {"drops": 0, "contended": 0, "backpressured": 0}
    for r in results:
        for key in ports:
            ports[key] += r["ports"][key]
    point = _assemble_point(
        provider, cfg, rate_rps,
        tenants=tenants,
        server_stats=server_stats,
        ports=ports,
        retransmissions=sum(r["retransmissions"] for r in results),
        recoveries=sum(r["recoveries"] for r in results),
        violations=[v for r in results for v in r["violations"]],
    )
    stats = {
        "shards": shards,
        "rounds": sched.rounds,
        "sync_stalls": sum(sched.sync_stalls),
        "msgs_exchanged": sum(r["counters"]["msgs_exchanged"]
                              for r in results),
        "horizon_advances": sum(r["counters"]["horizon_advances"]
                                for r in results),
        "per_shard": [r["counters"] for r in results],
        "metrics": merged.snapshot(),
    }
    return point, stats
