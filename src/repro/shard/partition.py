"""Deterministic partitioning of one cluster over N shards.

The partition is a pure function of (topology, shard count) — see
:func:`repro.cluster.topology.shard_groups` — and the *lookahead* is
the one quantity the sync protocol needs from the hardware model: the
minimum propagation delay of any cut channel.  Every channel in a
fabric shares ``network.prop_delay``, so the lookahead is exactly that,
regardless of where the cut falls.
"""

from __future__ import annotations

from ..cluster.topology import Topology, shard_groups
from ..providers.registry import get_spec

__all__ = ["ShardPlan", "check_fault_plan"]

#: fault kinds that run as per-node processes (no shared RNG / counter
#: state across nodes), safe to replicate per shard as-is
_PER_NODE_KINDS = ("tlb_flush", "cpu_stall")


class ShardPlan:
    """Node ownership, cut lookahead and per-shard identity (picklable)."""

    def __init__(self, provider, topo: Topology, shards: int) -> None:
        self.shards = shards
        self.topo = topo
        self.groups = shard_groups(topo, shards)
        #: node name -> owning shard index
        self.owner: dict[str, int] = {}
        for si, group in enumerate(self.groups):
            for name in group:
                self.owner[name] = si
        #: minimum time a cut crossing takes: the slack each shard may
        #: run ahead of the global minimum without missing an import
        self.lookahead = get_spec(provider).network.prop_delay
        if self.lookahead <= 0.0:
            raise ValueError(
                "sharding needs a positive link propagation delay "
                "(zero lookahead would serialize every event)")

    def owned(self, index: int) -> frozenset:
        return frozenset(self.groups[index])


def check_fault_plan(plan) -> None:
    """Reject fault plans whose decisions cannot be replicated per shard.

    Stochastic (``rate < 1.0``) and stateful (``skip``/``count``) specs
    draw from one RNG / counter stream shared across every matching
    node, so splitting the traffic across shards would split the stream
    and change which opportunities fire.  Per-node storm kinds are
    exempt: each node runs its own process with its own schedule.
    """
    for spec in plan.faults:
        if spec.kind in _PER_NODE_KINDS:
            continue
        if spec.rate < 1.0 or spec.skip or spec.count is not None:
            raise ValueError(
                f"fault spec {spec.kind!r} is not shard-safe: sharded "
                "runs require rate=1.0, skip=0 and count=None (use a "
                "time window to bound the fault instead)")
