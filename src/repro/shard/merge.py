"""Deterministic merge of per-shard results.

Two rules make the merge a pure function of the shard contributions:

* **Metric names collide loudly.**  Each shard harvests only metrics it
  owns (its nodes' counters plus its own ``shard.<i>.*`` namespace), so
  a collision means two shards both claimed a metric — silently keeping
  the last write would hide exactly the ownership bugs this layer must
  surface.  The only sanctioned overlaps are the explicitly *additive*
  totals each shard contributes a partial count to.
* **Latency observations fold in ``(time, value)`` order.**  Each shard
  records a tape of ``(now, latency)`` pairs; folding the pooled tapes
  chronologically replays the single-heap observation order, making the
  histogram sums and quantiles bit-identical.
"""

from __future__ import annotations

from ..obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["LatencyTape", "fold_latency_tapes", "merge_registries"]

#: metric names every shard contributes a partial count to
_ADDITIVE = frozenset({"wire.switch.forwarded"})
#: ...and prefixes (fault totals partition by where the traffic ran)
_ADDITIVE_PREFIXES = ("faults.",)


def _additive(name: str) -> bool:
    return name in _ADDITIVE or name.startswith(_ADDITIVE_PREFIXES)


def merge_registries(parts) -> MetricsRegistry:
    """Union per-shard registries; raise on non-additive collisions."""
    merged = MetricsRegistry()
    for registry in parts:
        for name in registry.names():
            metric = registry.get(name)
            if name in merged:
                if isinstance(metric, Counter) and _additive(name):
                    merged.inc(name, metric.value)
                    continue
                raise ValueError(
                    f"colliding metric {name!r} in shard merge: two "
                    "shards both published it and it is not an "
                    "additive total")
            if isinstance(metric, Counter):
                merged.inc(name, metric.value)
            elif isinstance(metric, Gauge):
                merged.set_gauge(name, metric.value)
            elif isinstance(metric, Histogram):
                out = merged.histogram(name, metric.bounds)
                out.counts = list(metric.counts)
                out.count = metric.count
                out.total = metric.total
                out.vmin = metric.vmin
                out.vmax = metric.vmax
            else:  # pragma: no cover - no other metric kinds exist
                raise TypeError(f"unknown metric kind for {name!r}")
    return merged


class LatencyTape:
    """Histogram-compatible recorder: keeps ``(now, value)`` pairs."""

    __slots__ = ("sim", "records")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.records: list = []

    def observe(self, value: float) -> None:
        self.records.append((self.sim._now, value))


def fold_latency_tapes(tapes, name: str, bounds) -> Histogram:
    """One histogram from pooled tapes, observed in global time order."""
    hist = Histogram(name, bounds)
    pooled = [pair for tape in tapes for pair in tape]
    pooled.sort()
    for _, value in pooled:
        hist.observe(value)
    return hist
