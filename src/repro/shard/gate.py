"""The start gate across shards.

The single-heap :class:`~repro.cluster.workload.StartGate` is a local
barrier: the last arrival stamps ``t0`` and releases everyone.  Across
shards no single simulator sees all arrivals, so each shard's
:class:`ShardGate` only *reports* arrivals and abandons as ``(time,
cid, kind)`` events; the :class:`GateCoordinator` (scheduler-side)
folds them in global ``(time, cid)`` order — the same order the
single-heap run processes them, because same-instant client steps run
in spawn order — and broadcasts the release.

While the gate is unreleased the scheduler runs *lockstep* rounds (one
instant at a time), so every fold happens with all shards parked at
exactly the release instant and waiters resume at ``t0`` precisely.
"""

from __future__ import annotations

from ..sim import Event

__all__ = ["GateCoordinator", "ShardGate"]


class ShardGate:
    """Shard-local gate state: collects events, parks waiters."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.t0: float | None = None
        #: (time, cid, kind) tuples accumulated since the last drain
        self.events: list = []
        #: (cid, Event) in local arrival order
        self._waiters: list = []

    def view(self, cid: int) -> "_GateView":
        return _GateView(self, cid)

    def arrive(self, cid: int):
        """Process fragment: report the arrival and park until release."""
        self.events.append((self.sim.now, cid, "arrive"))
        ev = Event(self.sim)
        self._waiters.append((cid, ev))
        yield ev

    def abandon(self, cid: int) -> None:
        self.events.append((self.sim.now, cid, "abandon"))

    def drain_events(self) -> list:
        events, self.events = self.events, []
        return events

    def release(self, t0: float, releaser: int | None) -> None:
        """Resume parked waiters; called between rounds at ``now == t0``.

        The releaser (the arrival that tipped the barrier) resumes
        first: in the single-heap run it never yields at all — it
        continues inline after ``fire()`` — so its post-gate work must
        precede the other waiters' resumptions here too.  Everyone else
        wakes in arrival order, exactly like ``Signal.fire``.
        """
        self.t0 = t0
        waiters, self._waiters = self._waiters, []
        for cid, ev in waiters:
            if cid == releaser:
                ev.succeed()
        for cid, ev in waiters:
            if cid != releaser:
                ev.succeed()


class _GateView:
    """Per-client facade matching the ``StartGate`` surface clients use."""

    __slots__ = ("_gate", "cid")

    def __init__(self, gate: ShardGate, cid: int) -> None:
        self._gate = gate
        self.cid = cid

    @property
    def t0(self) -> float | None:
        return self._gate.t0

    def arrive(self):
        return self._gate.arrive(self.cid)

    def abandon(self) -> None:
        self._gate.abandon(self.cid)


class GateCoordinator:
    """Scheduler-side fold of gate events, replicating ``StartGate``.

    ``fold`` consumes one round's events (from every shard) and returns
    ``(t0, releaser_cid)`` the round the barrier tips; ``releaser_cid``
    is ``None`` when an abandon tipped it (nobody continues inline in
    that case).
    """

    def __init__(self, expected: int) -> None:
        self.expected = expected
        self.ready = 0
        self.t0: float | None = None
        self.releaser: int | None = None

    @property
    def released(self) -> bool:
        return self.t0 is not None

    def fold(self, events) -> tuple | None:
        if self.t0 is not None:
            return None
        for time, cid, kind in sorted(events, key=lambda e: (e[0], e[1])):
            if kind == "arrive":
                self.ready += 1
                if self.ready >= self.expected and self.t0 is None:
                    self.t0 = time
                    self.releaser = cid
            else:
                self.expected -= 1
                if self.ready >= self.expected and self.t0 is None:
                    self.t0 = time
                    self.releaser = None
        if self.t0 is not None:
            return (self.t0, self.releaser)
        return None
