"""Sharded, time-synchronized simulation (SimBricks-style).

One cluster simulation is partitioned across shard hosts, each owning a
subset of nodes (star) or whole leaf switches (dumbbell/fattree) with
its own :class:`~repro.sim.Simulator`.  Packets crossing a cut link
leave as timestamped wire records and are replayed on the owning peer;
a conservative scheduler grants each shard a bounded horizon per round
(global minimum next-event time plus the cut-link propagation delay),
so no shard ever executes an event earlier than a message a peer could
still send.

The headline claim — pinned by ``tests/test_shard_equivalence.py`` —
is that the merged report is byte-identical to the single-heap run for
any shard count: a pure function of (config, seed).
"""

from .boundary import CausalityError, ShardBoundary
from .gate import GateCoordinator, ShardGate
from .merge import fold_latency_tapes, merge_registries
from .partition import ShardPlan, check_fault_plan
from .runner import run_cluster_once_sharded
from .sync import ConservativeScheduler, ShardHost

__all__ = [
    "CausalityError",
    "ConservativeScheduler",
    "GateCoordinator",
    "ShardBoundary",
    "ShardGate",
    "ShardHost",
    "ShardPlan",
    "check_fault_plan",
    "fold_latency_tapes",
    "merge_registries",
    "run_cluster_once_sharded",
]
