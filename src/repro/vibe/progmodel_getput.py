"""Get/Put programming-model benchmarks (paper §5 future work).

Measures one-sided operation latency/throughput through the
:class:`repro.layers.getput.GetPut` layer: puts are RDMA writes on
every provider; gets are one-sided only where the provider implements
RDMA read (the IBA model), and fall back to a request/reply emulation
elsewhere — the benchmark quantifies the cost of that fallback.
"""

from __future__ import annotations

from ..layers.getput import GetPut
from ..layers.msg import MsgEndpoint
from ..providers.registry import ProviderSpec, Testbed
from ..units import paper_size_sweep
from .metrics import BenchResult, Measurement

__all__ = ["getput_latency"]


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def _run(provider, size: int, iters: int, op: str, seed: int):
    tb = Testbed(provider, seed=seed)
    out: dict = {}

    def owner():
        h = tb.open(tb.node_names[1], "owner")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        req = yield from h.connect_wait(73)
        yield from h.accept(req, vi)
        gp = GetPut(h, vi, msg)
        win = yield from gp.expose(max(size, 4096))
        h.write(win, bytes(i % 256 for i in range(size)))
        if op == "get" and not h.provider.supports_rdma_read:
            yield from gp.serve()
        else:
            while "t1" not in out:
                yield tb.sim.timeout(50.0)

    def peer():
        h = tb.open(tb.node_names[0], "peer")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi)
        yield from msg.setup()
        yield from h.connect(vi, tb.node_names[1], 73)
        gp = GetPut(h, vi, msg)
        win = yield from gp.attach()
        data = bytes(size)
        # warmup (stages buffers, fills caches)
        if op == "put":
            yield from gp.put(win, 0, data)
        else:
            yield from gp.get(win, 0, size)
        t0 = tb.now
        for _ in range(iters):
            if op == "put":
                yield from gp.put(win, 0, data)
            else:
                got = yield from gp.get(win, 0, size)
                assert len(got) == size
        out["t1"] = tb.now
        out["lat"] = (out["t1"] - t0) / iters
        if op == "get" and not h.provider.supports_rdma_read:
            yield from gp.stop_server()

    pproc = tb.spawn(peer(), "peer")
    tb.spawn(owner(), "owner")
    tb.run(pproc)
    return out["lat"]


def getput_latency(provider: "str | ProviderSpec",
                   sizes: list[int] | None = None,
                   iters: int = 12, seed: int = 0) -> BenchResult:
    """Per-operation completion latency of put and get vs size."""
    sizes = sizes or [s for s in paper_size_sweep() if s >= 16]
    points = []
    for s in sizes:
        put = _run(provider, s, iters, "put", seed)
        get = _run(provider, s, iters, "get", seed)
        points.append(Measurement(
            param=s,
            extra={"put_us": put, "get_us": get, "get_over_put": get / put},
        ))
    return BenchResult("getput_latency", _name(provider), points)
