"""Category 2 base micro-benchmarks: Lat, Bw, Cpu (paper §3.2.1).

The base configuration: 100 % buffer reuse, one data segment, no
completion queue, one VI connection, no notify mechanism.  Polling and
blocking variants (Figs. 3 & 4).
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec
from ..units import paper_size_sweep
from ..via.constants import WaitMode
from .executor import parallel_map
from .harness import TransferConfig, run_bandwidth, run_latency
from .metrics import BenchResult

__all__ = ["base_latency", "base_bandwidth"]


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def base_latency(provider: "str | ProviderSpec",
                 sizes: list[int] | None = None,
                 mode: WaitMode = WaitMode.POLL,
                 jobs: int = 1,
                 **overrides) -> BenchResult:
    """Lat/Cpu: ping-pong latency and CPU utilisation vs message size.

    ``jobs`` fans the per-size simulations over worker processes;
    results are bit-identical to the serial sweep.
    """
    sizes = sizes or paper_size_sweep()
    tasks = [(provider, TransferConfig(size=size, mode=mode, **overrides))
             for size in sizes]
    points = parallel_map(run_latency, tasks, jobs)
    return BenchResult("base_latency", _name(provider), points,
                       {"mode": mode.value, **overrides})


def base_bandwidth(provider: "str | ProviderSpec",
                   sizes: list[int] | None = None,
                   mode: WaitMode = WaitMode.POLL,
                   jobs: int = 1,
                   **overrides) -> BenchResult:
    """Bw: streaming bandwidth vs message size."""
    sizes = sizes or paper_size_sweep()
    tasks = [(provider, TransferConfig(size=size, mode=mode, **overrides))
             for size in sizes]
    points = parallel_map(run_bandwidth, tasks, jobs)
    return BenchResult("base_bandwidth", _name(provider), points,
                       {"mode": mode.value, **overrides})
