"""Impact of multiple active VIs (paper §3.2.4, Fig. 6): LatMV, BwMV,
CpuMV.

Both endpoints create ``n`` VIs before the test; the ping-pong /
streaming traffic uses one connected pair.  A firmware that polls every
open VI's send queue (Berkeley VIA) slows down linearly in ``n``; hosts
and NICs with directly-indexed doorbells (M-VIA, cLAN) are flat.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec
from ..via.constants import WaitMode
from .harness import TransferConfig, run_bandwidth, run_latency
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_VI_COUNTS", "multivi_latency", "multivi_bandwidth"]

DEFAULT_VI_COUNTS = (1, 2, 4, 8, 16, 32)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def multivi_latency(provider: "str | ProviderSpec",
                    size: int = 4,
                    vi_counts=DEFAULT_VI_COUNTS,
                    mode: WaitMode = WaitMode.POLL,
                    **overrides) -> BenchResult:
    """Latency vs number of open VIs, for one message size."""
    points = []
    for n in vi_counts:
        cfg = TransferConfig(size=size, mode=mode, extra_vis=n - 1,
                             **overrides)
        m = run_latency(provider, cfg)
        points.append(Measurement(param=n, latency_us=m.latency_us,
                                  cpu_send=m.cpu_send, cpu_recv=m.cpu_recv))
    return BenchResult("multivi_latency", _name(provider), points,
                       {"size": size, "mode": mode.value})


def multivi_bandwidth(provider: "str | ProviderSpec",
                      size: int = 4096,
                      vi_counts=DEFAULT_VI_COUNTS,
                      mode: WaitMode = WaitMode.POLL,
                      **overrides) -> BenchResult:
    """Bandwidth vs number of open VIs, for one message size."""
    points = []
    for n in vi_counts:
        cfg = TransferConfig(size=size, mode=mode, extra_vis=n - 1,
                             **overrides)
        m = run_bandwidth(provider, cfg)
        points.append(Measurement(param=n, bandwidth_mbs=m.bandwidth_mbs,
                                  cpu_send=m.cpu_send, cpu_recv=m.cpu_recv))
    return BenchResult("multivi_bandwidth", _name(provider), points,
                       {"size": size, "mode": mode.value})
