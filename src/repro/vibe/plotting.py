"""ASCII rendering of benchmark series (terminal "figures").

The paper's evaluation is figures; this renders a multi-series sweep as
a character plot so ``vibe figure N --plot`` produces something
figure-shaped without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Iterable

from .metrics import BenchResult

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    """Map value into [0, 1] linearly or logarithmically."""
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0.5
    return (value - lo) / (hi - lo)


def ascii_plot(results: Iterable[BenchResult], metric: str,
               title: str | None = None, width: int = 64, height: int = 18,
               log_x: bool = True, log_y: bool = False) -> str:
    """Render one metric of several BenchResults as a character plot.

    The x axis is each point's ``param`` (message size etc.); one marker
    per series.  Log-x is the default because the paper's sweeps are
    logarithmic in message size.
    """
    results = list(results)
    series = []
    for res in results:
        pts = [(p.param, p.get(metric, None)) for p in res.points
               if isinstance(p.param, (int, float))
               and p.get(metric, None) is not None]
        if pts:
            series.append((res.provider, pts))
    if not series:
        return "(nothing to plot)"

    xs = [x for _n, pts in series for x, _y in pts]
    ys = [y for _n, pts in series for _x, y in pts]
    if log_x and min(xs) <= 0:
        log_x = False
    if log_y and min(ys) <= 0:
        log_y = False
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if not log_y:
        y_lo = min(0.0, y_lo)

    grid = [[" "] * width for _ in range(height)]
    for idx, (_name, pts) in enumerate(series):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            col = round(_scale(x, x_lo, x_hi, log_x) * (width - 1))
            row = round(_scale(y, y_lo, y_hi, log_y) * (height - 1))
            grid[height - 1 - row][col] = marker

    def fmt(v: float) -> str:
        if v >= 10000:
            return f"{v:.3g}"
        if v == int(v):
            return str(int(v))
        return f"{v:.2f}"

    y_label_width = max(len(fmt(y_hi)), len(fmt(y_lo)))
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = fmt(y_hi).rjust(y_label_width)
        elif i == height - 1:
            label = fmt(y_lo).rjust(y_label_width)
        else:
            label = " " * y_label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * y_label_width + " +" + "-" * width)
    x_axis = (fmt(x_lo) + (" (log)" if log_x else "")).ljust(width - len(fmt(x_hi))) + fmt(x_hi)
    lines.append(" " * (y_label_width + 2) + x_axis)
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {name}"
                        for i, (name, _pts) in enumerate(series))
    lines.append(" " * (y_label_width + 2) + legend)
    return "\n".join(lines)
