"""Category 1: non-data-transfer micro-benchmarks (paper §3.1, Table 1,
Figs. 1 & 2).

Measures the cost of the basic VIA housekeeping operations:

1. creating / destroying VIs,
2. establishing / tearing down VI connections,
3. memory registration / deregistration (swept over region size),
4. creating / destroying completion queues.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec, Testbed
from ..units import paper_size_sweep
from .metrics import BenchResult, Measurement

__all__ = ["nondata_costs", "memreg_sweep", "NONDATA_OPS"]

NONDATA_OPS = (
    "create_vi",
    "destroy_vi",
    "establish_connection",
    "teardown_connection",
    "create_cq",
    "destroy_cq",
)


def nondata_costs(provider: "str | ProviderSpec", repeats: int = 5,
                  seed: int = 0) -> BenchResult:
    """Table 1: per-operation cost in microseconds (mean of ``repeats``)."""
    tb = Testbed(provider, seed=seed)
    acc: dict[str, list[float]] = {op: [] for op in NONDATA_OPS}

    def timed(gen):
        """Run a timed op, returning (elapsed, value)."""
        t0 = tb.now
        value = yield from gen
        return tb.now - t0, value

    def client_body():
        h = tb.open(tb.node_names[0], "client")
        for _ in range(repeats):
            dt, vi = yield from timed(h.create_vi())
            acc["create_vi"].append(dt)
            dt, _ = yield from timed(h.destroy_vi(vi))
            acc["destroy_vi"].append(dt)

            dt, cq = yield from timed(h.create_cq())
            acc["create_cq"].append(dt)
            dt, _ = yield from timed(h.destroy_cq(cq))
            acc["destroy_cq"].append(dt)

        for i in range(repeats):
            vi = yield from h.create_vi()
            dt, _ = yield from timed(h.connect(vi, tb.node_names[1], 100 + i))
            acc["establish_connection"].append(dt)
            dt, _ = yield from timed(h.disconnect(vi))
            acc["teardown_connection"].append(dt)
            yield from h.destroy_vi(vi)

    def server_body():
        h = tb.open(tb.node_names[1], "server")
        for i in range(repeats):
            vi = yield from h.create_vi()
            req = yield from h.connect_wait(100 + i)
            yield from h.accept(req, vi)
            # wait for the client-initiated teardown
            while vi.is_connected:
                yield tb.sim.timeout(5.0)
            yield from h.destroy_vi(vi)

    cproc = tb.spawn(client_body(), "client")
    sproc = tb.spawn(server_body(), "server")
    tb.run(cproc)
    tb.run(sproc)
    points = [
        Measurement(param=op, extra={"cost_us": sum(v) / len(v)})
        for op, v in acc.items()
    ]
    name = provider if isinstance(provider, str) else provider.name
    return BenchResult("nondata", name, points, {"repeats": repeats})


def memreg_sweep(provider: "str | ProviderSpec",
                 sizes: list[int] | None = None,
                 seed: int = 0) -> BenchResult:
    """Figs. 1 & 2: registration and deregistration cost vs region size.

    The whole sweep deliberately runs in ONE testbed: each size is
    measured at the simulated-clock offset left by its predecessors, and
    ``tb.now - t0`` rounds differently at different absolute offsets, so
    splitting the sweep across fresh per-size testbeds would perturb the
    last float bits.  Parallel callers (``--jobs``) therefore fan out
    over *providers* (see :func:`repro.vibe.suite.run_all` and the
    figure-1/2 paths in :mod:`repro.cli` / :mod:`repro.vibe.reportgen`),
    which is exact — every provider is an independent testbed either way.
    """
    sizes = sizes or paper_size_sweep()
    name = provider if isinstance(provider, str) else provider.name
    tb = Testbed(provider, seed=seed)
    points: list[Measurement] = []

    def body():
        h = tb.open(tb.node_names[0], "app")
        for size in sizes:
            region = h.alloc(size)
            t0 = tb.now
            mh = yield from h.register_mem(region)
            reg = tb.now - t0
            t0 = tb.now
            yield from h.deregister_mem(mh)
            dereg = tb.now - t0
            points.append(Measurement(
                param=size,
                extra={"register_us": reg, "deregister_us": dereg,
                       "pages": mh.page_count},
            ))

    proc = tb.spawn(body(), "memreg")
    tb.run(proc)
    return BenchResult("memreg", name, points)
