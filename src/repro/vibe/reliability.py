"""Impact of reliability levels (paper §3.2.5 / TR [6]): RelLat, RelBw.

Sweeps VIA's three reliability levels on one provider.  Unreliable
sends complete locally; reliable delivery completes on a NIC-level
acknowledgement; reliable reception completes only after the data is
placed in the target's memory.  With injected packet loss the benchmark
also demonstrates the *semantics*: unreliable traffic silently loses
messages while the reliable levels retransmit and deliver everything.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec, Testbed
from ..via.constants import CompletionStatus, Reliability, WaitMode
from ..via.descriptor import Descriptor
from ..via.errors import VipTimeout
from .harness import TransferConfig, run_bandwidth, run_latency
from .metrics import BenchResult, Measurement

__all__ = ["reliability_latency", "reliability_bandwidth", "loss_goodput"]

_LEVELS = (Reliability.UNRELIABLE, Reliability.RELIABLE_DELIVERY,
           Reliability.RELIABLE_RECEPTION)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def reliability_latency(provider: "str | ProviderSpec",
                        size: int = 1024,
                        mode: WaitMode = WaitMode.POLL,
                        **overrides) -> BenchResult:
    points = []
    for level in _LEVELS:
        cfg = TransferConfig(size=size, mode=mode, reliability=level,
                             **overrides)
        m = run_latency(provider, cfg)
        points.append(Measurement(param=level.value, latency_us=m.latency_us,
                                  cpu_send=m.cpu_send, cpu_recv=m.cpu_recv))
    return BenchResult("reliability_latency", _name(provider), points,
                       {"size": size, "mode": mode.value})


def reliability_bandwidth(provider: "str | ProviderSpec",
                          size: int = 4096,
                          mode: WaitMode = WaitMode.POLL,
                          **overrides) -> BenchResult:
    points = []
    for level in _LEVELS:
        cfg = TransferConfig(size=size, mode=mode, reliability=level,
                             **overrides)
        m = run_bandwidth(provider, cfg)
        points.append(Measurement(param=level.value,
                                  bandwidth_mbs=m.bandwidth_mbs,
                                  cpu_send=m.cpu_send, cpu_recv=m.cpu_recv))
    return BenchResult("reliability_bandwidth", _name(provider), points,
                       {"size": size, "mode": mode.value})


def loss_goodput(provider: "str | ProviderSpec",
                 size: int = 1024,
                 count: int = 60,
                 loss_rate: float = 0.02,
                 seed: int = 0) -> BenchResult:
    """Messages delivered under injected loss, per reliability level.

    Unreliable loses roughly ``loss_rate`` of messages (each direction);
    the reliable levels deliver all of them at a retransmission cost.
    """
    points = []
    for level in _LEVELS:
        delivered, retx, elapsed = _lossy_stream(provider, size, count,
                                                 loss_rate, level, seed)
        points.append(Measurement(
            param=level.value,
            extra={
                "delivered": delivered,
                "sent": count,
                "retransmissions": retx,
                "elapsed_us": elapsed,
            },
        ))
    return BenchResult("loss_goodput", _name(provider), points,
                       {"size": size, "loss_rate": loss_rate})


def _lossy_stream(provider, size, count, loss_rate, level, seed):
    tb = Testbed(provider, seed=seed, loss_rate=loss_rate)
    out: dict = {"delivered": 0}
    deadline = 200_000.0

    def client_body():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi(reliability=level)
        buf = h.alloc(max(size, 4))
        mh = yield from h.register_mem(buf)
        yield from h.connect(vi, tb.node_names[1], 53)
        segs = [h.segment(buf, mh, 0, size)]
        t0 = tb.now
        for _ in range(count):
            yield from h.post_send(vi, Descriptor.send(segs))
            try:
                desc = yield from h.send_wait(vi, timeout=deadline)
            except VipTimeout:
                break
            if desc.status is not CompletionStatus.SUCCESS:
                # retransmissions exhausted: the VI is in ERROR and
                # another post would raise VipStateError
                break
        out["elapsed"] = tb.now - t0

    def server_body():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi(reliability=level)
        buf = h.alloc(max(size, 4))
        mh = yield from h.register_mem(buf)
        segs = [h.segment(buf, mh, 0, size)]
        for _ in range(count):
            yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(53)
        yield from h.accept(req, vi)
        for _ in range(count):
            try:
                yield from h.recv_wait(vi, timeout=deadline)
                out["delivered"] += 1
            except VipTimeout:
                break

    cproc = tb.spawn(client_body(), "client")
    sproc = tb.spawn(server_body(), "server")
    tb.run(cproc)
    tb.run(sproc)
    # data-path retransmissions can happen on either endpoint (NAK-driven
    # resends, lost-ack retries), so aggregate across the whole testbed;
    # handshake retransmissions are deliberately excluded — they exist
    # even for unreliable VIs, whose *data* path must never retransmit
    retx = sum(p.engine.retransmissions for p in tb.providers.values())
    return out["delivered"], retx, out.get("elapsed", 0.0)
