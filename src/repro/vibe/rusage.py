"""getrusage analog (paper §3.2: "CPU utilization is measured by using
the getrusage function")."""

from __future__ import annotations

from ..hw.cpu import Rusage
from ..via.provider import NicHandle

__all__ = ["getrusage", "cpu_utilization", "Rusage"]


def getrusage(handle: NicHandle) -> Rusage:
    """Snapshot the accumulated user/system time of a session's actor."""
    return handle.actor.snapshot()


def cpu_utilization(before: Rusage, after: Rusage, wall_us: float) -> float:
    """Fraction of wall time spent on-CPU between two snapshots."""
    if wall_us <= 0:
        raise ValueError("wall time must be positive")
    return (after - before).total / wall_us
