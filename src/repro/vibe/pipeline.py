"""Impact of sender pipeline length (paper §3.2.5 / TR [6]): PLBw.

Bandwidth as a function of the number of outstanding (un-reaped) sends
the sender keeps in flight.  Reliable-delivery providers pay a full
NIC-to-NIC round trip per completion, so a window of 1 serialises them
hard; unreliable providers complete locally and saturate earlier.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec
from ..via.constants import WaitMode
from .harness import TransferConfig, run_bandwidth
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_WINDOWS", "pipeline_bandwidth"]

DEFAULT_WINDOWS = (1, 2, 4, 8, 16, 32, 64)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def pipeline_bandwidth(provider: "str | ProviderSpec",
                       size: int = 4096,
                       windows=DEFAULT_WINDOWS,
                       mode: WaitMode = WaitMode.POLL,
                       **overrides) -> BenchResult:
    points = []
    for w in windows:
        cfg = TransferConfig(size=size, mode=mode, window=w, **overrides)
        m = run_bandwidth(provider, cfg)
        points.append(Measurement(param=w, bandwidth_mbs=m.bandwidth_mbs,
                                  cpu_send=m.cpu_send, cpu_recv=m.cpu_recv))
    return BenchResult("pipeline_bandwidth", _name(provider), points,
                       {"size": size, "mode": mode.value})
