"""One-shot report generation: regenerate the whole paper as Markdown.

``vibe report --out report/`` runs Table 1 and every figure, the
component breakdowns, and the LogGP fits, then writes a single
``REPORT.md`` (with per-experiment text files alongside) — the artifact
a platform maintainer would publish for their stack.
"""

from __future__ import annotations

import pathlib

from ..via.constants import WaitMode
from . import (
    base_transfer,
    clientserver,
    cq_bench,
    multivi,
    nondata,
    addrtrans,
)
from .executor import parallel_map
from .report import render_figure, render_memreg, render_table1

__all__ = ["generate_report"]

DEFAULT_PROVIDERS = ("mvia", "bvia", "clan")


def generate_report(out_dir: "str | pathlib.Path",
                    providers=DEFAULT_PROVIDERS,
                    quick: bool = False,
                    jobs: int = 1) -> pathlib.Path:
    """Run the core suite and write REPORT.md; returns its path.

    ``jobs`` fans the independent per-provider simulations of each
    section over worker processes (see :mod:`repro.vibe.executor`);
    the report content is identical for any ``jobs`` value.
    """
    # deferred: repro.models pulls the vibe harness back in (cycle)
    from ..models.breakdown import latency_breakdown, render_breakdowns
    from ..models.logp import extract

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    sizes = [4, 256, 1024, 4096, 12288, 28672] if quick else None
    sections: list[tuple[str, str]] = []

    # Table 1
    nd = dict(zip(providers, parallel_map(
        nondata.nondata_costs, [(p, 3) for p in providers], jobs)))
    sections.append(("Table 1 — non-data-transfer costs",
                     render_table1(nd)))

    # Figs. 1 & 2
    mr = dict(zip(providers, parallel_map(
        nondata.memreg_sweep, [(p, sizes) for p in providers], jobs)))
    sections.append(("Fig. 1 — memory registration",
                     render_memreg(mr, "register_us")))
    sections.append(("Fig. 2 — memory deregistration",
                     render_memreg(mr, "deregister_us")))

    # Fig. 3
    lat = parallel_map(base_transfer.base_latency,
                       [(p, sizes) for p in providers], jobs)
    bw = parallel_map(base_transfer.base_bandwidth,
                      [(p, sizes) for p in providers], jobs)
    sections.append(("Fig. 3 — base latency, polling (us)",
                     render_figure(lat, "latency_us", "")))
    sections.append(("Fig. 3 — base bandwidth, polling (MB/s)",
                     render_figure(bw, "bandwidth_mbs", "")))

    # Fig. 4
    blat = parallel_map(base_transfer.base_latency,
                        [(p, sizes, WaitMode.BLOCK) for p in providers],
                        jobs)
    sections.append(("Fig. 4 — latency, blocking (us)",
                     render_figure(blat, "latency_us", "")))
    sections.append(("Fig. 4 — sender CPU utilisation, blocking",
                     render_figure(blat, "cpu_send", "")))

    # Fig. 5 (BVIA) — reduced levels in quick mode
    levels = (1.0, 0.5, 0.0) if quick else (1.0, 0.75, 0.5, 0.25, 0.0)
    ru = addrtrans.reuse_latency("bvia", sizes, reuse_levels=levels,
                                 iters=32, jobs=jobs)
    sections.append(("Fig. 5 — BVIA latency vs buffer reuse (us)",
                     render_figure(ru, "latency_us", "")))

    # §4.3.3 CQ overhead
    cq = parallel_map(cq_bench.cq_overhead,
                      [(p, [4, 1024]) for p in providers], jobs)
    from .metrics import merge_tables

    sections.append(("§4.3.3 — completion-queue overhead (us)",
                     merge_tables(cq, "overhead_us", "")))

    # Fig. 6
    mv = parallel_map(multivi.multivi_latency,
                      [(p,) for p in providers], jobs)
    sections.append(("Fig. 6 — latency vs #active VIs, 4 B (us)",
                     render_figure(mv, "latency_us", "")))

    # Fig. 7
    for req in (16, 256):
        cs = parallel_map(clientserver.client_server,
                          [(p, req, sizes, 16) for p in providers], jobs)
        sections.append((f"Fig. 7 — client/server, request {req} B (tps)",
                         render_figure(cs, "tps", "")))

    # observability: one profiled ping-pong per provider
    from ..obs.profile import profile_transfer

    profiles = parallel_map(profile_transfer,
                            [(p, 256, 0) for p in providers], jobs)
    sections.append(("Profiled 256 B ping-pong (phase spans)",
                     "\n\n".join(p.summary() for p in profiles)))

    # component breakdowns + LogGP
    bds = parallel_map(latency_breakdown,
                       [(p, 1024) for p in providers], jobs)
    sections.append(("Component breakdown, 1 KiB transfer (us)",
                     render_breakdowns(bds)))
    fits = [extract(p, sizes=[4, 1024, 4096, 12288]) for p in providers]
    loggp = ["provider    L+2o (us)   G (us/B)    g (us)"]
    for fit in fits:
        loggp.append(f"{fit.provider:<10s} {fit.L + 2 * fit.o:9.2f} "
                     f"{fit.G:10.4f} {fit.g:9.2f}")
    sections.append(("LogGP parameters (fitted)", "\n".join(loggp)))

    # assemble
    from .. import __version__

    lines = ["# VIBe report", "",
             f"Package: repro {__version__}.  "
             f"Providers: {', '.join(providers)}.  All numbers from the",
             "deterministic simulation; regenerate with `vibe report`.",
             ""]
    for i, (title, body) in enumerate(sections, start=1):
        stem = "".join(c if c.isalnum() else "_"
                       for c in title.lower()).strip("_")[:48]
        (out / f"{i:02d}_{stem}.txt").write_text(body + "\n")
        lines += [f"## {title}", "", "```", body, "```", ""]
    path = out / "REPORT.md"
    path.write_text("\n".join(lines))
    return path
