"""Distributed-shared-memory programming-model benchmarks (paper §5).

Measures the DSM layer's fundamental protocol costs on each provider:

- **read-miss latency** — fetch a page from its home;
- **write-miss latency** — obtain exclusive ownership (recall the
  writer, invalidate readers, grant);
- **ping-pong sharing** — two nodes alternately writing one page, the
  worst case for an invalidation protocol (every access is a full
  ownership migration).

A DSM is the most latency-sensitive layer in the paper's §3.3 list —
every page fault is a small-message round trip plus a page-sized
transfer, so the provider's VIBe latency profile translates directly
into fault costs."""

from __future__ import annotations

from ..layers.dsm import connect_mesh
from ..providers.registry import ProviderSpec, Testbed
from .metrics import BenchResult, Measurement

__all__ = ["dsm_fault_latency", "dsm_pingpong_sharing"]


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def dsm_fault_latency(provider: "str | ProviderSpec",
                      page_sizes=(1024, 4096, 16384),
                      faults: int = 8, seed: int = 0) -> BenchResult:
    """Read-miss and write-miss latency per page size (two nodes)."""
    points = []
    for page_size in page_sizes:
        read_us, write_us = _fault_trial(provider, page_size, faults, seed)
        points.append(Measurement(
            param=page_size,
            extra={"read_miss_us": read_us, "write_miss_us": write_us},
        ))
    return BenchResult("dsm_fault_latency", _name(provider), points)


def _fault_trial(provider, page_size: int, faults: int, seed: int):
    npages = faults + 1
    tb = Testbed(provider, node_names=("n0", "n1"), seed=seed)
    setups = connect_mesh(tb, ["n0", "n1"], npages=npages,
                          page_size=page_size)
    out: dict = {}

    def app0():
        node = yield from setups[0]
        out["ready0"] = True
        while "done1" not in out:
            yield tb.sim.timeout(25.0)

    def app1():
        node = yield from setups[1]
        while "ready0" not in out:
            yield tb.sim.timeout(25.0)
        # even pages are homed at n0: pure remote read misses
        remote_pages = [p for p in range(npages) if node.home(p) == 0]
        t0 = tb.now
        for p in remote_pages[:faults]:
            yield from node.read(p * page_size, 1)
        read_us = (tb.now - t0) / min(faults, len(remote_pages))
        # write misses on the same pages: READ -> ownership upgrade
        t0 = tb.now
        for p in remote_pages[:faults]:
            yield from node.write(p * page_size, b"w")
        write_us = (tb.now - t0) / min(faults, len(remote_pages))
        out["read"] = read_us
        out["write"] = write_us
        out["done1"] = True

    p0 = tb.spawn(app0(), "app0")
    p1 = tb.spawn(app1(), "app1")
    tb.run(p1)
    tb.run(p0)
    return out["read"], out["write"]


def dsm_pingpong_sharing(provider: "str | ProviderSpec",
                         page_size: int = 4096,
                         rounds: int = 10, seed: int = 0) -> Measurement:
    """Two nodes alternately write one page: per-migration cost."""
    tb = Testbed(provider, node_names=("n0", "n1"), seed=seed)
    setups = connect_mesh(tb, ["n0", "n1"], npages=2, page_size=page_size)
    out: dict = {}

    def app(i):
        node = yield from setups[i]
        # strict alternation on page 1 via a turn flag on page 0 would
        # itself fault; alternate through simulated-time turn taking
        for r in range(rounds):
            while out.get("turn", 0) % 2 != i:
                yield tb.sim.timeout(5.0)
            if i == 0 and r == 0:
                out["t0"] = tb.now
            yield from node.write(page_size, bytes([i]) * 16)
            out["turn"] = out.get("turn", 0) + 1
        if i == 1:
            out["t1"] = tb.now
        out[f"stats{i}"] = node.stats

    p0 = tb.spawn(app(0), "app0")
    p1 = tb.spawn(app(1), "app1")
    tb.run(p1)
    tb.run(p0)
    per_migration = (out["t1"] - out["t0"]) / (2 * rounds - 1)
    transfers = out["stats0"].ownership_transfers \
        + out["stats1"].ownership_transfers + out["stats0"].recalls \
        + out["stats1"].recalls
    return Measurement(param=page_size, latency_us=per_migration,
                       extra={"ownership_moves": transfers})
