"""A repository of VIBe results (paper §5: "We plan to create a
repository of VIBe results for different VIA platforms and distribute
them").

Serialises :class:`~repro.vibe.metrics.BenchResult` objects to JSON,
organises them by platform under a directory tree, and produces
cross-platform comparison reports — so results measured on one machine
(or one simulated stack) can be published and diffed against another.

Layout::

    <root>/<platform>/<benchmark>.json
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from .metrics import BenchResult, Measurement, merge_tables

__all__ = ["ResultRepository", "result_to_dict", "result_from_dict"]

_FORMAT_VERSION = 1


def result_to_dict(result: BenchResult) -> dict:
    return {
        "format": _FORMAT_VERSION,
        "benchmark": result.benchmark,
        "provider": result.provider,
        "params": result.params,
        "meta": result.meta,
        "points": [
            {
                "param": p.param,
                "latency_us": p.latency_us,
                "bandwidth_mbs": p.bandwidth_mbs,
                "cpu_send": p.cpu_send,
                "cpu_recv": p.cpu_recv,
                "tps": p.tps,
                "extra": p.extra,
            }
            for p in result.points
        ],
    }


def result_from_dict(data: dict) -> BenchResult:
    if data.get("format") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {data.get('format')!r}"
        )
    points = [
        Measurement(
            param=p["param"],
            latency_us=p.get("latency_us"),
            bandwidth_mbs=p.get("bandwidth_mbs"),
            cpu_send=p.get("cpu_send"),
            cpu_recv=p.get("cpu_recv"),
            tps=p.get("tps"),
            extra=p.get("extra", {}),
        )
        for p in data["points"]
    ]
    return BenchResult(data["benchmark"], data["provider"], points,
                       data.get("params", {}), data.get("meta", {}))


class ResultRepository:
    """A directory tree of stored benchmark results."""

    def __init__(self, root: "str | pathlib.Path") -> None:
        self.root = pathlib.Path(root)

    # -- storing -----------------------------------------------------------
    def save(self, platform: str, result: BenchResult) -> pathlib.Path:
        """Store one result under ``platform`` (e.g. 'clan-sim')."""
        directory = self.root / _safe(platform)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{_safe(result.benchmark)}.json"
        path.write_text(json.dumps(result_to_dict(result), indent=2,
                                   default=str))
        return path

    def save_all(self, platform: str,
                 results: Iterable[BenchResult]) -> list[pathlib.Path]:
        return [self.save(platform, r) for r in results]

    # -- loading ------------------------------------------------------------
    def load(self, platform: str, benchmark: str) -> BenchResult:
        path = self.root / _safe(platform) / f"{_safe(benchmark)}.json"
        if not path.exists():
            raise FileNotFoundError(
                f"no stored result for {benchmark!r} on {platform!r}"
            )
        return result_from_dict(json.loads(path.read_text()))

    def platforms(self) -> list[str]:
        if not self.root.exists():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def benchmarks(self, platform: str) -> list[str]:
        directory = self.root / _safe(platform)
        if not directory.exists():
            return []
        return sorted(p.stem for p in directory.glob("*.json"))

    # -- comparison ------------------------------------------------------------
    def compare(self, benchmark: str, metric: str,
                platforms: list[str] | None = None) -> str:
        """Side-by-side report of one metric across stored platforms."""
        platforms = platforms or self.platforms()
        results = []
        for platform in platforms:
            try:
                result = self.load(platform, benchmark)
            except FileNotFoundError:
                continue
            # label rows by platform, not by the provider they ran on
            results.append(BenchResult(result.benchmark, platform,
                                       result.points, result.params,
                                       result.meta))
        if not results:
            return f"(no stored results for {benchmark!r})"
        return merge_tables(results, metric,
                            title=f"{benchmark}: {metric} across platforms")

    def diff(self, benchmark: str, metric: str, base: str,
             other: str) -> list[tuple]:
        """Per-point relative change of ``other`` vs ``base``.

        Returns ``[(param, base_value, other_value, relative_change)]``.
        """
        a = self.load(base, benchmark)
        b = self.load(other, benchmark)
        out = []
        for pa in a.points:
            va = pa.get(metric, None)
            try:
                vb = b.point(pa.param).get(metric, None)
            except KeyError:
                continue
            if va in (None, 0) or vb is None:
                continue
            out.append((pa.param, va, vb, (vb - va) / va))
        return out


def _safe(name: str) -> str:
    """File-system-safe component name."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
