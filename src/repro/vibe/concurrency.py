"""Concurrent active-VI streams (extends the Fig. 6 study).

The paper's multi-VI benchmark opens *idle* VIs and measures one active
connection.  This extension drives ``k`` VI connections **concurrently**
between the same node pair, measuring aggregate bandwidth and per-stream
fairness — how the NIC engines and the wire actually share.

What it exposes per design:

- the wire is the common ceiling (aggregate ≈ single-stream peak once
  any stream can saturate it);
- Berkeley VIA additionally pays its per-open-VI dispatch scan *per
  message*, so its aggregate falls as streams are added;
- fairness: the engines are FIFO, so streams finish together (Jain's
  index ≈ 1) unless a design starves someone.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec, Testbed
from ..via.constants import WaitMode
from ..via.descriptor import Descriptor
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_STREAM_COUNTS", "concurrent_streams"]

DEFAULT_STREAM_COUNTS = (1, 2, 4, 8)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def concurrent_streams(provider: "str | ProviderSpec",
                       stream_counts=DEFAULT_STREAM_COUNTS,
                       size: int = 4096,
                       messages: int = 30,
                       seed: int = 0) -> BenchResult:
    """Aggregate bandwidth + Jain fairness for k concurrent VI streams."""
    points = []
    for k in stream_counts:
        aggregate, fairness = _run(provider, k, size, messages, seed)
        points.append(Measurement(
            param=k, bandwidth_mbs=aggregate,
            extra={"jain_fairness": fairness},
        ))
    return BenchResult("concurrent_streams", _name(provider), points,
                       {"size": size, "messages": messages})


def _run(provider, k: int, size: int, messages: int, seed: int):
    tb = Testbed(provider, seed=seed)
    finish: dict[int, float] = {}
    rates: dict[int, float] = {}
    start: dict = {}

    def client():
        h = tb.open("node0", "client")
        vis = []
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        for i in range(k):
            vi = yield from h.create_vi()
            yield from h.connect(vi, "node1", 700 + i)
            vis.append(vi)
        segs = [h.segment(region, mh, 0, size)]
        start["t0"] = tb.now

        def stream(vi, idx):
            for _ in range(messages):
                yield from h.post_send(vi, Descriptor.send(segs))
                # BLOCK so k streams share the single host CPU sanely
                yield from h.send_wait(vi, WaitMode.BLOCK)

        procs = [tb.spawn(stream(vi, i), f"stream{i}")
                 for i, vi in enumerate(vis)]
        for p in procs:
            yield p

    def server():
        h = tb.open("node1", "server")
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        vis = []
        for i in range(k):
            vi = yield from h.create_vi()
            segs = [h.segment(region, mh, 0, size)]
            for _ in range(messages):
                yield from h.post_recv(vi, Descriptor.recv(segs))
            req = yield from h.connect_wait(700 + i)
            yield from h.accept(req, vi)
            vis.append(vi)

        def drain(vi, idx):
            for _ in range(messages):
                yield from h.recv_wait(vi, WaitMode.BLOCK)
            finish[idx] = tb.now

        procs = [tb.spawn(drain(vi, i), f"drain{i}")
                 for i, vi in enumerate(vis)]
        for p in procs:
            yield p

    cproc = tb.spawn(client(), "client")
    sproc = tb.spawn(server(), "server")
    tb.run(cproc)
    tb.run(sproc)

    t0 = start["t0"]
    for idx, t_end in finish.items():
        rates[idx] = messages * size / (t_end - t0)
    aggregate = k * messages * size / (max(finish.values()) - t0)
    total = sum(rates.values())
    sq = sum(r * r for r in rates.values())
    fairness = (total * total) / (k * sq) if sq else 1.0
    return aggregate, fairness
