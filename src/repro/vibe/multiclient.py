"""Multi-client server scalability (the paper's CQ motivation, scaled).

The paper motivates completion queues with servers that "receive
messages from different nodes without the order of the receptions being
important" (§3.2.3) and flags multi-VI behaviour as "insights into
scalability" (§3.2.4).  This benchmark combines both: one server node
holds a VI per client (each on its own fabric node), merges all receive
completions through a single CQ, and serves request/reply transactions
from whichever client's request lands next.

Aggregate transactions/s vs client count exposes both the CQ cost and
any per-open-VI tax (Berkeley VIA's firmware scan hits every added
client twice: more VIs *and* more polling)."""

from __future__ import annotations

from ..providers.registry import ProviderSpec, Testbed
from ..units import US_PER_S
from ..via.constants import WaitMode
from ..via.descriptor import Descriptor
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_CLIENT_COUNTS", "multiclient_throughput"]

DEFAULT_CLIENT_COUNTS = (1, 2, 4, 8)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def multiclient_throughput(provider: "str | ProviderSpec",
                           client_counts=DEFAULT_CLIENT_COUNTS,
                           request_size: int = 16,
                           reply_size: int = 1024,
                           transactions: int = 12,
                           seed: int = 0) -> BenchResult:
    """Aggregate transactions/s served, per client count."""
    points = []
    for n in client_counts:
        tps, per_client = _run(provider, n, request_size, reply_size,
                               transactions, seed)
        points.append(Measurement(
            param=n, tps=tps,
            extra={"tps_per_client": per_client},
        ))
    return BenchResult("multiclient_throughput", _name(provider), points,
                       {"request": request_size, "reply": reply_size})


def _run(provider, nclients: int, request_size: int, reply_size: int,
         transactions: int, seed: int):
    names = tuple(["server"] + [f"c{i}" for i in range(nclients)])
    tb = Testbed(provider, node_names=names, seed=seed)
    out: dict = {}
    total = nclients * transactions

    def server_body():
        h = tb.open("server", "server")
        cq = yield from h.create_cq(depth=4 * nclients + 8)
        sessions = {}
        for i in range(nclients):
            vi = yield from h.create_vi(recv_cq=cq)
            req_buf = h.alloc(max(request_size, 4))
            rep_buf = h.alloc(max(reply_size, 4))
            req_mh = yield from h.register_mem(req_buf)
            rep_mh = yield from h.register_mem(rep_buf)
            req_segs = [h.segment(req_buf, req_mh, 0, request_size)]
            rep_segs = [h.segment(rep_buf, rep_mh, 0, reply_size)]
            yield from h.post_recv(vi, Descriptor.recv(req_segs))
            conn = yield from h.connect_wait(500 + i)
            yield from h.accept(conn, vi)
            sessions[vi.vi_id] = (vi, req_segs, rep_segs)
        served = 0
        t0 = None
        while served < total:
            wq, _desc = yield from h.cq_wait(cq, WaitMode.POLL)
            if t0 is None:
                t0 = tb.now
            vi, req_segs, rep_segs = sessions[wq.vi.vi_id]
            yield from h.post_recv(vi, Descriptor.recv(req_segs))
            yield from h.post_send(vi, Descriptor.send(rep_segs))
            yield from h.send_wait(vi)
            served += 1
        out["elapsed"] = tb.now - t0

    def client_body(i: int):
        h = tb.open(f"c{i}", f"client{i}")
        vi = yield from h.create_vi()
        req_buf = h.alloc(max(request_size, 4))
        rep_buf = h.alloc(max(reply_size, 4))
        req_mh = yield from h.register_mem(req_buf)
        rep_mh = yield from h.register_mem(rep_buf)
        req_segs = [h.segment(req_buf, req_mh, 0, request_size)]
        rep_segs = [h.segment(rep_buf, rep_mh, 0, reply_size)]
        yield from h.connect(vi, "server", 500 + i)
        for _ in range(transactions):
            yield from h.post_recv(vi, Descriptor.recv(rep_segs))
            yield from h.post_send(vi, Descriptor.send(req_segs))
            yield from h.send_wait(vi)
            yield from h.recv_wait(vi)

    sproc = tb.spawn(server_body(), "server")
    for i in range(nclients):
        tb.spawn(client_body(i), f"client{i}")
    tb.run(sproc)
    tps = total / (out["elapsed"] / US_PER_S)
    return tps, tps / nclients
