"""VIBe measurement harness.

Builds two-node testbeds and runs the paper's two measurement engines:

- the **ping-pong** (latency + CPU utilisation, §3.2.1): the client
  bounces a message off the server; latency is half the round trip,
  averaged over the timed iterations;
- the **streaming** test (bandwidth, §3.2.1): the sender pushes ``count``
  back-to-back messages and stops the clock when the receiver's
  application-level acknowledgement of the last message arrives.

Every data-transfer micro-benchmark in the suite is a parameterisation
of these two engines via :class:`TransferConfig`: buffer-reuse fraction
(address-translation study), completion queues, extra open VIs,
multiple data segments, reliability level, wait mode, MTU, window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..providers.registry import ProviderSpec, Testbed
from ..via.constants import Reliability, WaitMode
from ..via.descriptor import DataSegment, Descriptor
from ..via.provider import NicHandle
from .metrics import Measurement

__all__ = ["TransferConfig", "Endpoint", "run_latency", "run_bandwidth",
           "reuse_schedule", "split_segments"]

_CTL_SIZE = 4  # application-level control messages (ready / done)


@dataclass(frozen=True)
class TransferConfig:
    """Knobs shared by the latency and bandwidth engines."""

    size: int = 4
    iters: int = 24               # timed ping-pong iterations
    warmup: int = 3
    count: int = 120              # streamed messages (bandwidth)
    window: int = 32              # max un-reaped sends while streaming
    mode: WaitMode = WaitMode.POLL
    reliability: Reliability | None = None   # None = provider default
    use_recv_cq: bool = False
    use_send_cq: bool = False
    buffer_pool: int = 1          # distinct data buffers per side
    reuse_fraction: float = 1.0   # share of iterations reusing buffer 0
    extra_vis: int = 0            # additional open (idle) VIs per side
    segments: int = 1             # data segments per descriptor
    mtu: int | None = None        # override the fabric MTU
    loss_rate: float | None = None
    discriminator: int = 11
    check: bool = False           # attach the conformance checker
    fidelity: str = "packet"      # "packet" | "auto" | "flow" fast-forward

    def testbed(self, provider: "str | ProviderSpec", seed: int = 0) -> Testbed:
        # create() is warm-start aware: under a warmed sweep, eligible
        # cells restore a shared construction checkpoint (repro.snap)
        return Testbed.create(provider, seed=seed, loss_rate=self.loss_rate,
                              mtu=self.mtu, check=self.check,
                              fidelity=self.fidelity)


def reuse_schedule(iters: int, reuse_fraction: float, pool: int) -> list[int]:
    """Deterministic buffer index per iteration.

    ``reuse_fraction`` of iterations hit buffer 0 (the reused buffer);
    the rest cycle through buffers 1..pool-1 so translation caches see
    fresh pages (Bresenham-style spreading keeps the mix even).
    """
    if not 0.0 <= reuse_fraction <= 1.0:
        raise ValueError("reuse_fraction must be within [0, 1]")
    if pool < 1:
        raise ValueError("pool must be >= 1")
    schedule: list[int] = []
    acc = 0.0
    fresh = 0
    for _ in range(iters):
        acc += reuse_fraction
        if acc >= 1.0 - 1e-12:
            acc -= 1.0
            schedule.append(0)
        elif pool == 1:
            schedule.append(0)
        else:
            schedule.append(1 + fresh % (pool - 1))
            fresh += 1
    return schedule


def split_segments(handle: NicHandle, region, mh, size: int,
                   nsegments: int) -> list[DataSegment]:
    """Split ``size`` bytes of a buffer into ``nsegments`` data segments."""
    if nsegments < 1:
        raise ValueError("need at least one segment")
    base = size // nsegments
    sizes = [base] * nsegments
    sizes[-1] += size - base * nsegments
    segs = []
    offset = 0
    for s in sizes:
        segs.append(handle.segment(region, mh, offset, s))
        offset += s
    return segs


class Endpoint:
    """One side's resources: handle, VIs, CQs, registered buffer pool."""

    def __init__(self, tb: Testbed, node: str, actor: str,
                 cfg: TransferConfig) -> None:
        self.tb = tb
        self.node = node
        self.cfg = cfg
        self.handle = tb.open(node, actor)
        self.vi = None
        self.extra = []
        self.recv_cq = None
        self.send_cq = None
        self.buffers: list = []    # [(region, mh)]
        self.ctl_buf = None
        self.ctl_mh = None

    # -- setup (a timed generator) -----------------------------------------
    def setup(self):
        h, cfg = self.handle, self.cfg
        if cfg.use_recv_cq:
            self.recv_cq = yield from h.create_cq()
        if cfg.use_send_cq:
            self.send_cq = yield from h.create_cq()
        for _ in range(cfg.extra_vis):
            vi = yield from h.create_vi(reliability=cfg.reliability)
            self.extra.append(vi)
        self.vi = yield from h.create_vi(
            reliability=cfg.reliability,
            send_cq=self.send_cq, recv_cq=self.recv_cq,
        )
        pool = max(cfg.buffer_pool, 1)
        for _ in range(pool):
            region = h.alloc(max(cfg.size, _CTL_SIZE))
            mh = yield from h.register_mem(region)
            self.buffers.append((region, mh))
        self.ctl_buf = h.alloc(_CTL_SIZE)
        self.ctl_mh = yield from h.register_mem(self.ctl_buf)

    def data_segs(self, index: int) -> list[DataSegment]:
        region, mh = self.buffers[index % len(self.buffers)]
        return split_segments(self.handle, region, mh, self.cfg.size,
                              self.cfg.segments)

    def ctl_segs(self) -> list[DataSegment]:
        return [self.handle.segment(self.ctl_buf, self.ctl_mh, 0, _CTL_SIZE)]

    # -- completion plumbing (CQ-aware) ------------------------------------
    def wait_recv(self):
        """Wait for a receive completion, via the CQ when configured."""
        h, cfg = self.handle, self.cfg
        if self.recv_cq is not None:
            _wq, desc = yield from h.cq_wait(self.recv_cq, cfg.mode)
            return desc
        desc = yield from h.recv_wait(self.vi, cfg.mode)
        return desc

    def wait_send(self):
        h, cfg = self.handle, self.cfg
        if self.send_cq is not None:
            _wq, desc = yield from h.cq_wait(self.send_cq, cfg.mode)
            return desc
        desc = yield from h.send_wait(self.vi, cfg.mode)
        return desc


def _pair(tb: Testbed, cfg: TransferConfig):
    client = Endpoint(tb, tb.node_names[0], "client", cfg)
    server = Endpoint(tb, tb.node_names[1], "server", cfg)
    return client, server


# ---------------------------------------------------------------------------
# latency (ping-pong) engine
# ---------------------------------------------------------------------------

def run_latency(provider: "str | ProviderSpec", cfg: TransferConfig,
                seed: int = 0) -> Measurement:
    """Ping-pong latency + CPU utilisation for one configuration."""
    tb = cfg.testbed(provider, seed)
    client, server = _pair(tb, cfg)
    schedule = reuse_schedule(cfg.warmup + cfg.iters, cfg.reuse_fraction,
                              max(cfg.buffer_pool, 1))
    out: dict = {}

    def client_body():
        yield from client.setup()
        h, vi = client.handle, client.vi
        yield from h.connect(vi, server.node, cfg.discriminator)
        total = cfg.warmup + cfg.iters
        t0 = u0 = None
        for i in range(total):
            if i == cfg.warmup:
                t0 = tb.now
                u0 = h.actor.snapshot()
            segs = client.data_segs(schedule[i])
            yield from h.post_recv(vi, Descriptor.recv(segs))
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from client.wait_send()
            yield from client.wait_recv()
        wall = tb.now - t0
        usage = h.actor.snapshot() - u0
        out["latency"] = wall / (2 * cfg.iters)
        out["cpu_send"] = usage.total / wall if wall else None
        yield from h.disconnect(vi)

    def server_body():
        yield from server.setup()
        h, vi = server.handle, server.vi
        segs0 = server.data_segs(schedule[0])
        yield from h.post_recv(vi, Descriptor.recv(segs0))
        req = yield from h.connect_wait(cfg.discriminator)
        yield from h.accept(req, vi)
        total = cfg.warmup + cfg.iters
        t0 = u0 = None
        for i in range(total):
            if i == cfg.warmup:
                t0 = tb.now
                u0 = h.actor.snapshot()
            yield from server.wait_recv()
            if i + 1 < total:
                segs = server.data_segs(schedule[i + 1])
                yield from h.post_recv(vi, Descriptor.recv(segs))
            echo = server.data_segs(schedule[i])
            yield from h.post_send(vi, Descriptor.send(echo))
            yield from server.wait_send()
        wall = tb.now - t0
        usage = h.actor.snapshot() - u0
        out["cpu_recv"] = usage.total / wall if wall else None

    cproc = tb.spawn(client_body(), "client")
    sproc = tb.spawn(server_body(), "server")
    tb.run(cproc)
    tb.run(sproc)
    return Measurement(
        param=cfg.size,
        latency_us=out["latency"],
        cpu_send=out["cpu_send"],
        cpu_recv=out["cpu_recv"],
    )


# ---------------------------------------------------------------------------
# bandwidth (streaming) engine
# ---------------------------------------------------------------------------

def run_bandwidth(provider: "str | ProviderSpec", cfg: TransferConfig,
                  seed: int = 0) -> Measurement:
    """Back-to-back streaming bandwidth for one configuration."""
    tb = cfg.testbed(provider, seed)
    client, server = _pair(tb, cfg)
    schedule = reuse_schedule(cfg.count, cfg.reuse_fraction,
                              max(cfg.buffer_pool, 1))
    out: dict = {}

    def client_body():
        yield from client.setup()
        h, vi = client.handle, client.vi
        # control receives (ready + final ack) are pre-posted before the
        # connection completes, so they can never race the server's sends
        yield from h.post_recv(vi, Descriptor.recv(client.ctl_segs()))
        yield from h.post_recv(vi, Descriptor.recv(client.ctl_segs()))
        yield from h.connect(vi, server.node, cfg.discriminator)
        yield from client.wait_recv()          # server says "ready"
        t0 = tb.now
        u0 = h.actor.snapshot()
        inflight = 0
        for i in range(cfg.count):
            if inflight >= cfg.window:
                yield from client.wait_send()
                inflight -= 1
            segs = client.data_segs(schedule[i])
            yield from h.post_send(vi, Descriptor.send(segs))
            inflight += 1
        while inflight:
            yield from client.wait_send()
            inflight -= 1
        yield from client.wait_recv()          # server acks the last message
        wall = tb.now - t0
        usage = h.actor.snapshot() - u0
        out["bandwidth"] = cfg.count * cfg.size / wall if wall else None
        out["cpu_send"] = usage.total / wall if wall else None
        yield from h.disconnect(vi)

    def server_body():
        yield from server.setup()
        h, vi = server.handle, server.vi
        # pre-post every data receive: the paper's streaming test never
        # exposes the unexpected-message path
        for i in range(cfg.count):
            segs = server.data_segs(schedule[i])
            yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(cfg.discriminator)
        yield from h.accept(req, vi)
        yield from h.post_send(vi, Descriptor.send(server.ctl_segs()))
        yield from server.wait_send()          # "ready"
        t0 = tb.now
        u0 = h.actor.snapshot()
        for _ in range(cfg.count):
            yield from server.wait_recv()
        wall = tb.now - t0
        usage = h.actor.snapshot() - u0
        out["cpu_recv"] = usage.total / wall if wall else None
        yield from h.post_send(vi, Descriptor.send(server.ctl_segs()))
        yield from server.wait_send()          # final ack

    cproc = tb.spawn(client_body(), "client")
    sproc = tb.spawn(server_body(), "server")
    tb.run(cproc)
    tb.run(sproc)
    return Measurement(
        param=cfg.size,
        bandwidth_mbs=out["bandwidth"],
        cpu_send=out["cpu_send"],
        cpu_recv=out["cpu_recv"],
    )
