"""VIBe: the Virtual Interface Architecture micro-benchmark suite.

The paper's contribution, reimplemented over the simulated providers.
Three categories (paper §3): non-data-transfer, data-transfer, and
programming-model micro-benchmarks.
"""

from .addrtrans import DEFAULT_REUSE_LEVELS, reuse_bandwidth, reuse_latency
from .async_bench import DEFAULT_DELAYS, async_latency
from .base_transfer import base_bandwidth, base_latency
from .clientserver import DEFAULT_REQUEST_SIZES, client_server
from .cq_bench import cq_bandwidth, cq_latency, cq_overhead
from .concurrency import concurrent_streams
from .dynamic import connection_churn, tail_latency_under_load
from .harness import (
    Endpoint,
    TransferConfig,
    reuse_schedule,
    run_bandwidth,
    run_latency,
    split_segments,
)
from .metrics import BenchResult, Measurement, merge_tables, results_to_json
from .mtu import DEFAULT_MTUS, mtu_bandwidth, mtu_latency
from .multiclient import DEFAULT_CLIENT_COUNTS, multiclient_throughput
from .multivi import DEFAULT_VI_COUNTS, multivi_bandwidth, multivi_latency
from .progmodel_collectives import collective_latency
from .progmodel_dsm import dsm_fault_latency, dsm_pingpong_sharing
from .progmodel_getput import getput_latency
from .progmodel_stream import stream_throughput
from .progmodel_msg import (
    eager_threshold_sweep,
    msg_layer_bandwidth,
    msg_layer_latency,
)
from .nondata import NONDATA_OPS, memreg_sweep, nondata_costs
from .plotting import ascii_plot
from .pipeline import DEFAULT_WINDOWS, pipeline_bandwidth
from .rdma_bench import rdma_capable, rdma_read_latency, rdma_write_latency
from .reliability import (
    loss_goodput,
    reliability_bandwidth,
    reliability_latency,
)
from .report import render_figure, render_memreg, render_table1
from .reportgen import generate_report
from .repository import ResultRepository, result_from_dict, result_to_dict
from .rusage import cpu_utilization, getrusage
from .segments import DEFAULT_SEGMENT_COUNTS, segments_bandwidth, segments_latency
from .suite import DEFAULT_PROVIDERS, SUITE, run_all, run_benchmark

__all__ = [
    "BenchResult",
    "DEFAULT_CLIENT_COUNTS",
    "DEFAULT_DELAYS",
    "DEFAULT_MTUS",
    "DEFAULT_PROVIDERS",
    "DEFAULT_REQUEST_SIZES",
    "DEFAULT_REUSE_LEVELS",
    "DEFAULT_SEGMENT_COUNTS",
    "DEFAULT_VI_COUNTS",
    "DEFAULT_WINDOWS",
    "Endpoint",
    "Measurement",
    "NONDATA_OPS",
    "SUITE",
    "TransferConfig",
    "ascii_plot",
    "async_latency",
    "base_bandwidth",
    "base_latency",
    "client_server",
    "collective_latency",
    "concurrent_streams",
    "connection_churn",
    "cpu_utilization",
    "cq_bandwidth",
    "cq_latency",
    "cq_overhead",
    "dsm_fault_latency",
    "dsm_pingpong_sharing",
    "eager_threshold_sweep",
    "generate_report",
    "getput_latency",
    "getrusage",
    "loss_goodput",
    "memreg_sweep",
    "merge_tables",
    "msg_layer_bandwidth",
    "msg_layer_latency",
    "mtu_bandwidth",
    "mtu_latency",
    "multiclient_throughput",
    "multivi_bandwidth",
    "multivi_latency",
    "nondata_costs",
    "pipeline_bandwidth",
    "rdma_capable",
    "rdma_read_latency",
    "rdma_write_latency",
    "reliability_bandwidth",
    "reliability_latency",
    "render_figure",
    "render_memreg",
    "render_table1",
    "ResultRepository",
    "result_from_dict",
    "result_to_dict",
    "results_to_json",
    "reuse_bandwidth",
    "reuse_latency",
    "reuse_schedule",
    "run_all",
    "run_bandwidth",
    "run_benchmark",
    "run_latency",
    "segments_bandwidth",
    "segments_latency",
    "split_segments",
    "stream_throughput",
    "tail_latency_under_load",
]
