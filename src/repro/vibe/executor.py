"""Parallel sweep executor: fan independent simulations over processes.

Every simulation in the suite is a self-contained :class:`Simulator`
behind a fresh ``Testbed``, so a sweep over ``(benchmark, provider,
param)`` tuples is embarrassingly parallel: tasks share no state, and
each task is fully deterministic given its arguments and seed.  This
module provides the one primitive everything builds on —
:func:`parallel_map` — plus the picklable worker used by
``suite.run_all``.

Determinism contract
--------------------

- **Order-preserving collection.**  Results come back in submission
  order regardless of which worker finished first, so a parallel sweep
  assembles the exact list a serial loop would.
- **Identical per-task inputs.**  A task's arguments (including its
  seed) are the same whether it runs inline or in a worker, so every
  simulated value is bit-identical across ``--jobs`` settings; the
  golden tests in ``tests/test_determinism.py`` pin this.
- **Deterministic derived seeds.**  When a caller wants distinct seeds
  per task it derives them with :func:`task_seed`, a pure function of
  the base seed and the task key — never from worker identity, wall
  clock, or completion order.

``jobs=1`` (the default everywhere) bypasses the pool entirely and runs
the plain serial loop in-process.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

__all__ = ["parallel_map", "task_seed", "effective_jobs"]


def effective_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: None/0/1 -> 1, negative -> cpu count."""
    if not jobs:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def task_seed(base_seed: int, *key: Any) -> int:
    """A deterministic 31-bit seed derived from ``base_seed`` and a task key.

    Pure function of its arguments (hash-based, stable across runs and
    machines), so parallel and serial sweeps derive identical seeds.
    """
    digest = hashlib.sha256(repr((base_seed, key)).encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def parallel_map(fn: Callable, tasks: Iterable[Sequence], jobs: int = 1,
                 initializer: Callable | None = None) -> list:
    """Apply ``fn(*task)`` to every task, preserving task order.

    With ``jobs <= 1`` (or a single task) this is a plain serial loop.
    Otherwise tasks are submitted to a :class:`ProcessPoolExecutor` and
    results are collected in submission order, so the returned list is
    indistinguishable from the serial one.  ``fn`` and all task
    arguments must be picklable (module-level functions, frozen
    dataclasses, plain data).

    ``initializer`` (a picklable zero-argument callable) runs once in
    every worker before its first task — and, for symmetry, once
    in-process on the serial path — so per-process switches like the
    warm-start pool (``repro.snap.enable_warm_start``) behave the same
    at every ``--jobs`` value.
    """
    tasks = [tuple(t) for t in tasks]
    if not tasks:
        # nothing to do — and ProcessPoolExecutor(max_workers=0) would
        # raise ValueError if an empty list ever reached the pool path
        return []
    jobs = effective_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer()
        return [fn(*t) for t in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks)),
                             initializer=initializer) as pool:
        futures = [pool.submit(fn, *t) for t in tasks]
        return [f.result() for f in futures]


def _run_named(name: str, provider: Any, kwargs: dict) -> Any:
    """Picklable worker for ``suite.run_all``: one benchmark, one provider."""
    from .suite import run_benchmark   # deferred: suite imports this module

    return run_benchmark(name, provider, **kwargs)


def _enable_warm_start() -> None:
    """Picklable pool initializer: arm the warm-start checkpoint pool."""
    from ..snap import enable_warm_start

    enable_warm_start(True)
