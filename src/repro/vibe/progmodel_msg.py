"""Distributed-memory (message passing) programming-model benchmarks.

Paper §5: "we plan to develop … similar micro-benchmarks for
distributed memory programming model (MPI)".  These run the paper's
latency/bandwidth methodology *through the message layer*
(:class:`repro.layers.msg.MsgEndpoint`) instead of raw VIA, so the
measured numbers include the layer's own costs — eager copies,
rendezvous handshakes, credit flow control — and show how each
provider's VIBe profile surfaces at the MPI level.
"""

from __future__ import annotations

from ..layers.msg import MsgEndpoint
from ..providers.registry import ProviderSpec, Testbed
from ..units import paper_size_sweep
from .metrics import BenchResult, Measurement

__all__ = ["msg_layer_latency", "msg_layer_bandwidth", "eager_threshold_sweep"]

_TAG = 1
_ACK = 2


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def _endpoints(tb: Testbed, eager_size: int, pool: int, reg_cache: bool):
    def client_setup():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=eager_size, pool=pool,
                          reg_cache=reg_cache)
        yield from msg.setup()
        yield from h.connect(vi, tb.node_names[1], 71)
        return msg

    def server_setup():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=eager_size, pool=pool,
                          reg_cache=reg_cache)
        yield from msg.setup()
        req = yield from h.connect_wait(71)
        yield from h.accept(req, vi)
        return msg

    return client_setup, server_setup


def _msg_pingpong(provider, size: int, iters: int, warmup: int,
                  eager_size: int, pool: int, reg_cache: bool,
                  seed: int) -> float:
    tb = Testbed(provider, seed=seed)
    cs, ss = _endpoints(tb, eager_size, pool, reg_cache)
    payload = bytes(i % 256 for i in range(size))
    out: dict = {}

    def client():
        msg = yield from cs()
        total = warmup + iters
        for i in range(total):
            if i == warmup:
                out["t0"] = tb.now
            yield from msg.send(_TAG, payload)
            yield from msg.recv(_ACK)
        out["t1"] = tb.now

    def server():
        msg = yield from ss()
        for _ in range(warmup + iters):
            _tag, data = yield from msg.recv(_TAG)
            yield from msg.send(_ACK, data)

    cproc = tb.spawn(client(), "client")
    tb.spawn(server(), "server")
    tb.run(cproc)
    return (out["t1"] - out["t0"]) / (2 * iters)


def _msg_stream(provider, size: int, count: int, eager_size: int,
                pool: int, reg_cache: bool, seed: int,
                nonblocking: bool = False) -> float:
    tb = Testbed(provider, seed=seed)
    cs, ss = _endpoints(tb, eager_size, pool, reg_cache)
    payload = bytes(i % 256 for i in range(size))
    out: dict = {}

    def client():
        msg = yield from cs()
        yield from msg.recv(_ACK)            # server ready
        t0 = tb.now
        for _ in range(count):
            if nonblocking:
                yield from msg.isend(_TAG, payload)
            else:
                yield from msg.send(_TAG, payload)
        yield from msg.flush_sends()
        yield from msg.recv(_ACK)            # server got everything
        out["bw"] = count * size / (tb.now - t0)

    def server():
        msg = yield from ss()
        yield from msg.send(_ACK, b"go")
        for _ in range(count):
            yield from msg.recv(_TAG)
        yield from msg.send(_ACK, b"done")

    cproc = tb.spawn(client(), "client")
    tb.spawn(server(), "server")
    tb.run(cproc)
    return out["bw"]


def msg_layer_latency(provider: "str | ProviderSpec",
                      sizes: list[int] | None = None,
                      iters: int = 16, warmup: int = 2,
                      eager_size: int = 4096, pool: int = 16,
                      reg_cache: bool = True, seed: int = 0) -> BenchResult:
    """MsgLat: ping-pong latency through the message layer."""
    sizes = sizes or paper_size_sweep()
    points = [
        Measurement(param=s, latency_us=_msg_pingpong(
            provider, s, iters, warmup, eager_size, pool, reg_cache, seed))
        for s in sizes
    ]
    return BenchResult("msg_layer_latency", _name(provider), points,
                       {"eager_size": eager_size})


def msg_layer_bandwidth(provider: "str | ProviderSpec",
                        sizes: list[int] | None = None,
                        count: int = 60, eager_size: int = 4096,
                        pool: int = 16, reg_cache: bool = True,
                        nonblocking: bool = False,
                        seed: int = 0) -> BenchResult:
    """MsgBw: streaming bandwidth through the message layer.

    ``nonblocking=True`` streams with ``isend`` — the layer-level
    counterpart of the paper's sender-pipeline-length benchmark.
    """
    sizes = sizes or paper_size_sweep()
    points = [
        Measurement(param=s, bandwidth_mbs=_msg_stream(
            provider, s, count, eager_size, pool, reg_cache, seed,
            nonblocking=nonblocking))
        for s in sizes
    ]
    return BenchResult(
        "msg_layer_bandwidth",
        _name(provider) + ("+isend" if nonblocking else ""),
        points, {"eager_size": eager_size, "nonblocking": nonblocking},
    )


def eager_threshold_sweep(provider: "str | ProviderSpec",
                          size: int = 8192,
                          thresholds=(256, 1024, 4096, 16384),
                          iters: int = 16, seed: int = 0) -> BenchResult:
    """Latency of one message size as the eager threshold moves past it.

    The crossover between 'copy it' (eager) and 'handshake + RDMA'
    (rendezvous) is THE tuning decision VIBe's registration and
    translation benchmarks inform for an MPI implementor.
    """
    points = []
    for thr in thresholds:
        lat = _msg_pingpong(provider, size, iters, 2, thr, 16, True, seed)
        points.append(Measurement(
            param=thr, latency_us=lat,
            extra={"protocol": "eager" if size <= thr else "rendezvous"},
        ))
    return BenchResult("eager_threshold", _name(provider), points,
                       {"size": size})
