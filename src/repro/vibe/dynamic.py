"""Dynamic-runtime benchmarks (paper §3.1: the non-data-transfer costs
"have a significant effect on the scalability of the system,
suitability of the communication subsystem for large and dynamic
runtime systems").

Two measures of *dynamic* behaviour the static sweeps don't cover:

- **connection churn** — sustained connect/use/teardown cycles per
  second, the lifecycle cost Table 1 prices per operation;
- **open-loop tail latency** — Poisson request arrivals against a
  single server; when offered load approaches the service rate the
  queueing tail (p95/p99) separates implementations long before the
  median does.
"""

from __future__ import annotations

import random

from ..providers.registry import ProviderSpec, Testbed
from ..units import US_PER_S
from ..via.constants import WaitMode
from ..via.descriptor import Descriptor
from .metrics import BenchResult, Measurement

__all__ = ["connection_churn", "tail_latency_under_load"]


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


# ---------------------------------------------------------------------------
# connection churn
# ---------------------------------------------------------------------------

def connection_churn(provider: "str | ProviderSpec", cycles: int = 10,
                     payload: int = 64, seed: int = 0) -> Measurement:
    """Full lifecycle rate: create VI -> connect -> one RPC -> teardown.

    Returns cycles/second plus the mean cycle time — dominated by
    Table 1's connection costs, which is the point.
    """
    tb = Testbed(provider, seed=seed)
    out: dict = {}

    def client():
        h = tb.open("node0", "client")
        region = h.alloc(max(payload, 4))
        mh = yield from h.register_mem(region)
        t0 = tb.now
        for i in range(cycles):
            vi = yield from h.create_vi()
            segs = [h.segment(region, mh, 0, payload)]
            yield from h.post_recv(vi, Descriptor.recv(segs))
            yield from h.connect(vi, "node1", 600 + i)
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)
            yield from h.recv_wait(vi)
            yield from h.disconnect(vi)
            yield from h.destroy_vi(vi)
        out["elapsed"] = tb.now - t0

    def server():
        h = tb.open("node1", "server")
        region = h.alloc(max(payload, 4))
        mh = yield from h.register_mem(region)
        for i in range(cycles):
            vi = yield from h.create_vi()
            segs = [h.segment(region, mh, 0, payload)]
            yield from h.post_recv(vi, Descriptor.recv(segs))
            req = yield from h.connect_wait(600 + i)
            yield from h.accept(req, vi)
            yield from h.recv_wait(vi)
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)
            while vi.is_connected:
                yield tb.sim.timeout(5.0)
            # the peer's flush may leave nothing to clean, but the
            # lifecycle must end in a destroyable state
            yield from h.destroy_vi(vi)

    cproc = tb.spawn(client(), "client")
    sproc = tb.spawn(server(), "server")
    tb.run(cproc)
    tb.run(sproc)
    per_cycle = out["elapsed"] / cycles
    return Measurement(
        param=_name(provider),
        extra={
            "cycles_per_s": US_PER_S / per_cycle,
            "cycle_us": per_cycle,
        },
    )


# ---------------------------------------------------------------------------
# open-loop tail latency
# ---------------------------------------------------------------------------

def tail_latency_under_load(provider: "str | ProviderSpec",
                            loads=(0.3, 0.6, 0.9),
                            requests: int = 120,
                            request_size: int = 64,
                            reply_size: int = 1024,
                            seed: int = 0) -> BenchResult:
    """Sojourn-time percentiles vs offered load.

    ``load`` is relative to the *closed-loop* transaction rate (one
    outstanding request), which bounds true server capacity from below;
    arrivals are Poisson at ``load x closed_loop_rate``.  As the load
    rises the queueing tail (p95/p99) separates from the median — the
    behaviour a static ping-pong cannot show.
    """
    base = _closed_loop_time(provider, request_size, reply_size, seed)
    points = []
    for load in loads:
        inter_arrival = base / load
        lat = _open_loop(provider, requests, request_size, reply_size,
                         inter_arrival, seed)
        lat.sort()

        def pct(p):
            return lat[min(len(lat) - 1, int(p * len(lat)))]

        points.append(Measurement(
            param=load,
            extra={
                "p50_us": pct(0.50),
                "p95_us": pct(0.95),
                "p99_us": pct(0.99),
                "mean_us": sum(lat) / len(lat),
            },
        ))
    return BenchResult("tail_latency", _name(provider), points,
                       {"request": request_size, "reply": reply_size,
                        "service_us": base})


def _closed_loop_time(provider, request_size, reply_size, seed) -> float:
    """Mean per-transaction time with one request outstanding."""
    from .clientserver import _transaction_test

    tps = _transaction_test(provider, request_size, reply_size,
                            transactions=12, warmup=2,
                            mode=WaitMode.POLL, seed=seed)
    return US_PER_S / tps


def _open_loop(provider, requests, request_size, reply_size,
               inter_arrival, seed) -> list[float]:
    tb = Testbed(provider, seed=seed)
    rng = random.Random(seed * 7919 + 13)
    latencies: list[float] = []

    def client():
        h = tb.open("node0", "client")
        vi = yield from h.create_vi()
        req_buf = h.alloc(max(request_size, 4))
        rep_buf = h.alloc(max(reply_size, 4))
        req_mh = yield from h.register_mem(req_buf)
        rep_mh = yield from h.register_mem(rep_buf)
        rep_segs = [h.segment(rep_buf, rep_mh, 0, reply_size)]
        # pre-post every reply receive (replies return in FIFO order)
        for _ in range(requests):
            yield from h.post_recv(vi, Descriptor.recv(rep_segs))
        yield from h.connect(vi, "node1", 61)
        req_segs = [h.segment(req_buf, req_mh, 0, request_size)]

        arrivals: list[float] = []

        def reaper():
            for i in range(requests):
                yield from h.recv_wait(vi, WaitMode.BLOCK)
                latencies.append(tb.now - arrivals[i])

        reap_proc = tb.spawn(reaper(), "reaper")
        for _ in range(requests):
            yield tb.sim.timeout(rng.expovariate(1.0 / inter_arrival))
            arrivals.append(tb.now)
            yield from h.post_send(vi, Descriptor.send(req_segs))
            # sends complete quickly; reap lazily to keep the queue sane
            while (yield from h.send_done(vi)) is not None:
                pass
        yield reap_proc

    def server():
        h = tb.open("node1", "server")
        vi = yield from h.create_vi()
        req_buf = h.alloc(max(request_size, 4))
        rep_buf = h.alloc(max(reply_size, 4))
        req_mh = yield from h.register_mem(req_buf)
        rep_mh = yield from h.register_mem(rep_buf)
        req_segs = [h.segment(req_buf, req_mh, 0, request_size)]
        rep_segs = [h.segment(rep_buf, rep_mh, 0, reply_size)]
        for _ in range(requests):
            yield from h.post_recv(vi, Descriptor.recv(req_segs))
        req = yield from h.connect_wait(61)
        yield from h.accept(req, vi)
        for _ in range(requests):
            yield from h.recv_wait(vi)
            yield from h.post_send(vi, Descriptor.send(rep_segs))
            yield from h.send_wait(vi)

    cproc = tb.spawn(client(), "client")
    sproc = tb.spawn(server(), "server")
    tb.run(cproc)
    tb.run(sproc)
    return latencies