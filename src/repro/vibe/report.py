"""Paper-style rendering of VIBe results (Table 1 and the figures)."""

from __future__ import annotations

from typing import Iterable

from .metrics import BenchResult, merge_tables
from .nondata import NONDATA_OPS

__all__ = ["render_table1", "render_figure", "render_memreg"]

_OP_LABELS = {
    "create_vi": "Creating VI",
    "destroy_vi": "Destroying VI",
    "establish_connection": "Establishing Connection",
    "teardown_connection": "Tearing Down Connection",
    "create_cq": "Creating CQ",
    "destroy_cq": "Destroying CQ",
}


def render_table1(results: dict[str, BenchResult]) -> str:
    """The paper's Table 1: non-data-transfer costs across providers.

    ``results`` maps provider name -> the ``nondata`` BenchResult.
    """
    providers = list(results)
    rows = [["Operation"] + [p.upper() for p in providers]]
    for op in NONDATA_OPS:
        row = [_OP_LABELS[op]]
        for p in providers:
            cost = results[p].point(op).extra["cost_us"]
            row.append(f"{cost:.2f}" if cost < 10 else f"{cost:.0f}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = ["Table 1. Non-data transfer micro-benchmarks (us)"]
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_memreg(results: dict[str, BenchResult], which: str = "register_us",
                  title: str | None = None) -> str:
    """Figs. 1/2: memory (de)registration cost across providers."""
    series = list(results.values())
    label = title or ("Fig. 1: memory registration cost (us)"
                      if which == "register_us"
                      else "Fig. 2: memory deregistration cost (us)")
    return merge_tables(series, which, title=label)


def render_figure(results: Iterable[BenchResult], metric: str,
                  title: str) -> str:
    """Generic multi-provider series (the shape of Figs. 3-7)."""
    return merge_tables(results, metric, title=title)
