"""Impact of maximum transfer size / MTU (paper §3.2.5 / TR [6]):
MtsLat, MtsBw.

Sweeps the wire MTU for a fixed message size: smaller MTUs mean more
fragments, more per-fragment engine and framing overhead, and — for
store-and-forward fabrics — less per-hop serialisation latency.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec
from ..via.constants import WaitMode
from .executor import parallel_map
from .harness import TransferConfig, run_bandwidth, run_latency
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_MTUS", "mtu_latency", "mtu_bandwidth"]

DEFAULT_MTUS = (256, 512, 1024, 1500, 4096, 9000, 32768)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def mtu_latency(provider: "str | ProviderSpec",
                size: int = 16384,
                mtus=DEFAULT_MTUS,
                mode: WaitMode = WaitMode.POLL,
                jobs: int = 1,
                **overrides) -> BenchResult:
    tasks = [(provider, TransferConfig(size=size, mode=mode, mtu=mtu,
                                       **overrides))
             for mtu in mtus]
    raw = parallel_map(run_latency, tasks, jobs)
    points = [Measurement(param=mtu, latency_us=m.latency_us,
                          cpu_send=m.cpu_send, cpu_recv=m.cpu_recv)
              for mtu, m in zip(mtus, raw)]
    return BenchResult("mtu_latency", _name(provider), points,
                       {"size": size, "mode": mode.value})


def mtu_bandwidth(provider: "str | ProviderSpec",
                  size: int = 16384,
                  mtus=DEFAULT_MTUS,
                  mode: WaitMode = WaitMode.POLL,
                  jobs: int = 1,
                  **overrides) -> BenchResult:
    tasks = [(provider, TransferConfig(size=size, mode=mode, mtu=mtu,
                                       **overrides))
             for mtu in mtus]
    raw = parallel_map(run_bandwidth, tasks, jobs)
    points = [Measurement(param=mtu, bandwidth_mbs=m.bandwidth_mbs,
                          cpu_send=m.cpu_send, cpu_recv=m.cpu_recv)
              for mtu, m in zip(mtus, raw)]
    return BenchResult("mtu_bandwidth", _name(provider), points,
                       {"size": size, "mode": mode.value})
