"""Collective-operation benchmarks over the message layer (paper §5).

Barrier / broadcast / allreduce cost versus group size: each collective
is ⌈log₂ n⌉ point-to-point exchanges deep, so these curves are the
provider's small-message VIBe latency amplified by the algorithm depth
— the scaling question an MPI implementor brings to the suite.
"""

from __future__ import annotations

import struct

from ..layers.collectives import connect_group
from ..providers.registry import ProviderSpec, Testbed
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_GROUP_SIZES", "collective_latency"]

DEFAULT_GROUP_SIZES = (2, 4, 8)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def collective_latency(provider: "str | ProviderSpec",
                       group_sizes=DEFAULT_GROUP_SIZES,
                       payload: int = 64,
                       rounds: int = 6,
                       seed: int = 0) -> BenchResult:
    """Mean barrier/bcast/allreduce completion time per group size."""
    points = []
    for n in group_sizes:
        barrier, bcast, allreduce = _trial(provider, n, payload, rounds,
                                           seed)
        points.append(Measurement(
            param=n,
            extra={"barrier_us": barrier, "bcast_us": bcast,
                   "allreduce_us": allreduce},
        ))
    return BenchResult("collective_latency", _name(provider), points,
                       {"payload": payload})


def _trial(provider, n: int, payload: int, rounds: int, seed: int):
    names = [f"n{i}" for i in range(n)]
    tb = Testbed(provider, node_names=tuple(names), seed=seed)
    setups = connect_group(tb, names)
    out: dict = {}
    data = bytes(payload)

    def add(a: bytes, b: bytes) -> bytes:
        return struct.pack(">Q", struct.unpack(">Q", a)[0]
                           + struct.unpack(">Q", b)[0])

    def app(i):
        group = yield from setups[i]
        yield from group.barrier()          # absorb setup skew
        marks = [tb.now]
        for _ in range(rounds):
            yield from group.barrier()
        marks.append(tb.now)
        for _ in range(rounds):
            yield from group.bcast(data if group.rank == 0 else None)
        marks.append(tb.now)
        for _ in range(rounds):
            yield from group.allreduce(struct.pack(">Q", group.rank), add)
        marks.append(tb.now)
        out[i] = marks

    procs = [tb.spawn(app(i), f"rank{i}") for i in range(n)]
    for p in procs:
        tb.run(p)
    # a collective is done when its LAST rank is done: use the max of
    # each boundary across ranks (the root of a bcast finishes first)
    edges = [max(out[i][k] for i in range(n)) for k in range(4)]
    return tuple((edges[k + 1] - edges[k]) / rounds for k in range(3))
