"""The VIBe suite registry: every micro-benchmark, runnable by name.

Mirrors the paper's taxonomy:

- category 1 (non-data transfer): ``nondata``, ``memreg``;
- category 2 (data transfer): ``base_latency``, ``base_bandwidth`` (and
  their blocking variants), ``reuse_latency``, ``reuse_bandwidth``,
  ``cq_latency``, ``cq_overhead``, ``multivi_latency``,
  ``multivi_bandwidth``, ``segments_latency``, ``async_latency``,
  ``rdma_write_latency``, ``pipeline_bandwidth``, ``mtu_bandwidth``,
  ``reliability_latency``;
- category 3 (programming models): ``client_server``.
"""

from __future__ import annotations

from typing import Callable

from ..via.constants import WaitMode
from . import (
    addrtrans,
    async_bench,
    base_transfer,
    clientserver,
    cq_bench,
    mtu,
    multiclient,
    multivi,
    nondata,
    pipeline,
    progmodel_collectives,
    progmodel_dsm,
    progmodel_getput,
    progmodel_msg,
    progmodel_stream,
    rdma_bench,
    reliability,
    segments,
)
from . import concurrency, dynamic, executor
from .metrics import BenchResult

__all__ = ["SUITE", "run_benchmark", "run_all", "DEFAULT_PROVIDERS"]

DEFAULT_PROVIDERS = ("mvia", "bvia", "clan")

#: name -> callable(provider, **kwargs) returning BenchResult or a list
SUITE: dict[str, Callable] = {
    # category 1
    "nondata": nondata.nondata_costs,
    "memreg": nondata.memreg_sweep,
    # category 2
    "base_latency": base_transfer.base_latency,
    "base_bandwidth": base_transfer.base_bandwidth,
    "base_latency_blocking": lambda p, **kw: base_transfer.base_latency(
        p, mode=WaitMode.BLOCK, **kw),
    "base_bandwidth_blocking": lambda p, **kw: base_transfer.base_bandwidth(
        p, mode=WaitMode.BLOCK, **kw),
    "reuse_latency": addrtrans.reuse_latency,
    "reuse_bandwidth": addrtrans.reuse_bandwidth,
    "cq_latency": cq_bench.cq_latency,
    "cq_bandwidth": cq_bench.cq_bandwidth,
    "cq_overhead": cq_bench.cq_overhead,
    "multivi_latency": multivi.multivi_latency,
    "multivi_bandwidth": multivi.multivi_bandwidth,
    "segments_latency": segments.segments_latency,
    "segments_bandwidth": segments.segments_bandwidth,
    "async_latency": async_bench.async_latency,
    "rdma_write_latency": rdma_bench.rdma_write_latency,
    "rdma_read_latency": rdma_bench.rdma_read_latency,
    "pipeline_bandwidth": pipeline.pipeline_bandwidth,
    "mtu_latency": mtu.mtu_latency,
    "mtu_bandwidth": mtu.mtu_bandwidth,
    "reliability_latency": reliability.reliability_latency,
    "reliability_bandwidth": reliability.reliability_bandwidth,
    "loss_goodput": reliability.loss_goodput,
    # category 3
    "client_server": clientserver.client_server,
    "multiclient_throughput": multiclient.multiclient_throughput,
    "msg_layer_latency": progmodel_msg.msg_layer_latency,
    "msg_layer_bandwidth": progmodel_msg.msg_layer_bandwidth,
    "eager_threshold": progmodel_msg.eager_threshold_sweep,
    "getput_latency": progmodel_getput.getput_latency,
    "dsm_fault_latency": progmodel_dsm.dsm_fault_latency,
    "collective_latency": progmodel_collectives.collective_latency,
    "connection_churn": dynamic.connection_churn,
    "tail_latency": dynamic.tail_latency_under_load,
    "stream_throughput": progmodel_stream.stream_throughput,
    "concurrent_streams": concurrency.concurrent_streams,
}


#: benchmarks whose sweep accepts a ``jobs=N`` fan-out keyword.
#: ``memreg`` is deliberately absent: its sweep must run in one testbed
#: (see :func:`repro.vibe.nondata.memreg_sweep`); it still parallelises
#: across providers via :func:`run_all`.
JOBS_AWARE = frozenset({
    "base_latency", "base_bandwidth",
    "base_latency_blocking", "base_bandwidth_blocking",
    "reuse_latency", "reuse_bandwidth",
    "mtu_latency", "mtu_bandwidth",
})

#: benchmarks whose kwargs flow into a :class:`TransferConfig`, and thus
#: accept a ``fidelity="auto"|"flow"`` fast-forward override.  The rest
#: build their testbeds directly and silently drop the keyword (so the
#: CLI can pass ``--fidelity`` uniformly).  ``cq_overhead`` is excluded:
#: it compares a with-CQ run against a bare baseline and must run both
#: at the same fidelity.
FIDELITY_AWARE = frozenset({
    "base_latency", "base_bandwidth",
    "base_latency_blocking", "base_bandwidth_blocking",
    "reuse_latency", "reuse_bandwidth",
    "cq_latency", "cq_bandwidth",
    "multivi_latency", "multivi_bandwidth",
    "segments_latency", "segments_bandwidth",
    "pipeline_bandwidth",
    "mtu_latency", "mtu_bandwidth",
    "reliability_latency", "reliability_bandwidth",
})


def run_benchmark(name: str, provider: str, **kwargs):
    """Run one named micro-benchmark on one provider.

    A ``jobs`` keyword is forwarded only to benchmarks that support
    internal fan-out (:data:`JOBS_AWARE`); for the rest it is dropped so
    callers can pass a global ``--jobs`` uniformly.  Likewise
    ``fidelity`` reaches only the :data:`FIDELITY_AWARE` benchmarks.
    """
    try:
        fn = SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(SUITE)}"
        ) from None
    if "jobs" in kwargs and name not in JOBS_AWARE:
        kwargs = {k: v for k, v in kwargs.items() if k != "jobs"}
    if "fidelity" in kwargs and name not in FIDELITY_AWARE:
        kwargs = {k: v for k, v in kwargs.items() if k != "fidelity"}
    result = fn(provider, **kwargs)
    _stamp_meta(result, name, provider, kwargs)
    return result


def _stamp_meta(result, name: str, provider, kwargs: dict) -> None:
    """Attach deterministic run metadata to every returned BenchResult.

    Metadata carries no wall-clock timestamps, so a fanned-out run is
    repr-identical to a serial one.
    """
    from ..obs.profile import run_metadata

    provider_name = provider if isinstance(provider, str) else \
        getattr(provider, "name", str(provider))
    params = {k: repr(v) for k, v in sorted(kwargs.items()) if k != "jobs"}
    params["benchmark"] = name
    meta = run_metadata(provider_name, params)
    for r in result if isinstance(result, list) else [result]:
        if hasattr(r, "meta") and not r.meta:
            r.meta = dict(meta)


def run_all(providers=DEFAULT_PROVIDERS,
            benchmarks: list[str] | None = None,
            jobs: int = 1,
            warm_start: bool = False,
            **kwargs) -> dict[str, dict[str, "BenchResult | list[BenchResult]"]]:
    """Run (a subset of) the suite on each provider.

    ``jobs`` fans the independent ``(benchmark, provider)`` simulations
    out over that many worker processes (see
    :mod:`repro.vibe.executor`); results are identical to ``jobs=1``
    because each task is a self-contained deterministic simulation and
    collection preserves task order.

    ``warm_start`` enables the construction-checkpoint pool
    (:mod:`repro.snap.warmcache`) in every worker: cells sharing a
    testbed configuration restore one snapshot instead of rebuilding
    the fabric per cell.  Every cell — including the first — goes
    through the snapshot path, so results are byte-identical to a cold
    run at any ``jobs`` value; only wall-clock changes.

    Returns ``{benchmark: {provider: result}}``.
    """
    names = benchmarks or list(SUITE)
    tasks = [(name, provider, kwargs)
             for name in names for provider in providers]
    init = executor._enable_warm_start if warm_start else None
    try:
        results = executor.parallel_map(executor._run_named, tasks, jobs,
                                        initializer=init)
    finally:
        if warm_start:
            # the serial path enabled the pool in this process; workers
            # die with the executor, so only local state needs undoing
            from ..snap import warmcache

            warmcache.enable_warm_start(False)
            warmcache.clear_pool()
    out: dict[str, dict] = {name: {} for name in names}
    for (name, provider, _), result in zip(tasks, results):
        out[name][provider] = result
    return out
