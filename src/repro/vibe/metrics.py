"""Result containers and formatting for VIBe measurements."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Measurement", "BenchResult", "merge_tables",
           "results_to_json"]

_MISSING = object()


@dataclass
class Measurement:
    """One point of a micro-benchmark sweep."""

    param: Any                       # x value (message size, #VIs, ...)
    latency_us: float | None = None
    bandwidth_mbs: float | None = None
    cpu_send: float | None = None    # utilisation fraction [0, 1]
    cpu_recv: float | None = None
    tps: float | None = None         # transactions per second (Fig. 7)
    extra: dict = field(default_factory=dict)

    FIELDS = ("latency_us", "bandwidth_mbs", "cpu_send", "cpu_recv", "tps")

    def get(self, name: str, default: Any = _MISSING) -> Any:
        """Look up a metric by name.

        Unknown names raise :class:`KeyError` — the same contract as
        :meth:`BenchResult.point` — unless a ``default`` is supplied
        (dict.get-style), which tolerant callers such as table renderers
        use for points that simply lack an extra metric.
        """
        if name in self.FIELDS:
            return getattr(self, name)
        if name in self.extra:
            return self.extra[name]
        if default is not _MISSING:
            return default
        raise KeyError(f"no metric named {name!r}")


@dataclass
class BenchResult:
    """A complete sweep of one micro-benchmark on one provider."""

    benchmark: str
    provider: str
    points: list[Measurement]
    params: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def series(self, metric: str) -> list[tuple[Any, Any]]:
        return [(p.param, p.get(metric, None)) for p in self.points]

    def point(self, param: Any) -> Measurement:
        for p in self.points:
            if p.param == param:
                return p
        raise KeyError(f"no point with param={param!r}")

    @property
    def metrics(self) -> list[str]:
        present = []
        for name in Measurement.FIELDS:
            if any(p.get(name, None) is not None for p in self.points):
                present.append(name)
        for p in self.points:
            for name in p.extra:
                if name not in present:
                    present.append(name)
        return present

    def table(self) -> str:
        """Render the sweep as a fixed-width text table."""
        metrics = self.metrics
        header = [f"{self.benchmark} [{self.provider}]"]
        if self.params:
            header.append("  " + ", ".join(f"{k}={v}" for k, v in self.params.items()))
        cols = ["param"] + metrics
        rows = [cols]
        for p in self.points:
            row = [str(p.param)]
            for name in metrics:
                value = p.get(name, None)
                row.append(_fmt(value))
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(cols))]
        lines = header + [
            "  ".join(cell.rjust(w) for cell, w in zip(r, widths)) for r in rows
        ]
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def results_to_json(result: "BenchResult | list[BenchResult]") -> str:
    """Canonical JSON for one benchmark invocation's result(s).

    Deterministic byte-for-byte (sorted keys, fixed indent, no
    timestamps), so the string doubles as a content-addressable cache
    payload: ``vibe run --json-out`` and the experiment service
    (:mod:`repro.serve`) both emit exactly this, which is what lets a
    served cell be ``cmp``-equal to a direct CLI run.
    """
    from .repository import result_to_dict  # deferred: imports BenchResult

    results = result if isinstance(result, list) else [result]
    return json.dumps(
        {"results": [result_to_dict(r) for r in results]},
        indent=2,
        sort_keys=True,
    )


def merge_tables(results: Iterable[BenchResult], metric: str,
                 title: str | None = None) -> str:
    """Side-by-side comparison of one metric across providers
    (the shape of the paper's multi-series figures)."""
    results = list(results)
    if not results:
        return "(no results)"
    params = [p.param for p in results[0].points]
    cols = ["param"] + [r.provider for r in results]
    rows = [cols]
    for param in params:
        row = [str(param)]
        for r in results:
            try:
                row.append(_fmt(r.point(param).get(metric)))
            except KeyError:
                row.append("-")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(cols))]
    name = title or f"{results[0].benchmark}: {metric}"
    lines = [name] + [
        "  ".join(cell.rjust(w) for cell, w in zip(r, widths)) for r in rows
    ]
    return "\n".join(lines)
