"""Impact of multiple data segments (paper §3.2.5 / TR [6]): SegLat,
SegBw, SegCpu.

A descriptor may gather/scatter through many data segments; each extra
segment costs descriptor-parsing time on the NIC (or in the kernel).
The benchmark holds the total transfer size fixed and sweeps the number
of segments it is split into.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec
from ..via.constants import WaitMode
from .harness import TransferConfig, run_bandwidth, run_latency
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_SEGMENT_COUNTS", "segments_latency", "segments_bandwidth"]

DEFAULT_SEGMENT_COUNTS = (1, 2, 4, 8, 16)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def segments_latency(provider: "str | ProviderSpec",
                     size: int = 4096,
                     segment_counts=DEFAULT_SEGMENT_COUNTS,
                     mode: WaitMode = WaitMode.POLL,
                     **overrides) -> BenchResult:
    points = []
    for n in segment_counts:
        cfg = TransferConfig(size=size, mode=mode, segments=n, **overrides)
        m = run_latency(provider, cfg)
        points.append(Measurement(param=n, latency_us=m.latency_us,
                                  cpu_send=m.cpu_send, cpu_recv=m.cpu_recv))
    return BenchResult("segments_latency", _name(provider), points,
                       {"size": size, "mode": mode.value})


def segments_bandwidth(provider: "str | ProviderSpec",
                       size: int = 4096,
                       segment_counts=DEFAULT_SEGMENT_COUNTS,
                       mode: WaitMode = WaitMode.POLL,
                       **overrides) -> BenchResult:
    points = []
    for n in segment_counts:
        cfg = TransferConfig(size=size, mode=mode, segments=n, **overrides)
        m = run_bandwidth(provider, cfg)
        points.append(Measurement(param=n, bandwidth_mbs=m.bandwidth_mbs,
                                  cpu_send=m.cpu_send, cpu_recv=m.cpu_recv))
    return BenchResult("segments_bandwidth", _name(provider), points,
                       {"size": size, "mode": mode.value})
