"""Impact of virtual-to-physical address translation (paper §3.2.2,
Fig. 5): LatAT, BwAT, CpuAT.

Identical to the base tests except that different send and receive
buffers are used in different iterations.  The buffer-reuse fraction is
swept: 100 % reuse equals the base benchmark; at 0 % every iteration
touches fresh pages, defeating any NIC-side translation cache.  The
buffer pool is sized to exceed the NIC cache even for single-page
buffers.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec
from ..units import paper_size_sweep
from ..via.constants import WaitMode
from .executor import parallel_map
from .harness import TransferConfig, run_bandwidth, run_latency
from .metrics import BenchResult

__all__ = ["DEFAULT_REUSE_LEVELS", "reuse_latency", "reuse_bandwidth"]

DEFAULT_REUSE_LEVELS = (1.0, 0.75, 0.5, 0.25, 0.0)

#: enough distinct buffers that even 1-page buffers overflow a 32-entry TLB
_POOL = 48


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def reuse_latency(provider: "str | ProviderSpec",
                  sizes: list[int] | None = None,
                  reuse_levels=DEFAULT_REUSE_LEVELS,
                  mode: WaitMode = WaitMode.POLL,
                  iters: int = 48,
                  jobs: int = 1,
                  **overrides) -> list[BenchResult]:
    """One BenchResult per reuse level (the Fig. 5 latency families).

    The whole ``(reuse, size)`` grid is flattened into one task list so
    ``jobs`` workers stay busy across family boundaries; results are
    regrouped per reuse level in order.
    """
    sizes = sizes or paper_size_sweep()
    tasks = [
        (provider, TransferConfig(size=size, mode=mode, iters=iters,
                                  buffer_pool=_POOL, reuse_fraction=reuse,
                                  **overrides))
        for reuse in reuse_levels for size in sizes
    ]
    flat = parallel_map(run_latency, tasks, jobs)
    results = []
    for i, reuse in enumerate(reuse_levels):
        points = flat[i * len(sizes):(i + 1) * len(sizes)]
        results.append(BenchResult(
            "reuse_latency", f"{_name(provider)}@{int(reuse * 100)}%",
            points, {"reuse": reuse, "mode": mode.value},
        ))
    return results


def reuse_bandwidth(provider: "str | ProviderSpec",
                    sizes: list[int] | None = None,
                    reuse_levels=DEFAULT_REUSE_LEVELS,
                    mode: WaitMode = WaitMode.POLL,
                    count: int = 150,
                    jobs: int = 1,
                    **overrides) -> list[BenchResult]:
    """One BenchResult per reuse level (the Fig. 5 bandwidth families)."""
    sizes = sizes or paper_size_sweep()
    tasks = [
        (provider, TransferConfig(size=size, mode=mode, count=count,
                                  buffer_pool=_POOL, reuse_fraction=reuse,
                                  **overrides))
        for reuse in reuse_levels for size in sizes
    ]
    flat = parallel_map(run_bandwidth, tasks, jobs)
    results = []
    for i, reuse in enumerate(reuse_levels):
        points = flat[i * len(sizes):(i + 1) * len(sizes)]
        results.append(BenchResult(
            "reuse_bandwidth", f"{_name(provider)}@{int(reuse * 100)}%",
            points, {"reuse": reuse, "mode": mode.value},
        ))
    return results
