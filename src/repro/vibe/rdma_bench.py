"""Impact of RDMA operations (paper §3.2.5 / TR [6]): RdmaLat, RdmaBw.

Compares the send/receive model against RDMA write (with immediate
data, so the target application still gets a completion) and — on
providers that implement it — RDMA read.  RDMA skips receive-descriptor
matching on the target, trading it for an address-segment check.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec, Testbed, get_spec
from ..via.descriptor import Descriptor
from ..units import paper_size_sweep
from .metrics import BenchResult, Measurement

__all__ = ["rdma_write_latency", "rdma_read_latency", "rdma_capable"]


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def rdma_capable(provider: "str | ProviderSpec") -> ProviderSpec:
    """A variant of ``provider`` with RDMA read enabled (for the read
    benchmark; none of the paper's three stacks shipped RDMA read)."""
    spec = get_spec(provider)
    return spec.with_choices(supports_rdma_read=True)


def rdma_write_latency(provider: "str | ProviderSpec",
                       sizes: list[int] | None = None,
                       iters: int = 16,
                       seed: int = 0) -> BenchResult:
    """RDMA-write-with-immediate ping-pong latency vs size."""
    sizes = sizes or paper_size_sweep()
    points = [
        Measurement(param=s, latency_us=_rdma_pingpong(provider, s, iters, seed))
        for s in sizes
    ]
    return BenchResult("rdma_write_latency", _name(provider), points)


def _rdma_pingpong(provider, size: int, iters: int, seed: int) -> float:
    tb = Testbed(provider, seed=seed)
    out: dict = {}
    warmup = 2
    handles_xchg: dict = {}

    def body(me: str, peer: str, disc: int, is_client: bool):
        h = tb.open(me, "app-" + me)
        vi = yield from h.create_vi()
        buf = h.alloc(max(size, 4))
        mh = yield from h.register_mem(buf, enable_rdma_write=True)
        handles_xchg[me] = (buf.base, mh.handle_id)
        total = warmup + iters
        if is_client:
            yield from h.connect(vi, peer, disc)
        else:
            # pre-post before accepting so the client's first write (with
            # its descriptor-consuming immediate) can never race us
            yield from h.post_recv(vi, Descriptor.recv([]))
            req = yield from h.connect_wait(disc)
            yield from h.accept(req, vi)
        # out-of-band handle exchange (a real app would bootstrap this
        # over a send/recv pair; the values are plain integers)
        while peer not in handles_xchg:
            yield tb.sim.timeout(1.0)
        raddr, rhandle = handles_xchg[peer]
        segs = [h.segment(buf, mh, 0, size)]
        for i in range(total):
            if is_client and i == warmup:
                out["t0"] = tb.now
            d = Descriptor.rdma_write(segs, raddr, rhandle, immediate=i)
            if is_client:
                # a receive absorbs the peer's immediate-data echo
                yield from h.post_recv(vi, Descriptor.recv([]))
                yield from h.post_send(vi, d)
                yield from h.send_wait(vi)
                yield from h.recv_wait(vi)   # peer's echo write landed
            else:
                yield from h.recv_wait(vi)   # peer's write landed
                if i + 1 < total:
                    yield from h.post_recv(vi, Descriptor.recv([]))
                yield from h.post_send(vi, d)
                yield from h.send_wait(vi)
        if is_client:
            out["t1"] = tb.now

    cproc = tb.spawn(body(tb.node_names[0], tb.node_names[1], 41, True))
    sproc = tb.spawn(body(tb.node_names[1], tb.node_names[0], 41, False))
    tb.run(cproc)
    tb.run(sproc)
    return (out["t1"] - out["t0"]) / (2 * iters)


def rdma_read_latency(provider: "str | ProviderSpec",
                      sizes: list[int] | None = None,
                      iters: int = 16,
                      seed: int = 0) -> BenchResult:
    """RDMA read round-trip latency vs size (needs an rdma_capable spec)."""
    spec = rdma_capable(provider)
    sizes = sizes or paper_size_sweep()
    points = []
    for size in sizes:
        points.append(Measurement(
            param=size, latency_us=_rdma_read_once(spec, size, iters, seed)
        ))
    return BenchResult("rdma_read_latency", f"{spec.name}+rr", points)


def _rdma_read_once(spec: ProviderSpec, size: int, iters: int,
                    seed: int) -> float:
    tb = Testbed(spec, seed=seed)
    out: dict = {}
    xchg: dict = {}

    def client_body():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi()
        buf = h.alloc(max(size, 4))
        mh = yield from h.register_mem(buf)
        yield from h.connect(vi, tb.node_names[1], 43)
        while "server" not in xchg:
            yield tb.sim.timeout(1.0)
        raddr, rhandle = xchg["server"]
        segs = [h.segment(buf, mh, 0, size)]
        warmup = 2
        for i in range(warmup + iters):
            if i == warmup:
                out["t0"] = tb.now
            d = Descriptor.rdma_read(segs, raddr, rhandle)
            yield from h.post_send(vi, d)
            yield from h.send_wait(vi)
        out["t1"] = tb.now

    def server_body():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi()
        buf = h.alloc(max(size, 4))
        mh = yield from h.register_mem(buf, enable_rdma_read=True)
        xchg["server"] = (buf.base, mh.handle_id)
        req = yield from h.connect_wait(43)
        yield from h.accept(req, vi)
        # passive: the NIC serves reads without application involvement
        while True:
            yield tb.sim.timeout(10_000.0)

    cproc = tb.spawn(client_body(), "client")
    tb.spawn(server_body(), "server")
    tb.run(cproc)
    return (out["t1"] - out["t0"]) / iters
